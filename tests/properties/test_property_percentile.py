"""Property-based tests for percentile composition (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.percentile import (
    compose_percentiles,
    path_percentile,
    subtask_percentile,
)

percentiles = st.floats(min_value=1.0, max_value=100.0)


@given(p=percentiles, q=percentiles)
@settings(max_examples=150, deadline=None)
def test_composition_never_exceeds_inputs(p, q):
    composed = compose_percentiles(p, q)
    assert composed <= min(p, q) + 1e-9
    assert composed > 0.0


@given(p=percentiles, q=percentiles, r=percentiles)
@settings(max_examples=100, deadline=None)
def test_composition_associative(p, q, r):
    left = compose_percentiles(compose_percentiles(p, q), r)
    right = compose_percentiles(p, compose_percentiles(q, r))
    assert left == pytest.approx(right, rel=1e-12)


@given(p=percentiles, n=st.integers(min_value=1, max_value=12))
@settings(max_examples=150, deadline=None)
def test_subtask_percentile_roundtrip(p, n):
    q = subtask_percentile(p, n)
    assert 0.0 < q <= 100.0
    assert path_percentile([q] * n) == pytest.approx(p, rel=1e-9)


@given(p=percentiles, n=st.integers(min_value=1, max_value=11))
@settings(max_examples=100, deadline=None)
def test_subtask_percentile_monotone_in_length(p, n):
    assert subtask_percentile(p, n + 1) >= subtask_percentile(p, n) - 1e-12


@given(ps=st.lists(percentiles, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_path_percentile_order_independent(ps):
    forward = path_percentile(ps)
    backward = path_percentile(list(reversed(ps)))
    assert forward == pytest.approx(backward, rel=1e-9)
