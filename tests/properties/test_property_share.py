"""Property-based tests for share functions (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.share import CorrectedShare, HyperbolicShare, PowerLawShare

positive = st.floats(min_value=0.01, max_value=1e3)
latencies = st.floats(min_value=0.01, max_value=1e4)


@given(exec_time=positive, lag=st.floats(min_value=0.0, max_value=100.0),
       lat=latencies)
@settings(max_examples=150, deadline=None)
def test_hyperbolic_inverse_roundtrip(exec_time, lag, lat):
    fn = HyperbolicShare(exec_time=exec_time, lag=lag)
    assert fn.latency_for_share(fn.share(lat)) == pytest.approx(lat, rel=1e-9)


@given(cost=positive, alpha=st.floats(min_value=0.2, max_value=4.0),
       lat=latencies)
@settings(max_examples=150, deadline=None)
def test_powerlaw_inverse_roundtrip(cost, alpha, lat):
    fn = PowerLawShare(cost=cost, alpha=alpha)
    assert fn.latency_for_share(fn.share(lat)) == pytest.approx(lat, rel=1e-6)


@given(cost=positive, alpha=st.floats(min_value=0.2, max_value=4.0),
       a=latencies, b=latencies)
@settings(max_examples=150, deadline=None)
def test_share_strictly_decreasing(cost, alpha, a, b):
    fn = PowerLawShare(cost=cost, alpha=alpha)
    lo, hi = sorted((a, b))
    if hi > lo * (1 + 1e-9):
        assert fn.share(hi) < fn.share(lo)


@given(cost=positive, alpha=st.floats(min_value=0.2, max_value=4.0),
       a=latencies, b=latencies)
@settings(max_examples=150, deadline=None)
def test_share_convex(cost, alpha, a, b):
    fn = PowerLawShare(cost=cost, alpha=alpha)
    mid = (a + b) / 2.0
    chord = (fn.share(a) + fn.share(b)) / 2.0
    assert fn.share(mid) <= chord * (1 + 1e-9)


@given(cost=positive, alpha=st.floats(min_value=0.2, max_value=4.0),
       lat=latencies)
@settings(max_examples=100, deadline=None)
def test_derivative_sign_and_magnitude(cost, alpha, lat):
    fn = PowerLawShare(cost=cost, alpha=alpha)
    d = fn.dshare_dlat(lat)
    assert d < 0.0
    h = lat * 1e-6
    numeric = (fn.share(lat + h) - fn.share(lat - h)) / (2 * h)
    assert d == pytest.approx(numeric, rel=1e-3)


@given(exec_time=positive, lag=st.floats(min_value=0.0, max_value=50.0),
       error=st.floats(min_value=-50.0, max_value=50.0), lat=latencies)
@settings(max_examples=150, deadline=None)
def test_corrected_share_consistency(exec_time, lag, error, lat):
    base = HyperbolicShare(exec_time=exec_time, lag=lag)
    corrected = CorrectedShare(base, error=error)
    if lat - error > 1e-9:
        share = corrected.share(lat)
        assert share == pytest.approx(base.share(lat - error), rel=1e-9)
        assert corrected.latency_for_share(share) == \
            pytest.approx(lat, rel=1e-6, abs=1e-6)


@given(availability=st.floats(min_value=0.05, max_value=1.0),
       exec_time=positive, lag=st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=100, deadline=None)
def test_min_latency_saturates_availability(availability, exec_time, lag):
    fn = HyperbolicShare(exec_time=exec_time, lag=lag)
    lo = fn.min_latency(availability)
    assert fn.share(lo) == pytest.approx(availability, rel=1e-9)
