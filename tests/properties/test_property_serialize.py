"""Property-based round-trip tests for workload serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.model.serialize import taskset_from_json, taskset_to_json
from repro.workloads.generator import GeneratorConfig, random_workload


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_random_workload_roundtrip_structure(seed):
    original = random_workload(
        GeneratorConfig(n_tasks=3, n_resources=5, max_subtasks=5),
        seed=seed,
    )
    restored = taskset_from_json(taskset_to_json(original))
    assert restored.subtask_names == original.subtask_names
    assert set(restored.resources) == set(original.resources)
    for task in original.tasks:
        twin = restored.task(task.name)
        assert twin.graph.paths == task.graph.paths
        assert twin.weights == task.weights
        assert twin.critical_time == task.critical_time


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=5, deadline=None)
def test_random_workload_roundtrip_optimization(seed):
    """Optimizing the restored workload gives bit-identical latencies —
    the serialization preserves everything the optimizer reads."""
    original = random_workload(
        GeneratorConfig(n_tasks=2, n_resources=4, max_subtasks=4),
        seed=seed,
    )
    restored = taskset_from_json(taskset_to_json(original))
    r1 = LLAOptimizer(original, LLAConfig(max_iterations=150)).run()
    r2 = LLAOptimizer(restored, LLAConfig(max_iterations=150)).run()
    assert r1.latencies == pytest.approx(r2.latencies)
