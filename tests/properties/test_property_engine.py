"""Property-based tests for the simulation engine and GPS resource."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.resources import GPSResource
from tests.sim.test_resources_sim import submit


@given(times=st.lists(st.floats(min_value=0.0, max_value=1e6),
                      min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_events_fire_in_time_order(times):
    engine = SimulationEngine()
    fired = []
    for t in times:
        engine.schedule(t, lambda t=t: fired.append(t))
    engine.run()
    assert fired == sorted(times)
    assert engine.processed == len(times)


@given(
    demands=st.lists(st.floats(min_value=0.1, max_value=20.0),
                     min_size=1, max_size=6),
    weights=st.lists(st.floats(min_value=0.05, max_value=1.0),
                     min_size=6, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_gps_work_conservation(demands, weights):
    """All jobs submitted at t=0 to distinct flows finish exactly at the
    total demand (unit capacity, work conserving) — the last completion
    equals Σ demand regardless of weights."""
    engine = SimulationEngine()
    res = GPSResource("r", engine)
    jobs = []
    for i, demand in enumerate(demands):
        res.add_flow(f"f{i}", weights[i])
        jobs.append(submit(res, f"f{i}", demand))
    engine.run()
    makespan = max(j.finish_time for j in jobs)
    assert makespan == pytest.approx(sum(demands), rel=1e-6)
    for job in jobs:
        assert job.done
        assert job.finish_time >= job.demand - 1e-9   # unit capacity bound


@given(
    weight_a=st.floats(min_value=0.1, max_value=1.0),
    weight_b=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_gps_rate_proportionality(weight_a, weight_b):
    """While both flows are backlogged, service is split in proportion to
    the weights: check via each job's service at the first completion."""
    engine = SimulationEngine()
    res = GPSResource("r", engine)
    res.add_flow("a", weight_a)
    res.add_flow("b", weight_b)
    ja = submit(res, "a", 100.0)   # long enough that neither finishes
    jb = submit(res, "b", 100.0)
    engine.run_until(10.0)
    res._before_state_change()     # settle service accounting
    share_a = weight_a / (weight_a + weight_b)
    assert ja.service_received == pytest.approx(10.0 * share_a, rel=1e-6)
    assert jb.service_received == pytest.approx(10.0 * (1 - share_a), rel=1e-6)


@given(
    demands=st.lists(st.floats(min_value=0.5, max_value=20.0),
                     min_size=2, max_size=5),
    weights=st.lists(st.floats(min_value=0.1, max_value=1.0),
                     min_size=5, max_size=5),
    quantum=st.floats(min_value=0.25, max_value=2.0),
)
@settings(max_examples=40, deadline=None)
def test_quantum_work_conservation(demands, weights, quantum):
    """The quantum scheduler is work-conserving too: with no background
    flow, jobs submitted at t=0 all finish by Σ demand (+ one quantum of
    rounding)."""
    from repro.sim.resources import QuantumResource

    engine = SimulationEngine()
    res = QuantumResource("r", engine, quantum=quantum)
    jobs = []
    for i, demand in enumerate(demands):
        res.add_flow(f"f{i}", weights[i])
        jobs.append(submit(res, f"f{i}", demand))
    engine.run()
    assert all(j.done for j in jobs)
    makespan = max(j.finish_time for j in jobs)
    assert makespan == pytest.approx(sum(demands), abs=quantum + 1e-9)


@given(
    weight_a=st.floats(min_value=0.2, max_value=1.0),
    weight_b=st.floats(min_value=0.2, max_value=1.0),
    quantum=st.floats(min_value=0.25, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_quantum_weighted_fairness(weight_a, weight_b, quantum):
    """Over a long backlog, service ratios track weight ratios within a
    generous quantization tolerance."""
    from repro.sim.resources import QuantumResource

    engine = SimulationEngine()
    res = QuantumResource("r", engine, quantum=quantum)
    res.add_flow("a", weight_a)
    res.add_flow("b", weight_b)
    ja = submit(res, "a", 1000.0)
    jb = submit(res, "b", 1000.0)
    engine.run_until(200.0)
    expected = weight_a / weight_b
    got = ja.service_received / max(jb.service_received, 1e-9)
    assert got == pytest.approx(expected, rel=0.25)
