"""Property-based tests for LLA invariants on random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.prices import update_path_price, update_resource_price
from repro.workloads.generator import GeneratorConfig, random_workload


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_random_provisioned_workloads_converge_feasibly(seed):
    """Any generator-provisioned workload must converge to a feasible
    allocation — the generator guarantees one exists."""
    ts = random_workload(
        GeneratorConfig(n_tasks=3, n_resources=5, max_subtasks=5,
                        provisioning=0.7),
        seed=seed,
    )
    result = LLAOptimizer(ts, LLAConfig(max_iterations=1200)).run()
    assert ts.is_feasible(result.latencies, tol=2e-2), (
        ts.constraint_violations(result.latencies)[:3]
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=6, deadline=None)
def test_iterates_respect_invariants(seed):
    """Every iterate keeps prices non-negative and latencies positive and
    within the critical-time clamp."""
    ts = random_workload(
        GeneratorConfig(n_tasks=2, n_resources=4, max_subtasks=4,
                        provisioning=0.7),
        seed=seed,
    )
    opt = LLAOptimizer(
        ts, LLAConfig(max_iterations=60, stop_on_convergence=False)
    )
    result = opt.run()
    for record in result.history:
        assert all(v >= 0.0 for v in record.resource_prices.values())
        assert all(v >= 0.0 for v in record.path_prices.values())
        for task in ts.tasks:
            for sub in task.subtasks:
                lat = record.latencies[sub.name]
                assert 0.0 < lat <= task.critical_time + 1e-9


@given(
    price=st.floats(min_value=0.0, max_value=1e6),
    gamma=st.floats(min_value=1e-6, max_value=1e3),
    availability=st.floats(min_value=0.05, max_value=1.0),
    load=st.floats(min_value=0.0, max_value=10.0),
)
@settings(max_examples=200, deadline=None)
def test_resource_price_update_properties(price, gamma, availability, load):
    new = update_resource_price(price, gamma, availability, load)
    assert new >= 0.0
    if load > availability:
        assert new >= price   # congestion never lowers the price
    if load < availability:
        assert new <= price   # slack never raises it


@given(
    price=st.floats(min_value=0.0, max_value=1e6),
    gamma=st.floats(min_value=1e-6, max_value=1e3),
    lat=st.floats(min_value=0.0, max_value=1e4),
    critical=st.floats(min_value=0.1, max_value=1e3),
)
@settings(max_examples=200, deadline=None)
def test_path_price_update_properties(price, gamma, lat, critical):
    new = update_path_price(price, gamma, lat, critical)
    assert new >= 0.0
    if lat > critical:
        assert new >= price
    if lat < critical:
        assert new <= price
