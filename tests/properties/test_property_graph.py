"""Property-based tests for subtask graphs (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.graph import SubtaskGraph


@st.composite
def random_dags(draw, max_nodes=10):
    """Random single-root DAGs: each non-root node gets >= 1 earlier
    parent, guaranteeing acyclicity, reachability and a unique root."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    names = [f"n{i}" for i in range(n)]
    edges = []
    for i in range(1, n):
        parent_count = draw(st.integers(min_value=1, max_value=i))
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=i - 1),
                min_size=parent_count, max_size=parent_count, unique=True,
            )
        )
        for p in parents:
            edges.append((names[p], names[i]))
    return SubtaskGraph(names, edges)


@given(random_dags())
@settings(max_examples=80, deadline=None)
def test_weights_equal_path_membership_counts(graph):
    weights = graph.path_weights()
    for node in graph.nodes:
        member_count = sum(1 for p in graph.paths if node in p)
        assert weights[node] == member_count


@given(random_dags())
@settings(max_examples=80, deadline=None)
def test_every_path_starts_at_root_and_ends_at_leaf(graph):
    for path in graph.paths:
        assert path[0] == graph.root
        assert path[-1] in graph.leaves
        for a, b in zip(path, path[1:]):
            assert b in graph.successors(a)


@given(random_dags(), st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_critical_path_is_max_over_paths(graph, scale):
    latencies = {
        n: scale * (1.0 + (hash(n) % 17) / 7.0) for n in graph.nodes
    }
    _, crit = graph.critical_path(latencies)
    best = max(graph.path_latency(p, latencies) for p in graph.paths)
    # DP and direct summation may differ by float association order.
    assert crit == pytest.approx(best, rel=1e-12)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_topological_order_is_valid(graph):
    position = {n: i for i, n in enumerate(graph.topological_order())}
    for before, after in graph.edges:
        assert position[before] < position[after]


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_root_weight_equals_total_paths(graph):
    assert graph.path_weights()[graph.root] == len(graph.paths)
