"""Tests for the deadline-slicing baselines."""

import pytest

from repro.baselines.slicing import (
    bst_slicing,
    evaluate_assignment,
    even_slicing,
    proportional_slicing,
)
from tests.conftest import make_chain_taskset, make_diamond_taskset

ALL_SLICERS = [even_slicing, proportional_slicing, bst_slicing]


class TestPathBudgets:
    @pytest.mark.parametrize("slicer", ALL_SLICERS)
    def test_paths_within_critical_time_chain(self, slicer):
        ts = make_chain_taskset()
        latencies = slicer(ts)
        task = ts.tasks[0]
        for path in task.graph.paths:
            total = task.graph.path_latency(path, latencies)
            assert total <= task.critical_time + 1e-9

    @pytest.mark.parametrize("slicer", ALL_SLICERS)
    def test_paths_within_critical_time_diamond(self, slicer):
        ts = make_diamond_taskset()
        latencies = slicer(ts)
        task = ts.tasks[0]
        for path in task.graph.paths:
            total = task.graph.path_latency(path, latencies)
            assert total <= task.critical_time + 1e-9

    @pytest.mark.parametrize("slicer", ALL_SLICERS)
    def test_paths_within_critical_time_base_workload(self, slicer, base_ts):
        latencies = slicer(base_ts)
        for task in base_ts.tasks:
            _, crit = task.critical_path(latencies)
            assert crit <= task.critical_time + 1e-9

    @pytest.mark.parametrize("slicer", ALL_SLICERS)
    def test_all_subtasks_assigned(self, slicer, base_ts):
        latencies = slicer(base_ts)
        assert set(latencies) == set(base_ts.subtask_names)
        assert all(v > 0.0 for v in latencies.values())


class TestEvenSlicing:
    def test_chain_divides_equally(self):
        ts = make_chain_taskset(n_subtasks=3, critical_time=30.0)
        latencies = even_slicing(ts)
        assert all(v == pytest.approx(10.0) for v in latencies.values())

    def test_diamond_uses_longest_path(self):
        ts = make_diamond_taskset(critical_time=30.0)
        latencies = even_slicing(ts)
        # Longest path has 3 hops: everyone gets C/3.
        assert all(v == pytest.approx(10.0) for v in latencies.values())


class TestProportionalSlicing:
    def test_chain_proportional_to_cost(self):
        ts = make_chain_taskset(n_subtasks=3, exec_time=2.0,
                                critical_time=30.0, lag=1.0)
        latencies = proportional_slicing(ts)
        # Equal costs: equal slices of 10 each.
        assert all(v == pytest.approx(10.0) for v in latencies.values())

    def test_expensive_subtask_gets_more(self, base_ts):
        latencies = proportional_slicing(base_ts)
        # Within task 3 (a chain), T25 is irrelevant; compare T31 (3ms)
        # and T32 (2ms): the costlier subtask gets the bigger slice.
        assert latencies["T31"] > latencies["T32"]


class TestBstSlicing:
    def test_slice_at_least_cost(self, base_ts):
        latencies = bst_slicing(base_ts)
        for task in base_ts.tasks:
            for sub in task.subtasks:
                cost = sub.exec_time + base_ts.resources[sub.resource].lag
                assert latencies[sub.name] >= cost - 1e-9


class TestEvaluateAssignment:
    def test_score_fields(self, base_ts):
        score = evaluate_assignment(base_ts, even_slicing(base_ts))
        assert set(score.resource_loads) == set(base_ts.resources)
        assert score.max_load == max(score.resource_loads.values())
        assert isinstance(score.feasible, bool)
        assert (score.violations == []) == score.feasible

    def test_feasible_assignment_scores_feasible(self):
        ts = make_chain_taskset()
        score = evaluate_assignment(ts, even_slicing(ts))
        assert score.feasible
