"""Tests for the centralized SLSQP reference solver."""

import pytest

from repro.baselines.centralized import solve_centralized
from repro.core.optimizer import LLAConfig, LLAOptimizer
from tests.conftest import make_chain_taskset


class TestCentralized:
    def test_solves_base_workload(self, base_ts):
        solution = solve_centralized(base_ts)
        assert solution.success
        assert base_ts.is_feasible(solution.latencies, tol=1e-6)

    def test_saturates_resources_at_optimum(self, base_ts):
        solution = solve_centralized(base_ts)
        loads = base_ts.resource_loads(solution.latencies)
        for load in loads.values():
            assert load == pytest.approx(1.0, abs=1e-3)

    def test_warm_start_agrees_with_cold(self, base_ts):
        cold = solve_centralized(base_ts)
        lla = LLAOptimizer(base_ts, LLAConfig(max_iterations=800)).run()
        warm = solve_centralized(base_ts, x0=lla.latencies)
        assert warm.utility == pytest.approx(cold.utility, abs=0.1)

    def test_chain_task(self):
        ts = make_chain_taskset()
        solution = solve_centralized(ts)
        assert solution.success
        # Dedicated unit resources: utility wants small latencies; each
        # subtask should sit at its minimum latency (cost/B = 3).
        for lat in solution.latencies.values():
            assert lat == pytest.approx(3.0, abs=1e-3)

    def test_critical_paths_property(self, base_ts):
        solution = solve_centralized(base_ts)
        crits = solution.critical_paths(base_ts)
        for task in base_ts.tasks:
            assert crits[task.name] <= task.critical_time + 1e-6

    def test_respects_rate_share_bound(self):
        # Large critical time: the rate bound (75ms) binds before the
        # deadline does.
        ts = make_chain_taskset(critical_time=500.0, period=50.0)
        solution = solve_centralized(ts)
        for lat in solution.latencies.values():
            assert lat <= 75.0 + 1e-6
