"""Tests for the command-line interface."""

import json

import pytest

from repro import harness
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_name_is_free_form(self):
        # Validation happens against the registry at dispatch time, not
        # in argparse: the parser accepts any name (and none at all).
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.name == "table1"
        args = build_parser().parse_args(["experiment", "--list"])
        assert args.name is None and args.list_specs

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


def _toy_runner(x=1):
    return {"x": x}


def _toy_spec(name, passes=True):
    return harness.ExperimentSpec(
        name=name,
        description="synthetic spec for CLI tests",
        source="tests",
        runner=_toy_runner,
        params=(harness.Param("x", int, 1, "value"),),
        checks=(
            harness.Check(
                "holds", "x stays positive",
                (lambda r: (r["x"] > 0, {"x": float(r["x"])})) if passes
                else (lambda r: False),
            ),
        ),
        payload=lambda r: dict(r),
    )


class TestExperiment:
    def test_list_names_every_registered_spec(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig5", "fig6", "fig7", "fig8",
                     "ablations", "adaptation", "interference",
                     "percentiles", "resilience"):
            assert name in out
        assert "registered experiments" in out

    def test_requires_exactly_one_mode(self):
        with pytest.raises(SystemExit):
            main(["experiment"])
        with pytest.raises(SystemExit):
            main(["experiment", "fig7", "--list"])

    def test_all_rejects_single_run_flags(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--all", "--backend", "vectorized"])

    def test_malformed_set_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig7", "--set", "iterations"])

    def test_backend_on_unsupported_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig7", "--backend", "vectorized"])

    def test_single_run_writes_valid_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "fig7.json"
        code = main(["experiment", "fig7", "--iterations", "120",
                     "--seed", "7", "--set", "path_gamma_divisor=none",
                     "-o", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig7: PASS" in out
        assert "[PASS]" in out

        data = json.loads(artifact.read_text())
        assert harness.validate_run_result(data) == []
        run = harness.RunResult.from_dict(data)
        assert run.experiment == "fig7"
        assert run.params["iterations"] == 120
        assert run.params["path_gamma_divisor"] is None
        assert run.seed == 7          # recorded even without a seed param
        assert run.profile == "default"
        assert run.passed
        assert {c.name for c in run.checks} == {
            "does_not_converge", "constraints_violated",
            "violation_is_gross",
        }

    def test_failing_check_exits_nonzero(self, capsys):
        harness.register(_toy_spec("synthetic-always-fails", passes=False))
        try:
            code = main(["experiment", "synthetic-always-fails"])
        finally:
            harness.unregister("synthetic-always-fails")
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_all_scorecard_shape(self, tmp_path, capsys, monkeypatch):
        import repro.harness.spec as spec_module
        monkeypatch.setattr(spec_module, "_REGISTRY", {})
        harness.register(_toy_spec("alpha"))
        harness.register(_toy_spec("beta"))

        card_path = tmp_path / "scorecard.json"
        code = main(["experiment", "--all", "-o", str(card_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "REPRODUCTION SCORECARD" in out
        assert "2/2 claims pass" in out

        card = json.loads(card_path.read_text())
        assert harness.validate_scorecard(card) == []
        assert card["passed"] is True
        assert card["counts"] == {
            "experiments": 2, "claims": 2, "passed": 2,
            "failed": 0, "skipped": 0,
        }
        assert [row["experiment"] for row in card["claims"]] == \
            ["alpha", "beta"]
        assert all(row["status"] == "pass" for row in card["claims"])
        assert len(card["runs"]) == 2

    def test_all_exits_nonzero_on_failed_claim(self, tmp_path,
                                               capsys, monkeypatch):
        import repro.harness.spec as spec_module
        monkeypatch.setattr(spec_module, "_REGISTRY", {})
        harness.register(_toy_spec("good"))
        harness.register(_toy_spec("bad", passes=False))

        card_path = tmp_path / "scorecard.json"
        code = main(["experiment", "--all", "-o", str(card_path)])
        capsys.readouterr()
        assert code == 1
        card = json.loads(card_path.read_text())
        assert harness.validate_scorecard(card) == []
        assert card["passed"] is False
        assert card["counts"]["failed"] == 1


class TestExportAndRoundTrip:
    def test_export_to_file(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        code = main(["export-workload", "base", "-o", str(path)])
        assert code == 0
        data = json.loads(path.read_text())
        assert len(data["tasks"]) == 3

    def test_export_to_stdout(self, capsys):
        code = main(["export-workload", "prototype"])
        assert code == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert len(data["tasks"]) == 4


class TestOptimize:
    def test_optimize_schedulable(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        capsys.readouterr()
        alloc = tmp_path / "alloc.json"
        code = main(["optimize", str(wl), "--warm-start",
                     "-o", str(alloc)])
        assert code == 0
        out = capsys.readouterr().out
        assert "converged: True" in out
        payload = json.loads(alloc.read_text())
        assert set(payload) == {"latencies", "shares", "utility",
                                "converged"}
        assert len(payload["latencies"]) == 21

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["optimize", "/nonexistent/workload.json"])

    def test_backend_flag(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        capsys.readouterr()
        outs = {}
        for backend in ("scalar", "vectorized"):
            code = main(["optimize", str(wl), "--warm-start",
                         "--backend", backend])
            assert code == 0
            outs[backend] = capsys.readouterr().out
        # Identical iterates ⇒ identical printed convergence report.
        assert outs["vectorized"] == outs["scalar"]
        assert "converged: True" in outs["scalar"]

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "wl.json",
                                       "--backend", "simd"])


class TestTraceCommands:
    @pytest.fixture
    def trace_file(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        trace = tmp_path / "run.jsonl"
        assert main(["optimize", str(wl), "--warm-start",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_optimize_writes_trace(self, trace_file):
        lines = trace_file.read_text().splitlines()
        assert len(lines) > 100
        first = json.loads(lines[0])
        assert first["kind"] == "run_started"

    def test_trace_summarizes(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "iterations:" in out
        assert "final utility:" in out
        assert "converged cleanly:" in out

    def test_stats_counts_events(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "iteration" in out
        assert "run_finished" in out

    def test_trace_missing_file(self):
        with pytest.raises(SystemExit):
            main(["trace", "/nonexistent/run.jsonl"])

    def test_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(SystemExit):
            main(["trace", str(bad)])


class TestChaos:
    def test_quick_scenario_healthy(self, tmp_path, capsys):
        report = tmp_path / "chaos.json"
        code = main(["chaos", "--scenario", "crash-restart", "--quick",
                     "-o", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "healthy: True" in out
        payload = json.loads(report.read_text())
        assert payload["experiment"] == "resilience"
        assert payload["healthy"] is True
        (entry,) = payload["reports"]
        assert entry["recovered"] is True
        assert entry["degradation_safe"] is True
        assert "utility_trace" not in entry      # traces are opt-in

    def test_traces_flag_includes_trajectories(self, tmp_path, capsys):
        report = tmp_path / "chaos.json"
        code = main(["chaos", "--scenario", "blackout", "--quick",
                     "--traces", "-o", str(report)])
        assert code == 0
        capsys.readouterr()
        (entry,) = json.loads(report.read_text())["reports"]
        assert len(entry["utility_trace"]) == 500

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--scenario", "meteor"])


class TestCheck:
    def test_schedulable_exit_zero(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        assert main(["check", str(wl)]) == 0
        assert "SCHEDULABLE" in capsys.readouterr().out

    def test_unschedulable_exit_one(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "unschedulable", "-o", str(wl)])
        assert main(["check", str(wl), "--iterations", "400"]) == 1
        assert "UNSCHEDULABLE" in capsys.readouterr().out


class TestObservabilityCommands:
    @pytest.fixture
    def workload(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        capsys.readouterr()
        return wl

    @pytest.fixture
    def trace_file(self, workload, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["optimize", str(workload), "--warm-start",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_trace_reports_dropped_samples(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        assert "dropped samples:     0" in capsys.readouterr().out

    def test_stats_prometheus_exposition(self, trace_file, capsys):
        assert main(["stats", str(trace_file), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE lla_iterations_total counter" in out
        assert "lla_iteration_seconds_count" in out

    def test_diagnose_healthy_trace_exits_zero(self, trace_file, workload,
                                               capsys):
        assert main(["diagnose", str(trace_file),
                     "--workload", str(workload)]) == 0
        out = capsys.readouterr().out
        assert "feasibility_margin" in out

    def test_diagnose_json_payload(self, trace_file, capsys):
        assert main(["diagnose", str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "findings" in payload and "critical_path" in payload
        assert all("severity" in f for f in payload["findings"])

    def test_diagnose_missing_trace_exits(self):
        with pytest.raises(SystemExit):
            main(["diagnose", "/nonexistent/run.jsonl"])

    def test_top_plain_renders_frames(self, workload, capsys):
        code = main(["top", str(workload), "--rounds", "20",
                     "--refresh", "10", "--plain"])
        out = capsys.readouterr().out
        assert "repro top — round 20" in out
        assert "utilization" in out
        assert "\x1b[2J" not in out
        assert code in (0, 1)  # feasibility decides the exit code

    def test_bench_diff_flags_regression(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(
            {"bench": "x", "metrics":
             {"n.ops_per_sec": {"type": "gauge", "value": 100.0}}}
        ))
        cur.write_text(json.dumps(
            {"bench": "x", "metrics":
             {"n.ops_per_sec": {"type": "gauge", "value": 10.0}}}
        ))
        report = tmp_path / "report.json"
        assert main(["bench-diff", str(base), str(cur),
                     "-o", str(report)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED n.ops_per_sec" in out
        assert json.loads(report.read_text())["ok"] is False

    def test_bench_diff_identical_artifacts_pass(self, tmp_path, capsys):
        art = tmp_path / "a.json"
        art.write_text(json.dumps(
            {"bench": "x", "metrics":
             {"n.ops_per_sec": {"type": "gauge", "value": 100.0}}}
        ))
        assert main(["bench-diff", str(art), str(art)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_bench_diff_bad_artifact_exits(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"nope": 1}')
        with pytest.raises(SystemExit):
            main(["bench-diff", str(bad), str(bad)])


class TestServe:
    def test_smoke_deadline_times_out_with_exit_2(self, capsys):
        # A deadline far below any real solve forces the wait_for to
        # fire; the command must exit 2 (distinct from "unhealthy" = 1)
        # rather than hang CI.
        code = main(["serve", "--smoke", "--deadline", "0.01"])
        assert code == 2
        assert "deadline" in capsys.readouterr().err

    def test_harden_rejects_short_fault_schedules(self, capsys):
        code = main(["serve", "--smoke", "--harden", "--ticks", "50"])
        assert code == 2
        assert "105" in capsys.readouterr().err

    def test_parser_accepts_hardening_flags(self):
        args = build_parser().parse_args(
            ["serve", "--smoke", "--harden", "--ticks", "110",
             "--deadline", "300"])
        assert args.harden
        assert args.ticks == 110
        assert args.deadline == 300.0
