"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table1"])
        assert args.name == "table1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestExportAndRoundTrip:
    def test_export_to_file(self, tmp_path, capsys):
        path = tmp_path / "wl.json"
        code = main(["export-workload", "base", "-o", str(path)])
        assert code == 0
        data = json.loads(path.read_text())
        assert len(data["tasks"]) == 3

    def test_export_to_stdout(self, capsys):
        code = main(["export-workload", "prototype"])
        assert code == 0
        out = capsys.readouterr().out
        data = json.loads(out)
        assert len(data["tasks"]) == 4


class TestOptimize:
    def test_optimize_schedulable(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        capsys.readouterr()
        alloc = tmp_path / "alloc.json"
        code = main(["optimize", str(wl), "--warm-start",
                     "-o", str(alloc)])
        assert code == 0
        out = capsys.readouterr().out
        assert "converged: True" in out
        payload = json.loads(alloc.read_text())
        assert set(payload) == {"latencies", "shares", "utility",
                                "converged"}
        assert len(payload["latencies"]) == 21

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["optimize", "/nonexistent/workload.json"])

    def test_backend_flag(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        capsys.readouterr()
        outs = {}
        for backend in ("scalar", "vectorized"):
            code = main(["optimize", str(wl), "--warm-start",
                         "--backend", backend])
            assert code == 0
            outs[backend] = capsys.readouterr().out
        # Identical iterates ⇒ identical printed convergence report.
        assert outs["vectorized"] == outs["scalar"]
        assert "converged: True" in outs["scalar"]

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "wl.json",
                                       "--backend", "simd"])


class TestTraceCommands:
    @pytest.fixture
    def trace_file(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        trace = tmp_path / "run.jsonl"
        assert main(["optimize", str(wl), "--warm-start",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_optimize_writes_trace(self, trace_file):
        lines = trace_file.read_text().splitlines()
        assert len(lines) > 100
        first = json.loads(lines[0])
        assert first["kind"] == "run_started"

    def test_trace_summarizes(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "iterations:" in out
        assert "final utility:" in out
        assert "converged cleanly:" in out

    def test_stats_counts_events(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "iteration" in out
        assert "run_finished" in out

    def test_trace_missing_file(self):
        with pytest.raises(SystemExit):
            main(["trace", "/nonexistent/run.jsonl"])

    def test_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(SystemExit):
            main(["trace", str(bad)])


class TestChaos:
    def test_quick_scenario_healthy(self, tmp_path, capsys):
        report = tmp_path / "chaos.json"
        code = main(["chaos", "--scenario", "crash-restart", "--quick",
                     "-o", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "healthy: True" in out
        payload = json.loads(report.read_text())
        assert payload["experiment"] == "resilience"
        assert payload["healthy"] is True
        (entry,) = payload["reports"]
        assert entry["recovered"] is True
        assert entry["degradation_safe"] is True
        assert "utility_trace" not in entry      # traces are opt-in

    def test_traces_flag_includes_trajectories(self, tmp_path, capsys):
        report = tmp_path / "chaos.json"
        code = main(["chaos", "--scenario", "blackout", "--quick",
                     "--traces", "-o", str(report)])
        assert code == 0
        capsys.readouterr()
        (entry,) = json.loads(report.read_text())["reports"]
        assert len(entry["utility_trace"]) == 500

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--scenario", "meteor"])


class TestCheck:
    def test_schedulable_exit_zero(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "base", "-o", str(wl)])
        assert main(["check", str(wl)]) == 0
        assert "SCHEDULABLE" in capsys.readouterr().out

    def test_unschedulable_exit_one(self, tmp_path, capsys):
        wl = tmp_path / "wl.json"
        main(["export-workload", "unschedulable", "-o", str(wl)])
        assert main(["check", str(wl), "--iterations", "400"]) == 1
        assert "UNSCHEDULABLE" in capsys.readouterr().out
