"""Trace schema versioning and recorder drop-count surfacing.

Version history: schema 0 is the pre-versioning JSONL format (no
``schema`` key on the line), schema 1 added the explicit field.  Readers
accept both, skip anything newer with one counted warning, and never
misparse unknown versions into diagnostics.
"""

import json
import logging

from repro.analysis.trace import TraceSummary, summarize_trace
from repro.telemetry import SCHEMA_VERSION, TraceEvent, read_trace
from repro.telemetry.replay import (
    SUPPORTED_SCHEMAS,
    recorder_drops_from_trace,
    records_from_trace,
    summarize_trace_file,
    supported_events,
)


def event(kind, schema=SCHEMA_VERSION, **data):
    return TraceEvent(kind=kind, ts=0.0, data=data, schema=schema)


def iteration_event(i, schema=SCHEMA_VERSION):
    return event(
        "iteration", schema=schema,
        iteration=i, utility=-1.0, latencies={"t.s": 1.0},
        resource_prices={"r": 1.0}, path_prices={}, resource_loads={"r": 0.5},
        congested_resources=[], congested_paths=[], critical_paths={"t": 1.0},
        duration_s=0.0,
    )


class TestSchemaVersioning:
    def test_current_version_is_supported(self):
        assert SCHEMA_VERSION in SUPPORTED_SCHEMAS
        assert 0 in SUPPORTED_SCHEMAS  # the pre-versioning format

    def test_written_events_carry_the_version(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(event("x").to_json() + "\n")
        line = json.loads(path.read_text())
        assert line["schema"] == SCHEMA_VERSION
        assert read_trace(path)[0].schema == SCHEMA_VERSION

    def test_versionless_lines_parse_as_schema_zero(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "x", "ts": 0.0, "data": {}}\n')
        events = read_trace(path)
        assert events[0].schema == 0
        assert supported_events(events) == events

    def test_unknown_versions_are_skipped_with_counted_warning(self, caplog):
        events = [
            iteration_event(1),
            iteration_event(2, schema=99),
            iteration_event(3, schema=99),
            iteration_event(4),
        ]
        with caplog.at_level(logging.WARNING, logger="repro.telemetry.replay"):
            kept = supported_events(events)
        assert [e.data["iteration"] for e in kept] == [1, 4]
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "2 events" in message and "99" in message

    def test_replay_filters_unknown_versions(self):
        records = records_from_trace([
            iteration_event(1),
            iteration_event(2, schema=99),
        ])
        assert [r.iteration for r in records] == [1]


class TestRecorderDrops:
    def snapshot_event(self, jobs=3, jobsets=2):
        return event("metrics_snapshot", metrics={
            "sim.recorder.jobs_dropped_total":
                {"type": "counter", "value": float(jobs)},
            "sim.recorder.jobsets_dropped_total":
                {"type": "counter", "value": float(jobsets)},
        })

    def test_sums_both_drop_counters(self):
        assert recorder_drops_from_trace([self.snapshot_event()]) == 5

    def test_zero_without_snapshot(self):
        assert recorder_drops_from_trace([iteration_event(1)]) == 0

    def test_summary_carries_drop_count(self):
        summary = summarize_trace(
            records_from_trace([iteration_event(1)]), dropped_samples=5,
        )
        assert summary.dropped_samples == 5
        assert TraceSummary.__dataclass_fields__["dropped_samples"]

    def test_summarize_trace_file_picks_up_drops(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [iteration_event(1).to_json(),
                 self.snapshot_event().to_json()]
        path.write_text("\n".join(lines) + "\n")
        assert summarize_trace_file(path).dropped_samples == 5
