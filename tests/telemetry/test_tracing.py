"""Unit tests for the structured event tracer and its sinks."""

import logging

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    InMemorySink,
    JsonlFileSink,
    LoggingSink,
    TraceEvent,
    Tracer,
    read_trace,
)


class TestTraceEvent:
    def test_json_round_trip(self):
        event = TraceEvent(kind="iteration", ts=1.5,
                           data={"utility": 3.25, "paths": [[1, 2]]})
        decoded = TraceEvent.from_json(event.to_json())
        assert decoded == event

    def test_repr_exact_floats_survive(self):
        value = 0.1 + 0.2  # not representable exactly; must round-trip bitwise
        event = TraceEvent(kind="x", ts=0.0, data={"v": value})
        assert TraceEvent.from_json(event.to_json()).data["v"] == value

    def test_from_json_rejects_garbage(self):
        with pytest.raises(TelemetryError):
            TraceEvent.from_json("not json at all {")
        with pytest.raises(TelemetryError):
            TraceEvent.from_json('{"missing": "fields"}')


class TestTracer:
    def test_no_sinks_is_disabled_noop(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.emit("iteration", utility=1.0)  # must not raise

    def test_in_memory_sink_captures_events(self):
        sink = InMemorySink()
        tracer = Tracer([sink])
        assert tracer.enabled
        tracer.emit("run_started", runtime="optimizer")
        tracer.emit("iteration", utility=2.0)
        tracer.emit("iteration", utility=3.0)
        assert [e.kind for e in sink.events] == \
            ["run_started", "iteration", "iteration"]
        assert [e.data["utility"] for e in sink.of_kind("iteration")] == \
            [2.0, 3.0]

    def test_add_remove_sink(self):
        sink = InMemorySink()
        tracer = Tracer()
        tracer.add_sink(sink)
        tracer.emit("x")
        tracer.remove_sink(sink)
        assert not tracer.enabled
        tracer.emit("y")
        assert [e.kind for e in sink.events] == ["x"]


class TestJsonlFileSink:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlFileSink(path)])
        tracer.emit("run_started", runtime="optimizer", budget=100)
        tracer.emit("iteration", utility=1.25)
        tracer.close()
        events = read_trace(path)
        assert len(events) == 2
        assert events[0].kind == "run_started"
        assert events[0].data["budget"] == 100
        assert events[1].data["utility"] == 1.25

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlFileSink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(TelemetryError):
            sink.emit(TraceEvent(kind="x", ts=0.0, data={}))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer([JsonlFileSink(path)])
        tracer.emit("a")
        tracer.close()
        path.write_text(path.read_text() + "\n\n")
        assert [e.kind for e in read_trace(path)] == ["a"]


class TestLoggingSink:
    def test_bridges_to_stdlib_logging(self, caplog):
        logger = logging.getLogger("repro.test.tracebridge")
        tracer = Tracer([LoggingSink(logger, level=logging.INFO)])
        with caplog.at_level(logging.INFO, logger=logger.name):
            tracer.emit("convergence", iteration=42)
        assert any("convergence" in rec.message and "42" in rec.message
                   for rec in caplog.records)
