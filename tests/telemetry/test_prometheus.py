"""Prometheus text exposition of MetricsRegistry snapshots."""

import math

from repro.telemetry import (
    MetricsRegistry,
    render_prometheus,
    render_prometheus_snapshot,
)


def make_registry():
    registry = MetricsRegistry()
    registry.counter("lla.iterations_total", "iterations run").inc(3)
    registry.gauge("lla.utility", "current utility").set(-79.5)
    hist = registry.histogram("lla.iteration_seconds", "per-iteration wall")
    for value in (0.001, 0.002, 0.003):
        hist.observe(value)
    return registry


class TestRendering:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(make_registry())
        assert "# TYPE lla_iterations_total counter\n" in text
        assert "lla_iterations_total 3\n" in text
        assert "# TYPE lla_utility gauge\n" in text
        assert "lla_utility -79.5\n" in text

    def test_distribution_renders_quantiles_count_sum(self):
        text = render_prometheus(make_registry())
        assert '# TYPE lla_iteration_seconds summary' in text
        assert 'lla_iteration_seconds{quantile="0.5"} 0.002' in text
        assert "lla_iteration_seconds_count 3" in text
        assert "lla_iteration_seconds_sum 0.006" in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("bus.messages-sent.total", "x").inc(1)
        text = render_prometheus(registry)
        assert "bus_messages_sent_total 1\n" in text

    def test_output_ends_with_newline_and_sorts(self):
        text = render_prometheus(make_registry())
        assert text.endswith("\n")
        names = [
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE")
        ]
        assert names == sorted(names)

    def test_renders_from_raw_snapshot_dict(self):
        # The trace-replay path: stats --prometheus renders the last
        # metrics_snapshot event without a live registry.
        snapshot = make_registry().snapshot()
        assert render_prometheus_snapshot(snapshot) == \
            render_prometheus(make_registry())

    def test_non_finite_values_render_prometheus_style(self):
        text = render_prometheus_snapshot({
            "x": {"type": "gauge", "value": math.inf},
            "y": {"type": "gauge", "value": math.nan},
        })
        assert "x +Inf\n" in text
        assert "y NaN\n" in text

    def test_unknown_type_falls_back_to_gauge(self):
        text = render_prometheus_snapshot({
            "z": {"type": "exotic", "value": 2.0},
        })
        assert "# TYPE z gauge\n" in text
        assert "z 2\n" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus_snapshot({}) == ""
