"""Injectable trace clock: wall default, virtual clocks in deterministic runs."""

import time

from repro.core import LLAConfig, LLAOptimizer
from repro.sim.engine import SimulationEngine
from repro.telemetry import Telemetry
from repro.telemetry.tracing import InMemorySink, Tracer
from repro.workloads.paper import base_workload


def trace_tuples(telemetry):
    sink = telemetry.tracer.sinks[0]
    # duration_s and the metrics_snapshot payload carry measured wall
    # durations (profiling data), the only fields documented to differ
    # between otherwise identical runs.
    return [
        (ev.kind, ev.ts,
         {} if ev.kind == "metrics_snapshot"
         else {k: v for k, v in ev.data.items() if k != "duration_s"})
        for ev in sink.events
    ]


class TestTracerClock:
    def test_default_is_wall_clock(self):
        tracer = Tracer([InMemorySink()])
        assert not tracer.clock_injected
        before = time.time()
        event = tracer.emit("tick")
        assert before <= event.ts <= time.time()

    def test_injected_clock_stamps_events(self):
        tracer = Tracer([InMemorySink()], clock=lambda: 42.0)
        assert tracer.clock_injected
        assert tracer.emit("tick").ts == 42.0

    def test_set_clock_after_construction(self):
        tracer = Tracer([InMemorySink()])
        tracer.set_clock(lambda: 7.0)
        assert tracer.emit("tick").ts == 7.0


class TestVirtualClockWiring:
    def test_sim_engine_installs_virtual_clock(self):
        telemetry = Telemetry.in_memory()
        engine = SimulationEngine(telemetry=telemetry)
        engine.schedule(3.5, lambda: telemetry.tracer.emit("probe"))
        engine.run()
        (event,) = telemetry.tracer.sinks[0].of_kind("probe")
        assert event.ts == 3.5

    def test_explicit_clock_is_not_clobbered(self):
        telemetry = Telemetry.in_memory(clock=lambda: 99.0)
        engine = SimulationEngine(telemetry=telemetry)
        engine.schedule(3.5, lambda: telemetry.tracer.emit("probe"))
        engine.run()
        (event,) = telemetry.tracer.sinks[0].of_kind("probe")
        assert event.ts == 99.0

    def test_optimizer_traces_are_run_identical(self):
        def run():
            telemetry = Telemetry.in_memory()
            LLAOptimizer(
                base_workload(), LLAConfig(max_iterations=25),
                telemetry=telemetry,
            ).run()
            return trace_tuples(telemetry)

        first, second = run(), run()
        assert first == second
        # The virtual clock actually drives the stamps (not wall time).
        assert all(ts == float(int(ts)) for _, ts, _ in first)
