"""Integration tests: instrumentation hooks across optimizer, runtime, sim.

The load-bearing guarantees:

* a traced run's JSONL file replays into the *same* ``TraceSummary`` as
  the in-process iteration history (exact dataclass equality);
* tracing must not perturb the optimization — iterates are bit-identical
  with telemetry on and off.
"""

import logging

import pytest

from repro.analysis.trace import summarize_trace
from repro.core.error_correction import ErrorCorrector, ErrorSample
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.distributed import DistributedConfig, DistributedLLARuntime
from repro.sim.closedloop import ClosedLoopRuntime
from repro.telemetry import (
    Telemetry,
    event_counts,
    read_trace,
    records_from_trace_file,
    summarize_trace_file,
)
from repro.workloads.paper import base_workload


class TestOptimizerTracing:
    def test_trace_replays_to_identical_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry.to_file(path)
        result = LLAOptimizer(
            base_workload(), LLAConfig(max_iterations=300),
            telemetry=telemetry,
        ).run()
        telemetry.close()

        replayed = records_from_trace_file(path)
        assert len(replayed) == len(result.history)
        assert summarize_trace(replayed) == summarize_trace(result.history)
        assert summarize_trace_file(path) == summarize_trace(result.history)

    def test_run_lifecycle_events_present(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry.to_file(path)
        LLAOptimizer(
            base_workload(), LLAConfig(max_iterations=150),
            telemetry=telemetry,
        ).run()
        telemetry.close()

        events = read_trace(path)
        counts = event_counts(events)
        assert counts["run_started"] == 1
        assert counts["run_finished"] == 1
        assert counts["iteration"] == 150
        assert counts["price_update"] >= 1
        assert counts["metrics_snapshot"] == 1
        started = next(e for e in events if e.kind == "run_started")
        assert started.data["runtime"] == "optimizer"

    def test_tracing_does_not_perturb_iterates(self, tmp_path):
        plain = LLAOptimizer(
            base_workload(), LLAConfig(max_iterations=250)
        ).run()
        telemetry = Telemetry.to_file(tmp_path / "run.jsonl")
        traced = LLAOptimizer(
            base_workload(), LLAConfig(max_iterations=250),
            telemetry=telemetry,
        ).run()
        telemetry.close()

        assert traced.latencies == plain.latencies
        assert traced.utility == plain.utility
        assert traced.utility_trace() == plain.utility_trace()

    def test_metrics_recorded(self):
        telemetry = Telemetry.in_memory()
        LLAOptimizer(
            base_workload(), LLAConfig(max_iterations=100),
            telemetry=telemetry,
        ).run()
        snap = telemetry.registry.snapshot()
        assert snap["lla.iterations_total"]["value"] == 100.0
        assert snap["lla.iteration_seconds"]["count"] == 100
        assert "lla.utility" in snap
        assert "lla.price_drift" in snap

    def test_non_convergence_warning(self, caplog):
        config = LLAConfig(max_iterations=3, stop_on_convergence=True)
        with caplog.at_level(logging.WARNING, logger="repro.core.optimizer"):
            LLAOptimizer(base_workload(), config).run()
        assert any("did not converge" in rec.getMessage()
                   for rec in caplog.records)


class TestDistributedTracing:
    def test_lossy_run_replays_to_identical_summary(self, tmp_path):
        path = tmp_path / "dist.jsonl"
        telemetry = Telemetry.to_file(path)
        runtime = DistributedLLARuntime(
            base_workload(),
            DistributedConfig(rounds=200, delay=1, jitter=1,
                              loss_probability=0.05, seed=7),
            telemetry=telemetry,
        )
        result = runtime.run()
        telemetry.close()

        replayed = records_from_trace_file(path)
        assert summarize_trace(replayed) == summarize_trace(result.history)

    def test_bus_metrics_and_message_events(self, tmp_path):
        path = tmp_path / "dist.jsonl"
        telemetry = Telemetry.to_file(path)
        DistributedLLARuntime(
            base_workload(),
            DistributedConfig(rounds=60, loss_probability=0.2, seed=3),
            telemetry=telemetry,
        ).run()
        telemetry.close()

        snap = telemetry.registry.snapshot()
        sent = snap["bus.sent_total"]["value"]
        dropped = snap["bus.dropped_total"]["value"]
        delivered = snap["bus.delivered_total"]["value"]
        assert sent > 0 and dropped > 0 and delivered > 0
        # Messages still in flight at run end are neither delivered nor
        # dropped, so delivered can fall short of sent - dropped.
        assert delivered <= sent - dropped

        counts = event_counts(read_trace(path))
        # Every send becomes exactly one event: sent xor dropped.
        assert counts["message_sent"] == sent - dropped
        assert counts["message_dropped"] == dropped

    def test_partition_event_and_warning(self, caplog):
        telemetry = Telemetry.in_memory()
        runtime = DistributedLLARuntime(
            base_workload(), DistributedConfig(rounds=10),
            telemetry=telemetry,
        )
        with caplog.at_level(logging.WARNING,
                             logger="repro.distributed.network"):
            runtime.bus.partition("controller:T1", "resource:r0")
        kinds = [e.kind for e in telemetry.tracer.sinks[0].events]
        assert "partition" in kinds
        assert any("partition" in rec.getMessage()
                   for rec in caplog.records)

    def test_price_staleness_tracks_partitioned_controller(self):
        telemetry = Telemetry.in_memory()
        runtime = DistributedLLARuntime(
            base_workload(), DistributedConfig(rounds=5),
            telemetry=telemetry,
        )
        runtime.run()
        fresh = telemetry.registry.gauge("dist.price_staleness_max").value
        assert fresh <= 1.0
        for rname in runtime.resources:
            runtime.bus.partition("controller:T1", f"resource:{rname}")
        for _ in range(10):
            runtime.step()
        starved = telemetry.registry.gauge("dist.price_staleness_max").value
        assert starved >= 8.0


class TestCorrectorTelemetry:
    def test_apply_records_metric_and_event(self):
        telemetry = Telemetry.in_memory()
        taskset = base_workload()
        corrector = ErrorCorrector(taskset, telemetry=telemetry)
        subtask = taskset.subtask_names[0]
        corrector.observe(ErrorSample(subtask, predicted=10.0, observed=8.0))
        corrector.apply(subtask)

        snap = telemetry.registry.snapshot()
        assert snap["correction.applied_total"]["value"] == 1.0
        assert snap["correction.magnitude"]["count"] == 1
        sink = telemetry.tracer.sinks[0]
        events = sink.of_kind("correction_applied")
        assert len(events) == 1
        assert events[0].data["subtask"] == subtask
        assert events[0].data["error"] == pytest.approx(-2.0)


class TestClosedLoopTelemetry:
    def test_epoch_events_and_metrics(self):
        telemetry = Telemetry.in_memory()
        loop = ClosedLoopRuntime(
            base_workload(),
            window=200.0,
            optimizer_config=LLAConfig(max_iterations=200),
            optimizer_steps_per_epoch=50,
            recorder_max_samples=256,
            telemetry=telemetry,
        )
        loop.run_epoch()
        loop.run_epoch()

        snap = telemetry.registry.snapshot()
        assert snap["loop.epochs_total"]["value"] == 2.0
        assert snap["loop.epoch_seconds"]["count"] == 2
        epochs = telemetry.tracer.sinks[0].of_kind("epoch")
        assert [e.data["epoch"] for e in epochs] == [1, 2]
