"""Unit tests for the metrics registry."""

import json
import time

import pytest

from repro.errors import TelemetryError
from repro.telemetry import MetricsRegistry, default_registry, set_default_registry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "number of hits")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative_increment(self):
        c = MetricsRegistry().counter("hits")
        with pytest.raises(TelemetryError):
            c.inc(-1.0)

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        with pytest.raises(TelemetryError):
            reg.gauge("hits")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == pytest.approx(7.0)


class TestHistogram:
    def test_running_stats(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(10.0)
        assert h.min == pytest.approx(1.0)
        assert h.max == pytest.approx(4.0)
        assert h.mean == pytest.approx(2.5)

    def test_percentile(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(99) == pytest.approx(99.01)

    def test_empty_percentile_is_none(self):
        h = MetricsRegistry().histogram("lat")
        assert h.percentile(50) is None
        assert h.mean == 0.0

    def test_window_cap_keeps_running_stats_exact(self):
        h = MetricsRegistry().histogram("lat", max_samples=10)
        for v in range(1, 101):
            h.observe(float(v))
        # Running aggregates cover every observation ...
        assert h.count == 100
        assert h.sum == pytest.approx(5050.0)
        assert h.min == pytest.approx(1.0)
        # ... while percentiles see only the retained tail window.
        assert h.dropped == 90
        assert sorted(h.values()) == [float(v) for v in range(91, 101)]
        assert h.percentile(0) == pytest.approx(91.0)

    def test_rejects_bad_max_samples(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().histogram("lat", max_samples=0)


class TestTimer:
    def test_context_manager_records_elapsed(self):
        t = MetricsRegistry().timer("span")
        with t.time():
            time.sleep(0.01)
        assert t.count == 1
        # Generous bounds: sleep may overshoot, never undershoot.
        assert 0.009 <= t.sum < 1.0

    def test_observe_direct(self):
        t = MetricsRegistry().timer("span")
        t.observe(0.5)
        assert t.mean == pytest.approx(0.5)


class TestDisabledRegistry:
    def test_writes_are_noops(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("hits")
        g = reg.gauge("depth")
        h = reg.histogram("lat")
        t = reg.timer("span")
        c.inc(5.0)
        g.set(9.0)
        h.observe(1.0)
        with t.time():
            pass
        assert c.value == 0.0
        assert g.value == 0.0
        assert h.count == 0
        assert t.count == 0

    def test_enable_disable_toggle(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("hits")
        c.inc()
        reg.enable()
        c.inc()
        reg.disable()
        c.inc()
        assert c.value == 1.0


class TestRegistry:
    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3.0)
        reg.gauge("depth").set(1.5)
        reg.histogram("lat").observe(2.0)
        snap = reg.snapshot()
        decoded = json.loads(json.dumps(snap))
        assert decoded["hits"]["value"] == 3.0
        assert decoded["lat"]["count"] == 1

    def test_reset_zeroes_but_keeps_metrics(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc(4.0)
        reg.reset()
        assert c.value == 0.0
        assert reg.counter("hits") is c

    def test_clear_forgets_metrics(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        reg.clear()
        assert len(reg) == 0

    def test_default_registry_swap(self):
        original = default_registry()
        replacement = MetricsRegistry()
        try:
            set_default_registry(replacement)
            assert default_registry() is replacement
        finally:
            set_default_registry(original)
