"""Causal spans: lifetime API, trace reassembly, critical paths.

The load-bearing guarantees:

* spans reassembled from a written trace equal the spans the live run
  produced (replay==live extended to causality);
* two identical runs emit byte-identical span streams (counter ids +
  virtual clock, no randomness);
* a chaos-run critical path crosses agent -> bus -> controller.
"""

import pytest

from repro.distributed import DistributedConfig, DistributedLLARuntime
from repro.distributed.faults import CrashWindow, FaultPlan
from repro.errors import TelemetryError
from repro.telemetry import (
    InMemorySink,
    Telemetry,
    critical_path,
    format_critical_path,
    read_trace,
    spans_from_trace,
)
from repro.workloads.paper import base_workload


def make_telemetry(clock=None):
    telemetry = Telemetry.in_memory(clock=clock)
    sink = telemetry.tracer._sinks[0]
    return telemetry, sink


class TestSpanLifetimes:
    def test_scoped_span_emits_start_and_end(self):
        telemetry, sink = make_telemetry()
        with telemetry.spans.start_span("act", agent="r0") as span:
            assert span.context.parent_id is None
        kinds = [e.kind for e in sink.events]
        assert kinds == ["span_start", "span_end"]
        assert sink.events[0].data["name"] == "act"
        assert sink.events[0].data["agent"] == "r0"
        assert sink.events[1].data["span_id"] == span.context.span_id

    def test_split_lifetime_open_end(self):
        telemetry, sink = make_telemetry()
        ctx = telemetry.spans.open_span("message", sender="a")
        telemetry.spans.end_span(ctx, status="dropped", reason="loss")
        assert sink.events[-1].data["status"] == "dropped"
        assert sink.events[-1].data["reason"] == "loss"

    def test_parent_is_threaded(self):
        telemetry, _ = make_telemetry()
        with telemetry.spans.start_span("round") as outer:
            child = telemetry.spans.open_span(
                "message", parent=outer.context
            )
            telemetry.spans.end_span(child)
        assert child.parent_id == outer.context.span_id
        assert child.trace_id == outer.context.trace_id

    def test_double_end_of_handle_raises(self):
        # The tracker itself is stateless (owners track open spans);
        # the scoped handle is where double-close is caught live.
        telemetry, _ = make_telemetry()
        span = telemetry.spans.start_span("x")
        span.end()
        with pytest.raises(TelemetryError):
            span.end()

    def test_double_end_in_trace_raises_on_reassembly(self):
        telemetry, sink = make_telemetry()
        ctx = telemetry.spans.open_span("x")
        telemetry.spans.end_span(ctx)
        telemetry.spans.end_span(ctx)  # stateless tracker can't notice
        with pytest.raises(TelemetryError):
            spans_from_trace(sink.events)

    def test_reserved_attrs_rejected(self):
        telemetry, _ = make_telemetry()
        with pytest.raises(TelemetryError):
            telemetry.spans.open_span("x", span_id=7)

    def test_span_ids_are_sequential(self):
        telemetry, _ = make_telemetry()
        a = telemetry.spans.open_span("a")
        b = telemetry.spans.open_span("b")
        telemetry.spans.end_span(a)
        telemetry.spans.end_span(b)
        assert b.span_id == a.span_id + 1


class TestSpansFromTrace:
    def test_reassembles_complete_and_dangling(self):
        telemetry, sink = make_telemetry()
        done = telemetry.spans.open_span("done")
        telemetry.spans.end_span(done, status="ok")
        telemetry.spans.open_span("in_flight")
        spans = spans_from_trace(sink.events)
        by_name = {s.name: s for s in spans}
        assert by_name["done"].complete
        assert by_name["done"].status == "ok"
        assert not by_name["in_flight"].complete
        assert by_name["in_flight"].end_ts is None

    def test_end_without_start_raises(self):
        telemetry, sink = make_telemetry()
        ctx = telemetry.spans.open_span("x")
        telemetry.spans.end_span(ctx)
        with pytest.raises(TelemetryError):
            spans_from_trace([sink.events[1]])

    def test_to_dict_round_trips_identity(self):
        telemetry, sink = make_telemetry()
        ctx = telemetry.spans.open_span("x", agent="r1")
        telemetry.spans.end_span(ctx)
        record = spans_from_trace(sink.events)[0]
        data = record.to_dict()
        assert data["span_id"] == ctx.span_id
        assert data["attrs"]["agent"] == "r1"
        assert data["status"] == "ok"


class TestCriticalPath:
    def test_walks_parent_links_root_first(self):
        # A constant virtual clock (as the runtimes inject) ties every
        # end_ts, so the tie-break picks the deepest chain.
        telemetry, sink = make_telemetry(clock=lambda: 0.0)
        with telemetry.spans.start_span("run") as run:
            with telemetry.spans.start_span(
                "round", parent=run.context
            ) as rnd:
                with telemetry.spans.start_span(
                    "act", parent=rnd.context
                ):
                    pass
        path = critical_path(spans_from_trace(sink.events))
        assert [s.name for s in path] == ["run", "round", "act"]

    def test_empty_without_completed_spans(self):
        telemetry, sink = make_telemetry()
        telemetry.spans.open_span("open_forever")
        assert critical_path(spans_from_trace(sink.events)) == []
        assert format_critical_path([]) == "(no completed spans)"

    def test_format_is_flat_one_line_per_hop(self):
        telemetry, sink = make_telemetry(clock=lambda: 0.0)
        with telemetry.spans.start_span("run") as run:
            with telemetry.spans.start_span("act", parent=run.context):
                pass
        text = format_critical_path(
            critical_path(spans_from_trace(sink.events))
        )
        lines = text.splitlines()
        assert len(lines) == 2
        assert "run" in lines[0] and "act" in lines[1]


def run_distributed(tmp_path, name, rounds=30, fault_plan=None):
    path = tmp_path / f"{name}.jsonl"
    telemetry = Telemetry.to_file(path)
    runtime = DistributedLLARuntime(
        base_workload(),
        config=DistributedConfig(rounds=rounds, fault_plan=fault_plan),
        telemetry=telemetry,
    )
    runtime.run()
    telemetry.close()
    return path


class TestDistributedSpans:
    def test_critical_path_crosses_agent_bus_controller(self, tmp_path):
        plan = FaultPlan(crashes=(
            CrashWindow(agent="resource:r0", at=8, restart_at=12),
        ))
        path = run_distributed(tmp_path, "chaos", fault_plan=plan)
        spans = spans_from_trace(read_trace(path))
        chain = critical_path(spans)
        names = [s.name for s in chain]
        assert names[0] == "run"
        # The causal chain must hop act -> message -> act at least once:
        # an agent's decision, carried by the bus, causing another
        # agent's decision.
        hops = [
            i for i in range(len(chain) - 2)
            if names[i] == "act" and names[i + 1] == "message"
            and names[i + 2] == "act"
        ]
        assert hops, f"no agent->bus->agent hop in {names}"
        i = hops[0]
        assert chain[i].attrs["agent"] != chain[i + 2].attrs["agent"]
        # Parent links are what make it causal, not just ordered.
        for parent, child in zip(chain, chain[1:]):
            assert child.context.parent_id == parent.context.span_id

    def test_replayed_spans_equal_live_spans(self, tmp_path):
        sink = InMemorySink()
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry.to_file(path)
        telemetry.add_sink(sink)
        runtime = DistributedLLARuntime(
            base_workload(),
            config=DistributedConfig(rounds=25),
            telemetry=telemetry,
        )
        runtime.run()
        telemetry.close()
        assert spans_from_trace(read_trace(path)) == \
            spans_from_trace(sink.events)

    def test_identical_runs_emit_identical_span_streams(self, tmp_path):
        # Full traces differ in wall-time fields (duration_s); the span
        # stream itself must be byte-identical — counter ids + the
        # round-number clock, no randomness.
        def span_lines(path):
            return [
                line for line in path.read_text().splitlines()
                if '"span_start"' in line or '"span_end"' in line
            ]

        first = run_distributed(tmp_path, "a", rounds=20)
        second = run_distributed(tmp_path, "b", rounds=20)
        assert span_lines(first) == span_lines(second)
        assert span_lines(first)  # the filter actually matched

    def test_every_message_span_eventually_closes(self, tmp_path):
        path = run_distributed(tmp_path, "closed", rounds=30)
        spans = spans_from_trace(read_trace(path))
        dangling = [
            s for s in spans
            if s.name == "message" and not s.complete
        ]
        # Messages still in flight at run end are the only legal danglers.
        assert all(
            s.attrs.get("send_round", 0) >= 29 for s in dangling
        )

    def test_tracing_does_not_perturb_the_run(self):
        plain = DistributedLLARuntime(
            base_workload(), config=DistributedConfig(rounds=40)
        )
        plain_result = plain.run()
        telemetry = Telemetry.in_memory()
        traced = DistributedLLARuntime(
            base_workload(), config=DistributedConfig(rounds=40),
            telemetry=telemetry,
        )
        traced_result = traced.run()
        assert traced_result.latencies == plain_result.latencies
        assert traced_result.utility == plain_result.utility
