"""Unit tests for the RunResult envelope and the schema validators."""

import json

import numpy as np
import pytest

from repro.errors import HarnessError
from repro.harness import (
    RUN_RESULT_SCHEMA,
    SCORECARD_SCHEMA,
    CheckResult,
    RunResult,
    json_default,
    validate_run_result,
    validate_scorecard,
)


def make_run(**overrides):
    fields = dict(
        experiment="toy",
        description="a toy run",
        params={"a": 1},
        seed=7,
        backend="scalar",
        profile="default",
        git_sha="abc1234",
        wall_time_seconds=0.25,
        checks=[
            CheckResult("holds", "claim holds", True, {"err": 0.01}),
            CheckResult("slow", "full budget only", None, skipped=True),
        ],
        payload={"utility": 10.0},
        source="Section 5",
    )
    fields.update(overrides)
    return RunResult(**fields)


class TestCheckResult:
    def test_status_values(self):
        assert CheckResult("c", "", True).status == "pass"
        assert CheckResult("c", "", False).status == "fail"
        assert CheckResult("c", "", None, skipped=True).status == "skipped"

    def test_round_trip_preserves_skip(self):
        skipped = CheckResult("c", "d", None, skipped=True)
        back = CheckResult.from_dict(skipped.to_dict())
        assert back.skipped and back.status == "skipped"


class TestRunResult:
    def test_passed_ignores_skipped(self):
        assert make_run().passed
        failing = make_run(checks=[
            CheckResult("holds", "", False),
            CheckResult("slow", "", None, skipped=True),
        ])
        assert not failing.passed

    def test_counts(self):
        assert make_run().counts == {
            "total": 2, "passed": 1, "failed": 0, "skipped": 1,
        }

    def test_check_lookup(self):
        assert make_run().check("holds").passed is True
        with pytest.raises(HarnessError, match="no check 'nope'"):
            make_run().check("nope")

    def test_to_dict_validates_clean(self):
        assert validate_run_result(make_run().to_dict()) == []

    def test_json_round_trip(self):
        run = make_run()
        back = RunResult.from_dict(json.loads(run.to_json()))
        assert back == run

    def test_from_dict_rejects_bad_artifact(self):
        with pytest.raises(HarnessError, match="does not validate"):
            RunResult.from_dict({"schema": "wrong"})

    def test_summary_mentions_verdict_and_skips(self):
        text = make_run().summary()
        assert "toy: PASS" in text and "1 skipped" in text


class TestJsonDefault:
    def test_numpy_scalar_becomes_python_scalar(self):
        assert json_default(np.float64(1.5)) == 1.5
        assert json_default(np.int64(3)) == 3

    def test_unknown_objects_fall_back_to_str(self):
        assert json_default(object()).startswith("<object")

    def test_numpy_payload_serializes(self):
        run = make_run(payload={"loads": np.asarray([1.0, 2.0]).tolist(),
                                "max": np.float64(2.0)})
        data = json.loads(run.to_json())
        assert data["payload"]["max"] == 2.0


class TestValidateRunResult:
    def test_non_mapping_rejected(self):
        assert validate_run_result([1, 2]) == [
            "artifact must be an object, got list"
        ]

    def test_wrong_schema_flagged(self):
        data = make_run().to_dict()
        data["schema"] = "other/9"
        problems = validate_run_result(data)
        assert any(RUN_RESULT_SCHEMA in p for p in problems)

    def test_missing_keys_flagged(self):
        data = make_run().to_dict()
        del data["checks"], data["params"]
        problems = validate_run_result(data)
        assert "missing required key 'checks'" in problems
        assert "missing required key 'params'" in problems

    def test_bad_check_status_flagged(self):
        data = make_run().to_dict()
        data["checks"][0]["status"] = "maybe"
        assert any("status must be one of" in p
                   for p in validate_run_result(data))

    def test_evaluated_check_needs_boolean_passed(self):
        data = make_run().to_dict()
        data["checks"][0]["passed"] = "yes"
        assert any("boolean 'passed'" in p
                   for p in validate_run_result(data))

    def test_non_numeric_measured_flagged(self):
        data = make_run().to_dict()
        data["checks"][0]["measured"] = {"err": "tiny"}
        assert any("must be numeric" in p
                   for p in validate_run_result(data))


class TestValidateScorecard:
    def make_card(self):
        run = make_run()
        return {
            "schema": SCORECARD_SCHEMA,
            "profile": "default",
            "git_sha": "abc1234",
            "wall_time_seconds": 0.25,
            "passed": True,
            "counts": {"experiments": 1, "claims": 2, "passed": 1,
                       "failed": 0, "skipped": 1},
            "claims": [
                {"experiment": "toy", "check": "holds",
                 "description": "claim holds", "status": "pass",
                 "measured": {"err": 0.01}},
            ],
            "runs": [run.to_dict()],
        }

    def test_valid_card_is_clean(self):
        assert validate_scorecard(self.make_card()) == []

    def test_wrong_schema_flagged(self):
        card = self.make_card()
        card["schema"] = RUN_RESULT_SCHEMA
        assert any(SCORECARD_SCHEMA in p for p in validate_scorecard(card))

    def test_claim_rows_need_experiment_and_check(self):
        card = self.make_card()
        card["claims"].append({"status": "pass"})
        assert any("claims[1]" in p for p in validate_scorecard(card))

    def test_embedded_runs_are_validated(self):
        card = self.make_card()
        card["runs"][0]["checks"][0]["status"] = "maybe"
        assert any(p.startswith("runs[0]:")
                   for p in validate_scorecard(card))
