"""Unit tests for the spec layer: Param coercion, Check evaluation,
ExperimentSpec validation, and the process-wide registry."""

import pytest

from repro.errors import HarnessError
from repro.harness import (
    Check,
    CheckOutcome,
    ExperimentSpec,
    Param,
    get_spec,
    parse_bool,
    parse_float_list,
    parse_int_list,
    register,
    spec_names,
    unregister,
)


def runner(a=1, b=2.0):
    return a + b


class TestParamCoercion:
    def test_string_goes_through_type(self):
        assert Param("a", int, 1).coerce("42") == 42
        assert Param("b", float, 0.0).coerce("2.5") == 2.5

    def test_non_string_passes_through_untouched(self):
        param = Param("a", int, 1)
        assert param.coerce(7) == 7
        assert param.coerce(2.5) == 2.5       # no silent int() truncation

    def test_none_string_and_none_map_to_none(self):
        param = Param("a", float, None)
        assert param.coerce(None) is None
        assert param.coerce("none") is None
        assert param.coerce("None") is None

    def test_bad_value_raises_harness_error(self):
        with pytest.raises(HarnessError, match="'a'"):
            Param("a", int, 1).coerce("forty-two")

    def test_parse_bool(self):
        assert parse_bool("true") and parse_bool("YES") and parse_bool("1")
        assert not parse_bool("false") and not parse_bool("off")
        assert parse_bool(True) is True
        with pytest.raises(HarnessError):
            parse_bool("maybe")

    def test_parse_int_list(self):
        assert parse_int_list("1,2,4") == (1, 2, 4)
        assert parse_int_list([1, 2]) == (1, 2)
        with pytest.raises(HarnessError):
            parse_int_list("1,x")

    def test_parse_float_list(self):
        assert parse_float_list("50,90,99.9") == (50.0, 90.0, 99.9)
        assert parse_float_list((1, 2)) == (1.0, 2.0)
        with pytest.raises(HarnessError):
            parse_float_list("1,banana")


class TestCheckEvaluate:
    def test_bare_bool(self):
        outcome = Check("c", "", lambda r: r > 0).evaluate(5)
        assert outcome == CheckOutcome(True)
        assert outcome.measured == {}

    def test_tuple_form(self):
        check = Check("c", "", lambda r: (r > 0, {"r": float(r)}))
        assert check.evaluate(5) == CheckOutcome(True, {"r": 5.0})

    def test_full_outcome_form(self):
        full = CheckOutcome(False, {"err": 0.1})
        assert Check("c", "", lambda r: full).evaluate(None) is full

    def test_truthy_return_is_normalized_to_bool(self):
        outcome = Check("c", "", lambda r: r).evaluate([1])
        assert outcome.passed is True


class TestSpecValidation:
    def test_needs_a_name(self):
        with pytest.raises(HarnessError, match="needs a name"):
            ExperimentSpec(name="", description="d", runner=runner)

    def test_duplicate_param_names_rejected(self):
        with pytest.raises(HarnessError, match="duplicate parameter"):
            ExperimentSpec(
                name="x", description="d", runner=runner,
                params=(Param("a", int, 1), Param("a", int, 2)),
            )

    def test_duplicate_check_names_rejected(self):
        with pytest.raises(HarnessError, match="duplicate check"):
            ExperimentSpec(
                name="x", description="d", runner=runner,
                checks=(Check("c", "", bool), Check("c", "", bool)),
            )

    def test_quick_params_must_be_declared(self):
        with pytest.raises(HarnessError, match="quick_params"):
            ExperimentSpec(
                name="x", description="d", runner=runner,
                params=(Param("a", int, 1),),
                quick_params={"budget": 5},
            )

    def test_runner_must_accept_every_param(self):
        with pytest.raises(HarnessError, match="does not accept"):
            ExperimentSpec(
                name="x", description="d", runner=runner,
                params=(Param("c", int, 1),),
            )

    def test_var_keyword_runner_accepts_anything(self):
        def sink(**kwargs):
            return kwargs

        spec = ExperimentSpec(
            name="x", description="d", runner=sink,
            params=(Param("whatever", int, 1),),
        )
        assert spec.has_param("whatever")


class TestResolveParams:
    SPEC = ExperimentSpec(
        name="resolve-me", description="d", runner=runner,
        params=(Param("a", int, 1), Param("b", float, 2.0)),
        quick_params={"a": 0},
    )

    def test_defaults(self):
        assert self.SPEC.resolve_params() == {"a": 1, "b": 2.0}

    def test_quick_profile_overlays_defaults(self):
        assert self.SPEC.resolve_params(quick=True) == {"a": 0, "b": 2.0}

    def test_overrides_beat_quick_and_coerce(self):
        resolved = self.SPEC.resolve_params({"a": "9"}, quick=True)
        assert resolved == {"a": 9, "b": 2.0}

    def test_unknown_override_raises(self):
        with pytest.raises(HarnessError, match="no parameter 'zz'"):
            self.SPEC.resolve_params({"zz": "1"})

    def test_param_lookup(self):
        assert self.SPEC.param("a").default == 1
        assert self.SPEC.has_param("b") and not self.SPEC.has_param("c")


class TestRegistry:
    def test_register_returns_spec_and_is_idempotent_for_same_object(self):
        spec = ExperimentSpec(name="reg-test", description="d",
                              runner=runner)
        try:
            assert register(spec) is spec
            assert register(spec) is spec      # same object: fine
            assert get_spec("reg-test") is spec
            assert "reg-test" in spec_names()
        finally:
            unregister("reg-test")

    def test_duplicate_name_different_object_rejected(self):
        first = ExperimentSpec(name="reg-dup", description="d",
                               runner=runner)
        second = ExperimentSpec(name="reg-dup", description="other",
                                runner=runner)
        register(first)
        try:
            with pytest.raises(HarnessError, match="already registered"):
                register(second)
        finally:
            unregister("reg-dup")

    def test_unknown_name_lists_registry(self):
        with pytest.raises(HarnessError, match="unknown experiment"):
            get_spec("no-such-experiment")

    def test_unregister_missing_name_is_a_noop(self):
        unregister("never-registered")


class TestShippedRegistry:
    """The ten paper experiments all land in the registry on import."""

    EXPECTED = {
        "ablations", "adaptation", "fig5", "fig6", "fig7", "fig8",
        "interference", "percentiles", "resilience", "table1",
    }

    def test_all_ten_experiments_registered(self):
        assert self.EXPECTED <= set(spec_names())

    def test_every_spec_carries_claims_and_source(self):
        for name in self.EXPECTED:
            spec = get_spec(name)
            assert spec.checks, f"{name} has no claim checks"
            assert spec.source, f"{name} cites no paper section"
            assert spec.description

    def test_quick_profiles_only_touch_declared_params(self):
        # __post_init__ enforces this at construction; assert the
        # shipped specs actually resolve both profiles.
        for name in self.EXPECTED:
            spec = get_spec(name)
            default = spec.resolve_params()
            quick = spec.resolve_params(quick=True)
            assert set(default) == set(quick)
