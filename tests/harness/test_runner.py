"""Unit tests for execute/run_all and the scorecard assembly, using
throwaway synthetic specs so no real experiment budget is spent."""

import json

import pytest

from repro.errors import HarnessError
from repro.harness import (
    Check,
    ExperimentSpec,
    Param,
    RunResult,
    execute,
    git_revision,
    register,
    render_scorecard,
    run_all,
    scorecard_dict,
    unregister,
    validate_run_result,
    validate_scorecard,
)
from repro.telemetry import Telemetry


def toy_runner(seed=0, backend="scalar", iterations=10):
    return {"seed": seed, "backend": backend, "iterations": iterations}


TOY = ExperimentSpec(
    name="toy-runner-spec",
    description="synthetic spec exercising the runner",
    source="tests",
    runner=toy_runner,
    params=(
        Param("seed", int, 0, "rng seed"),
        Param("backend", str, "scalar", "kernel"),
        Param("iterations", int, 10, "budget"),
    ),
    checks=(
        Check("echoes_seed", "runner saw the resolved seed",
              lambda r: (True, {"seed": float(r["seed"])})),
        Check("full_budget_only", "only meaningful at full budget",
              lambda r: r["iterations"] >= 10, quick=False),
    ),
    payload=lambda r: dict(r),
    quick_params={"iterations": 2},
)


@pytest.fixture
def toy_spec():
    register(TOY)
    yield TOY
    unregister(TOY.name)


class TestExecute:
    def test_default_run(self, toy_spec):
        run = execute(toy_spec.name)
        assert run.passed
        assert run.experiment == toy_spec.name
        assert run.params == {"seed": 0, "backend": "scalar",
                              "iterations": 10}
        assert run.seed == 0 and run.backend == "scalar"
        assert run.profile == "default"
        assert run.payload["iterations"] == 10
        assert run.check("echoes_seed").measured == {"seed": 0.0}
        assert run.wall_time_seconds >= 0.0
        assert validate_run_result(run.to_dict()) == []

    def test_uniform_flags_forwarded(self, toy_spec):
        run = execute(toy_spec.name, seed=9, backend="vectorized",
                      iterations=33)
        assert run.params == {"seed": 9, "backend": "vectorized",
                              "iterations": 33}
        assert run.seed == 9 and run.backend == "vectorized"
        assert run.payload == {"seed": 9, "backend": "vectorized",
                               "iterations": 33}

    def test_overrides_are_coerced_strings(self, toy_spec):
        run = execute(toy_spec.name, {"iterations": "25"})
        assert run.params["iterations"] == 25

    def test_quick_profile_skips_full_budget_checks(self, toy_spec):
        run = execute(toy_spec.name, quick=True)
        assert run.profile == "quick"
        assert run.params["iterations"] == 2
        assert run.check("full_budget_only").status == "skipped"
        # The skipped claim (which would fail at 2 iterations) does not
        # drag the run down.
        assert run.passed
        assert run.counts == {"total": 2, "passed": 1, "failed": 0,
                              "skipped": 1}

    def test_unknown_experiment(self):
        with pytest.raises(HarnessError, match="unknown experiment"):
            execute("no-such-spec")

    def test_backend_flag_requires_backend_param(self):
        spec = ExperimentSpec(name="no-knobs", description="d",
                              runner=lambda: 1)
        register(spec)
        try:
            with pytest.raises(HarnessError, match="no 'backend'"):
                execute("no-knobs", backend="vectorized")
            with pytest.raises(HarnessError, match="iteration-budget"):
                execute("no-knobs", iterations=5)
            # --seed without a seed param is recorded, not an error.
            run = execute("no-knobs", seed=4)
            assert run.seed == 4 and "seed" not in run.params
        finally:
            unregister("no-knobs")

    def test_iterations_maps_to_max_iterations(self):
        def capped(max_iterations=100):
            return max_iterations

        spec = ExperimentSpec(
            name="capped", description="d", runner=capped,
            params=(Param("max_iterations", int, 100, "budget"),),
        )
        register(spec)
        try:
            run = execute("capped", iterations=7)
            assert run.params["max_iterations"] == 7
        finally:
            unregister("capped")

    def test_raising_check_becomes_failed_claim(self):
        def boom(result):
            raise ValueError("claim exploded")

        spec = ExperimentSpec(
            name="raiser", description="d", runner=lambda: 1,
            checks=(Check("fine", "ok", lambda r: True),
                    Check("boom", "raises", boom)),
        )
        register(spec)
        try:
            run = execute("raiser")
        finally:
            unregister("raiser")
        assert not run.passed
        failed = run.check("boom")
        assert failed.status == "fail"
        assert "check raised: claim exploded" in failed.description
        # The other claim's verdict survives the explosion.
        assert run.check("fine").status == "pass"

    def test_telemetry_trace_and_metrics(self, toy_spec, tmp_path):
        trace = tmp_path / "run.jsonl"
        telemetry = Telemetry.to_file(str(trace))
        execute(toy_spec.name, telemetry=telemetry)
        telemetry.close()

        kinds = [json.loads(line)["kind"]
                 for line in trace.read_text().splitlines()]
        assert kinds == ["experiment_started", "check_evaluated",
                         "check_evaluated", "experiment_finished"]


class TestRunAllAndScorecard:
    def test_run_all_subset_with_progress(self, toy_spec):
        seen = []
        results = run_all([toy_spec.name], progress=seen.append)
        assert [r.experiment for r in results] == [toy_spec.name]
        assert seen == results

    def test_scorecard_dict_validates(self, toy_spec):
        results = run_all([toy_spec.name])
        card = scorecard_dict(results)
        assert validate_scorecard(card) == []
        assert card["passed"] is True
        assert card["counts"] == {"experiments": 1, "claims": 2,
                                  "passed": 2, "failed": 0, "skipped": 0}
        assert {row["check"] for row in card["claims"]} == \
            {"echoes_seed", "full_budget_only"}

    def test_scorecard_quick_counts_skips(self, toy_spec):
        results = run_all([toy_spec.name], quick=True)
        card = scorecard_dict(results, quick=True)
        assert card["profile"] == "quick"
        assert card["counts"]["skipped"] == 1

    def test_render_scorecard(self, toy_spec):
        results = run_all([toy_spec.name], quick=True)
        text = render_scorecard(results)
        assert "REPRODUCTION SCORECARD" in text
        assert "1/1 claims pass (1 skipped under --quick)" in text
        assert "all claims hold" in text

    def test_render_scorecard_reports_failures(self):
        spec = ExperimentSpec(
            name="doomed", description="d", runner=lambda: 1,
            checks=(Check("nope", "never holds", lambda r: False),),
        )
        register(spec)
        try:
            results = run_all(["doomed"])
        finally:
            unregister("doomed")
        text = render_scorecard(results)
        assert "1 claim(s) FAILED" in text

    def test_render_scorecard_empty(self):
        assert render_scorecard([]) == "no experiments were run"


class TestGitRevision:
    def test_revision_shape(self):
        revision = git_revision()
        assert revision is None or (isinstance(revision, str)
                                    and 4 <= len(revision) <= 40)


class TestArtifactInterop:
    def test_runner_artifact_loads_as_run_result(self, toy_spec):
        run = execute(toy_spec.name, seed=3)
        back = RunResult.from_dict(json.loads(run.to_json()))
        assert back.experiment == run.experiment
        assert back.params == run.params
        assert back.counts == run.counts
