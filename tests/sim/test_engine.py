"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_priority_breaks_same_time_ties(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("low"), priority=1)
        engine.schedule(1.0, lambda: fired.append("high"), priority=-1)
        engine.run()
        assert fired == ["high", "low"]

    def test_seq_breaks_remaining_ties(self):
        engine = SimulationEngine()
        fired = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda: engine.schedule_in(
            2.0, lambda: fired.append(engine.now)))
        engine.run()
        assert fired == [7.0]

    def test_rejects_past_and_nonfinite(self):
        engine = SimulationEngine()
        engine.now = 10.0
        with pytest.raises(SimulationError):
            engine.schedule(5.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(math.inf, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(math.nan, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []
        assert engine.processed == 0

    def test_peek_skips_cancelled(self):
        engine = SimulationEngine()
        h1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        h1.cancel()
        assert engine.peek_time() == 2.0


class TestCallbackFailures:
    def test_failure_logged_counted_and_reraised(self, caplog):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.in_memory()
        engine = SimulationEngine(telemetry=telemetry)

        def boom():
            raise ValueError("kaput")

        engine.schedule(1.0, boom)
        with caplog.at_level("ERROR", logger="repro.sim.engine"):
            with pytest.raises(ValueError, match="kaput"):
                engine.run()
        snapshot = telemetry.registry.snapshot()
        assert snapshot["sim.callback_errors_total"]["value"] == 1
        assert any("event callback failed" in rec.message
                   for rec in caplog.records)
        # The failed event is not counted as processed.
        assert engine.processed == 0

    def test_failure_reraised_without_telemetry(self):
        engine = SimulationEngine()

        def boom():
            raise RuntimeError("no telemetry")

        engine.schedule(1.0, boom)
        with pytest.raises(RuntimeError, match="no telemetry"):
            engine.run()


class TestRunUntil:
    def test_stops_at_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run_until(3.0)
        assert fired == [1]
        assert engine.now == 3.0
        engine.run_until(10.0)
        assert fired == [1, 5]

    def test_clock_reaches_horizon_without_events(self):
        engine = SimulationEngine()
        engine.run_until(42.0)
        assert engine.now == 42.0

    def test_rejects_backwards_horizon(self):
        engine = SimulationEngine()
        engine.run_until(10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_events_scheduled_during_run(self):
        engine = SimulationEngine()
        fired = []

        def cascade():
            fired.append(engine.now)
            if engine.now < 5.0:
                engine.schedule_in(1.0, cascade)

        engine.schedule(1.0, cascade)
        engine.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]
