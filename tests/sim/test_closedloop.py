"""Integration tests for the closed-loop runtime (Section 6's pattern)."""

import pytest

from repro.core.optimizer import LLAConfig
from repro.errors import SimulationError
from repro.sim.closedloop import ClosedLoopRuntime
from repro.workloads.paper import (
    PROTOTYPE_FAST_MIN_SHARE,
    prototype_workload,
)


@pytest.fixture(scope="module")
def short_run():
    """A short closed-loop run shared by several assertions."""
    ts = prototype_workload()
    runtime = ClosedLoopRuntime(
        ts, window=1000.0, seed=11,
        optimizer_config=LLAConfig(max_iterations=2500),
        optimizer_steps_per_epoch=300,
    )
    runtime.run_epochs(2)
    runtime.enable_correction()
    runtime.run_epochs(8)
    return runtime


class TestClosedLoop:
    def test_epoch_records(self, short_run):
        assert len(short_run.history) == 10
        assert short_run.history[0].epoch == 1
        assert not short_run.history[0].correction_enabled
        assert short_run.history[-1].correction_enabled

    def test_pre_correction_shares_stable(self, short_run):
        # The optimizer keeps running between epochs, so the dual hover
        # moves shares by a sliver; nothing material before correction.
        fast = short_run.share_trace("fast1_s0")
        assert fast[0] == pytest.approx(fast[1], rel=1e-2)

    def test_correction_reduces_fast_share(self, short_run):
        fast = short_run.share_trace("fast1_s0")
        assert fast[-1] < fast[0] - 0.02

    def test_correction_raises_slow_share(self, short_run):
        slow = short_run.share_trace("slow1_s0")
        assert slow[-1] > slow[0] + 0.02

    def test_errors_negative(self, short_run):
        # The worst-case model over-predicts, so errors are negative.
        errors = short_run.error_trace("fast1_s0")
        assert errors[-1] < -5.0

    def test_fast_share_never_below_rate_share(self, short_run):
        for share in short_run.share_trace("fast1_s0"):
            assert share >= PROTOTYPE_FAST_MIN_SHARE - 1e-6

    def test_loads_respect_availability(self, short_run):
        ts = short_run.taskset
        final = short_run.history[-1]
        for rname in ts.resources:
            load = sum(
                final.shares[sub.name]
                for _t, sub in ts.subtasks_on(rname)
            )
            assert load <= 0.9 + 0.02

    def test_rejects_bad_window(self):
        with pytest.raises(SimulationError):
            ClosedLoopRuntime(prototype_workload(), window=0.0)
