"""Unit tests for the proportional-share resource simulators."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.jobs import Job, JobSet
from repro.sim.resources import GPSResource, QuantumResource
from repro.model.graph import SubtaskGraph
from repro.model.task import Subtask, Task
from repro.model.utility import LinearUtility


def make_jobset():
    task = Task(
        "t",
        [Subtask(name="s", resource="r", exec_time=1.0)],
        SubtaskGraph.single("s"),
        100.0,
        LinearUtility(100.0),
    )
    return JobSet(task, 1, 0.0)


def submit(resource, subtask, demand, release=None):
    job = Job(subtask=subtask, job_set=make_jobset(), demand=demand,
              release_time=release if release is not None
              else resource.engine.now)
    resource.submit(job)
    return job


class TestGPSResource:
    def test_single_flow_gets_full_capacity(self):
        engine = SimulationEngine()
        done = []
        res = GPSResource("r", engine, on_complete=done.append)
        res.add_flow("s", 0.25)
        job = submit(res, "s", 10.0)
        engine.run()
        # Work-conserving: the lone flow takes the whole resource,
        # regardless of its 0.25 share.
        assert job.finish_time == pytest.approx(10.0)
        assert done == [job]

    def test_two_flows_share_proportionally(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine)
        res.add_flow("a", 0.75)
        res.add_flow("b", 0.25)
        ja = submit(res, "a", 7.5)
        jb = submit(res, "b", 2.5)
        engine.run()
        # Identical demand/weight ratio: both finish together at t=10.
        assert ja.finish_time == pytest.approx(10.0)
        assert jb.finish_time == pytest.approx(10.0)

    def test_leftover_redistributed_after_completion(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine)
        res.add_flow("a", 0.5)
        res.add_flow("b", 0.5)
        ja = submit(res, "a", 1.0)
        jb = submit(res, "b", 4.0)
        engine.run()
        # a finishes at 2 (rate 0.5); b then runs alone: 3 left of 4,
        # 1 was served by t=2, so b ends at 2 + 3 = 5.
        assert ja.finish_time == pytest.approx(2.0)
        assert jb.finish_time == pytest.approx(5.0)

    def test_background_weight_steals_capacity(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine, background_weight=1.0)
        res.add_flow("a", 1.0)
        job = submit(res, "a", 5.0)
        engine.run()
        # Background matches the flow's weight: the job gets half the
        # resource.
        assert job.finish_time == pytest.approx(10.0)

    def test_fifo_within_flow(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine)
        res.add_flow("a", 1.0)
        j1 = submit(res, "a", 2.0)
        j2 = submit(res, "a", 2.0)
        engine.run()
        assert j1.finish_time == pytest.approx(2.0)
        assert j2.finish_time == pytest.approx(4.0)

    def test_set_share_mid_run(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine)
        res.add_flow("a", 0.5)
        res.add_flow("b", 0.5)
        ja = submit(res, "a", 10.0)
        jb = submit(res, "b", 10.0)
        engine.schedule(4.0, lambda: res.set_share("a", 1.5))
        engine.run()
        # Until t=4 both run at 0.5.  After, a runs at 0.75, b at 0.25:
        # a: 2 + 0.75t = 10 -> t = 10.67 -> finishes at 14.67
        assert ja.finish_time == pytest.approx(4.0 + 8.0 / 0.75)
        # b finishes its remaining 8 - handed the whole resource once a is
        # done: served 2 by t=4, then 0.25*(10.67) = 2.67 more by 14.67,
        # remaining 5.33 alone -> 20.0
        assert jb.finish_time == pytest.approx(20.0)

    def test_utilization_tracked(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine)
        res.add_flow("a", 1.0)
        submit(res, "a", 5.0)
        engine.run()
        engine.now = 10.0
        assert res.utilization(10.0) == pytest.approx(0.5)

    def test_duplicate_flow_rejected(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine)
        res.add_flow("a", 1.0)
        with pytest.raises(SimulationError):
            res.add_flow("a", 1.0)

    def test_unknown_flow_rejected(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine)
        with pytest.raises(SimulationError):
            res.set_share("ghost", 0.5)

    def test_backlog(self):
        engine = SimulationEngine()
        res = GPSResource("r", engine)
        res.add_flow("a", 1.0)
        submit(res, "a", 5.0)
        submit(res, "a", 5.0)
        assert res.backlog("a") == 2


class TestQuantumResource:
    def test_single_job_completes(self):
        engine = SimulationEngine()
        done = []
        res = QuantumResource("r", engine, quantum=1.0,
                              on_complete=done.append)
        res.add_flow("a", 0.5)
        job = submit(res, "a", 5.0)
        engine.run()
        assert job.done
        assert job.finish_time == pytest.approx(5.0)

    def test_weighted_fairness_over_time(self):
        engine = SimulationEngine()
        res = QuantumResource("r", engine, quantum=1.0)
        res.add_flow("a", 2.0)
        res.add_flow("b", 1.0)
        ja = submit(res, "a", 30.0)
        jb = submit(res, "b", 30.0)
        engine.run_until(45.0)
        # a holds 2/3 of the weight: it should have ~2x b's service.
        ratio = ja.service_received / max(jb.service_received, 1e-9)
        assert 1.6 <= ratio <= 2.4

    def test_background_consumes_quanta(self):
        engine = SimulationEngine()
        res = QuantumResource("r", engine, quantum=1.0,
                              background_weight=1.0)
        res.add_flow("a", 1.0)
        job = submit(res, "a", 10.0)
        engine.run()
        # Half the quanta go to the background: ~2x the ideal time.
        assert job.finish_time == pytest.approx(20.0, rel=0.15)

    def test_completion_within_quantum(self):
        engine = SimulationEngine()
        res = QuantumResource("r", engine, quantum=4.0)
        res.add_flow("a", 1.0)
        job = submit(res, "a", 1.5)
        engine.run()
        # A job smaller than the quantum finishes mid-quantum.
        assert job.finish_time == pytest.approx(1.5)

    def test_rejects_bad_quantum(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            QuantumResource("r", engine, quantum=0.0)

    def test_work_conservation_matches_gps_makespan(self):
        def run(cls, **kw):
            engine = SimulationEngine()
            res = cls("r", engine, **kw)
            res.add_flow("a", 0.5)
            res.add_flow("b", 0.5)
            ja = submit(res, "a", 3.0)
            jb = submit(res, "b", 3.0)
            engine.run()
            return max(ja.finish_time, jb.finish_time)

        gps = run(GPSResource)
        quantum = run(QuantumResource, quantum=1.0)
        # Both schedulers are work-conserving: total work 6 on a unit-rate
        # resource finishes at t=6 either way.  (Individual completions may
        # differ — round-robin finishes one job before fluid GPS would.)
        assert gps == pytest.approx(6.0)
        assert quantum == pytest.approx(6.0)
