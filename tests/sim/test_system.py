"""Integration tests for the simulated system (workload execution)."""

import pytest

from repro.errors import SimulationError
from repro.sim.system import SimulatedSystem
from repro.workloads.paper import prototype_workload
from tests.conftest import make_chain_taskset, make_diamond_taskset


def flat_shares(taskset, value=0.3):
    return {name: value for name in taskset.subtask_names}


class TestDispatch:
    def test_precedence_respected_in_chain(self):
        ts = make_chain_taskset(n_subtasks=3, period=1000.0)
        system = SimulatedSystem(ts, flat_shares(ts, 1.0))
        system.run_for(500.0)
        # One release; each stage starts after its predecessor finished.
        assert system.recorder.job_count("s0") == 1
        assert system.recorder.job_count("s2") == 1
        assert system.recorder.jobsets_recorded == 1
        # End-to-end latency = sum of stage latencies (dedicated resources,
        # single release, full capacity -> each stage takes exec_time).
        e2e = system.recorder.jobset_latencies("chain")[0]
        assert e2e == pytest.approx(6.0)

    def test_diamond_join_waits_for_both_branches(self):
        ts = make_diamond_taskset()
        system = SimulatedSystem(ts, flat_shares(ts, 1.0))
        system.run_for(150.0)
        # exec times: root 2, left 3, right 4, join 5.
        # join starts at max(2+3, 2+4) = 6, ends 11.
        e2e = system.recorder.jobset_latencies("diamond")[0]
        assert e2e == pytest.approx(11.0)

    def test_periodic_releases(self):
        ts = make_chain_taskset(period=50.0)
        system = SimulatedSystem(ts, flat_shares(ts, 1.0))
        system.run_for(500.0)
        assert system.recorder.job_count("s0") == 10

    def test_horizon_extension_consistent(self):
        ts = make_chain_taskset(period=50.0)
        a = SimulatedSystem(ts, flat_shares(ts, 1.0), seed=4)
        a.run_for(500.0)
        b = SimulatedSystem(ts, flat_shares(ts, 1.0), seed=4)
        for _ in range(10):
            b.run_for(50.0)
        assert a.recorder.job_count("s0") == b.recorder.job_count("s0")
        assert a.recorder.job_latencies("s2") == \
            pytest.approx(b.recorder.job_latencies("s2"))

    def test_missing_share_rejected(self):
        ts = make_chain_taskset()
        with pytest.raises(SimulationError):
            SimulatedSystem(ts, {"s0": 0.5})

    def test_unknown_model_rejected(self):
        ts = make_chain_taskset()
        with pytest.raises(SimulationError):
            SimulatedSystem(ts, flat_shares(ts), model="fifo")


class TestShares:
    def test_enact_shares_changes_service_rate(self):
        ts = prototype_workload()
        shares = {n: 0.22 for n in ts.subtask_names}
        system = SimulatedSystem(ts, shares, seed=1)
        system.run_for(1000.0)
        before = system.recorder.job_percentile("slow1_s0", 95)
        system.recorder.clear()
        system.enact_shares({"slow1_s0": 0.9})
        system.run_for(2000.0)
        after = system.recorder.job_percentile("slow1_s0", 95)
        assert after < before

    def test_current_share(self):
        ts = make_chain_taskset()
        system = SimulatedSystem(ts, flat_shares(ts, 0.4))
        assert system.current_share("s1") == pytest.approx(0.4)
        system.enact_shares({"s1": 0.7})
        assert system.current_share("s1") == pytest.approx(0.7)

    def test_enact_unknown_subtask_rejected(self):
        ts = make_chain_taskset()
        system = SimulatedSystem(ts, flat_shares(ts))
        with pytest.raises(SimulationError):
            system.enact_shares({"ghost": 0.3})


class TestObservedLatency:
    def test_model_overpredicts_observed(self):
        """The Section 6.3 premise: observed latency under unsynchronized
        releases is below the worst-case model prediction."""
        ts = prototype_workload()
        shares = {}
        for task in ts.tasks:
            for sub in task.subtasks:
                shares[sub.name] = 0.2857 if task.name.startswith("fast") \
                    else 0.1643
        system = SimulatedSystem(ts, shares, seed=2)
        system.run_for(4000.0)
        for name in ("fast1_s0", "slow1_s1"):
            predicted = ts.share_function(name).latency_for_share(shares[name])
            observed = system.recorder.job_percentile(name, 95)
            assert observed < predicted

    def test_exec_time_factor(self):
        ts = make_chain_taskset(period=1000.0)
        system = SimulatedSystem(
            ts, flat_shares(ts, 1.0),
            exec_time_factor=lambda rng: 0.5, seed=0,
        )
        system.run_for(500.0)
        # All demands halved: stage latency 1.0 instead of 2.0.
        assert system.recorder.job_latencies("s0")[0] == pytest.approx(1.0)

    def test_bad_exec_time_factor_rejected(self):
        ts = make_chain_taskset(period=1000.0)
        system = SimulatedSystem(
            ts, flat_shares(ts, 1.0),
            exec_time_factor=lambda rng: 1.5, seed=0,
        )
        with pytest.raises(SimulationError):
            system.run_for(500.0)

    def test_utilizations(self):
        ts = prototype_workload()
        system = SimulatedSystem(ts, {n: 0.22 for n in ts.subtask_names},
                                 seed=3)
        system.run_for(3000.0)
        utils = system.utilizations()
        # Workload is 0.66 + 0.1 GC; GPS reports busy-on-jobs only, which
        # must come out near 0.66/0.9-weighted value; just sanity-bound it.
        for value in utils.values():
            assert 0.5 <= value <= 1.0

    def test_quantum_model_end_to_end(self):
        ts = prototype_workload()
        system = SimulatedSystem(ts, {n: 0.22 for n in ts.subtask_names},
                                 model="quantum", seed=3)
        system.run_for(2000.0)
        assert system.recorder.jobs_recorded > 100
        assert system.recorder.jobset_percentile("fast1", 99) is not None
