"""Unit tests for the latency recorder."""

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import LatencyRecorder


class TestRecorder:
    def test_counts(self):
        rec = LatencyRecorder()
        rec.record_job("a", 1.0)
        rec.record_job("a", 2.0)
        rec.record_jobset("t", 5.0)
        assert rec.job_count("a") == 2
        assert rec.jobs_recorded == 2
        assert rec.jobsets_recorded == 1

    def test_percentiles(self):
        rec = LatencyRecorder()
        for v in range(1, 101):
            rec.record_job("a", float(v))
        assert rec.job_percentile("a", 50) == pytest.approx(50.5)
        assert rec.job_percentile("a", 95) == pytest.approx(95.05)

    def test_percentile_none_without_samples(self):
        rec = LatencyRecorder()
        assert rec.job_percentile("ghost", 95) is None
        assert rec.jobset_percentile("ghost", 95) is None

    def test_miss_rate(self):
        rec = LatencyRecorder()
        for v in (10.0, 20.0, 30.0, 40.0):
            rec.record_jobset("t", v)
        assert rec.jobset_miss_rate("t", 25.0) == pytest.approx(0.5)
        assert rec.jobset_miss_rate("ghost", 25.0) is None

    def test_drain_clears(self):
        rec = LatencyRecorder()
        rec.record_job("a", 1.0)
        samples = rec.drain_jobs("a")
        assert samples == [1.0]
        assert rec.job_count("a") == 0
        assert rec.drain_jobs("a") == []

    def test_rejects_negative_latency(self):
        rec = LatencyRecorder()
        with pytest.raises(SimulationError):
            rec.record_job("a", -1.0)
        with pytest.raises(SimulationError):
            rec.record_jobset("t", -1.0)

    def test_clear(self):
        rec = LatencyRecorder()
        rec.record_job("a", 1.0)
        rec.record_jobset("t", 1.0)
        rec.clear()
        assert rec.job_count("a") == 0
        assert rec.jobset_latencies("t") == []
