"""Unit tests for the latency recorder."""

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import LatencyRecorder
from repro.telemetry import Telemetry


class TestRecorder:
    def test_counts(self):
        rec = LatencyRecorder()
        rec.record_job("a", 1.0)
        rec.record_job("a", 2.0)
        rec.record_jobset("t", 5.0)
        assert rec.job_count("a") == 2
        assert rec.jobs_recorded == 2
        assert rec.jobsets_recorded == 1

    def test_percentiles(self):
        rec = LatencyRecorder()
        for v in range(1, 101):
            rec.record_job("a", float(v))
        assert rec.job_percentile("a", 50) == pytest.approx(50.5)
        assert rec.job_percentile("a", 95) == pytest.approx(95.05)

    def test_percentile_none_without_samples(self):
        rec = LatencyRecorder()
        assert rec.job_percentile("ghost", 95) is None
        assert rec.jobset_percentile("ghost", 95) is None

    def test_miss_rate(self):
        rec = LatencyRecorder()
        for v in (10.0, 20.0, 30.0, 40.0):
            rec.record_jobset("t", v)
        assert rec.jobset_miss_rate("t", 25.0) == pytest.approx(0.5)
        assert rec.jobset_miss_rate("ghost", 25.0) is None

    def test_drain_clears(self):
        rec = LatencyRecorder()
        rec.record_job("a", 1.0)
        samples = rec.drain_jobs("a")
        assert samples == [1.0]
        assert rec.job_count("a") == 0
        assert rec.drain_jobs("a") == []

    def test_rejects_negative_latency(self):
        rec = LatencyRecorder()
        with pytest.raises(SimulationError):
            rec.record_job("a", -1.0)
        with pytest.raises(SimulationError):
            rec.record_jobset("t", -1.0)

    def test_clear(self):
        rec = LatencyRecorder()
        rec.record_job("a", 1.0)
        rec.record_jobset("t", 1.0)
        rec.clear()
        assert rec.job_count("a") == 0
        assert rec.jobset_latencies("t") == []


class TestBoundedRecorder:
    def test_unbounded_by_default(self):
        rec = LatencyRecorder()
        for v in range(10_000):
            rec.record_job("a", float(v))
        assert rec.job_count("a") == 10_000
        assert rec.dropped_samples == 0

    def test_ring_buffer_keeps_newest(self):
        rec = LatencyRecorder(max_samples=5)
        for v in range(1, 11):
            rec.record_job("a", float(v))
        assert rec.job_latencies("a") == [6.0, 7.0, 8.0, 9.0, 10.0]
        assert rec.jobs_dropped == 5
        assert rec.dropped_samples == 5

    def test_jobset_cap_counted_separately(self):
        rec = LatencyRecorder(max_samples=2)
        for v in (1.0, 2.0, 3.0):
            rec.record_jobset("t", v)
        assert rec.jobset_latencies("t") == [2.0, 3.0]
        assert rec.jobsets_dropped == 1
        assert rec.jobs_dropped == 0

    def test_percentile_over_retained_window(self):
        rec = LatencyRecorder(max_samples=10)
        for v in range(1, 101):
            rec.record_job("a", float(v))
        assert rec.job_percentile("a", 0) == pytest.approx(91.0)

    def test_rejects_bad_cap(self):
        with pytest.raises(SimulationError):
            LatencyRecorder(max_samples=0)

    def test_drop_counters_reach_registry(self):
        telemetry = Telemetry.in_memory()
        rec = LatencyRecorder(max_samples=2, telemetry=telemetry)
        for v in (1.0, 2.0, 3.0, 4.0):
            rec.record_job("a", v)
        rec.record_jobset("t", 1.0)
        snap = telemetry.registry.snapshot()
        assert snap["sim.recorder.jobs_dropped_total"]["value"] == 2.0
        assert "sim.recorder.jobsets_dropped_total" not in snap

    def test_jobset_drop_counter_reaches_registry(self):
        telemetry = Telemetry.in_memory()
        rec = LatencyRecorder(max_samples=2, telemetry=telemetry)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            rec.record_jobset("t", v)
        snap = telemetry.registry.snapshot()
        assert snap["sim.recorder.jobsets_dropped_total"]["value"] == 3.0
        # No job samples were evicted, so the job counter never registers.
        assert "sim.recorder.jobs_dropped_total" not in snap
        # Registry counters mirror the local attributes exactly.
        assert rec.jobsets_dropped == 3
        assert rec.jobs_dropped == 0

    def test_drop_accounting_across_series(self):
        """Evictions are per-series: two subtasks with independent windows
        both feed the same counters."""
        telemetry = Telemetry.in_memory()
        rec = LatencyRecorder(max_samples=1, telemetry=telemetry)
        rec.record_job("a", 1.0)
        rec.record_job("a", 2.0)   # evicts a's sample
        rec.record_job("b", 1.0)
        rec.record_job("b", 2.0)   # evicts b's sample
        rec.record_jobset("t", 1.0)
        rec.record_jobset("t", 2.0)  # evicts t's sample
        snap = telemetry.registry.snapshot()
        assert snap["sim.recorder.jobs_dropped_total"]["value"] == 2.0
        assert snap["sim.recorder.jobsets_dropped_total"]["value"] == 1.0
        assert rec.dropped_samples == 3

    def test_unbounded_recorder_never_counts(self):
        telemetry = Telemetry.in_memory()
        rec = LatencyRecorder(telemetry=telemetry)
        for v in range(100):
            rec.record_job("a", float(v))
            rec.record_jobset("t", float(v))
        snap = telemetry.registry.snapshot()
        assert "sim.recorder.jobs_dropped_total" not in snap
        assert "sim.recorder.jobsets_dropped_total" not in snap
