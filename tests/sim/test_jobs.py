"""Unit tests for job / job-set lifecycle."""

import pytest

from repro.errors import SimulationError
from repro.model.graph import SubtaskGraph
from repro.model.task import Subtask, Task
from repro.model.utility import LinearUtility
from repro.sim.jobs import Job, JobSet


def diamond_task() -> Task:
    names = ["a", "b", "c", "d"]
    edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    return Task(
        "t",
        [Subtask(name=n, resource=f"r{i}", exec_time=1.0)
         for i, n in enumerate(names)],
        SubtaskGraph(names, edges),
        100.0,
        LinearUtility(100.0),
    )


class TestJob:
    def test_lifecycle(self):
        js = JobSet(diamond_task(), 1, 0.0)
        job = Job("a", js, demand=5.0, release_time=2.0)
        assert not job.done
        assert job.remaining == 5.0
        job.service_received = 5.0
        job.finish_time = 9.0
        assert job.done
        assert job.latency == pytest.approx(7.0)

    def test_latency_before_finish_raises(self):
        js = JobSet(diamond_task(), 1, 0.0)
        job = Job("a", js, demand=1.0, release_time=0.0)
        with pytest.raises(SimulationError):
            _ = job.latency

    def test_rejects_nonpositive_demand(self):
        js = JobSet(diamond_task(), 1, 0.0)
        with pytest.raises(SimulationError):
            Job("a", js, demand=0.0, release_time=0.0)

    def test_remaining_clamps_at_zero(self):
        js = JobSet(diamond_task(), 1, 0.0)
        job = Job("a", js, demand=1.0, release_time=0.0)
        job.service_received = 2.0
        assert job.remaining == 0.0


class TestJobSet:
    def test_ready_successors_respect_join(self):
        js = JobSet(diamond_task(), 1, 0.0)
        js.mark_completed("a", 1.0)
        assert js.ready_successors("a") == {"b", "c"}
        js.mark_completed("b", 2.0)
        # d needs both b and c.
        assert js.ready_successors("b") == set()
        js.mark_completed("c", 3.0)
        assert js.ready_successors("c") == {"d"}

    def test_done_and_latency(self):
        js = JobSet(diamond_task(), 1, 10.0)
        for name, t in (("a", 11.0), ("b", 12.0), ("c", 13.0), ("d", 15.0)):
            js.mark_completed(name, t)
        assert js.done
        assert js.latency == pytest.approx(5.0)

    def test_double_completion_rejected(self):
        js = JobSet(diamond_task(), 1, 0.0)
        js.mark_completed("a", 1.0)
        with pytest.raises(SimulationError):
            js.mark_completed("a", 2.0)

    def test_unknown_subtask_rejected(self):
        js = JobSet(diamond_task(), 1, 0.0)
        with pytest.raises(SimulationError):
            js.mark_completed("ghost", 1.0)

    def test_latency_before_done_raises(self):
        js = JobSet(diamond_task(), 1, 0.0)
        with pytest.raises(SimulationError):
            _ = js.latency
