"""Closing the loop on Table 1: execute the optimized allocation.

The paper's Section 5 evaluates the *optimizer* in simulation but never
executes the resulting allocation.  This test does: the converged Table 1
latency assignment is converted to shares, enacted on the discrete-event
simulator (all 21 subtasks across the 8 CPU/link resources, periodic
100 ms releases), and the *observed* behaviour is checked against the
model's promises:

* every job-set (end-to-end) latency stays within its critical time —
  the worst-case model is an upper bound on reality;
* per-subtask observed worst cases stay within the allocated budgets;
* no queue grows without bound (the rate-share arithmetic holds).
"""

import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.sim.system import SimulatedSystem
from repro.workloads.paper import base_workload


@pytest.fixture(scope="module")
def executed():
    taskset = base_workload()
    result = LLAOptimizer(taskset, LLAConfig(max_iterations=1500)).run()
    assert result.converged
    shares = {
        name: taskset.share_function(name).share(lat)
        for name, lat in result.latencies.items()
    }
    system = SimulatedSystem(taskset, shares, model="gps", seed=31)
    system.run_for(20_000.0)   # 200 task releases
    return taskset, result, system


class TestTable1Execution:
    def test_all_jobsets_complete(self, executed):
        _ts, _result, system = executed
        # 3 tasks × 200 releases, minus at most a few in flight at the end.
        assert system.recorder.jobsets_recorded >= 3 * 195

    def test_every_task_meets_its_critical_time(self, executed):
        ts, _result, system = executed
        for task in ts.tasks:
            miss = system.recorder.jobset_miss_rate(
                task.name, task.critical_time
            )
            assert miss == 0.0, (
                f"{task.name}: {100 * miss:.2f}% of job sets missed "
                f"C={task.critical_time}"
            )

    def test_observed_worst_case_within_budget(self, executed):
        ts, result, system = executed
        for name in ts.subtask_names:
            observed_max = max(system.recorder.job_latencies(name))
            assert observed_max <= result.latencies[name] + 1e-6, (
                f"{name}: observed {observed_max:.2f} ms exceeds the "
                f"allocated budget {result.latencies[name]:.2f} ms"
            )

    def test_no_unbounded_backlog(self, executed):
        ts, _result, system = executed
        for name in ts.subtask_names:
            resource = ts.owner_of(name).subtask(name).resource
            assert system.resources[resource].backlog(name) <= 2

    def test_quantum_model_also_meets_deadlines(self):
        taskset = base_workload()
        result = LLAOptimizer(taskset, LLAConfig(max_iterations=1500)).run()
        shares = {
            name: taskset.share_function(name).share(lat)
            for name, lat in result.latencies.items()
        }
        system = SimulatedSystem(taskset, shares, model="quantum",
                                 quantum=0.5, seed=31)
        system.run_for(8_000.0)
        for task in taskset.tasks:
            miss = system.recorder.jobset_miss_rate(
                task.name, task.critical_time
            )
            assert miss == 0.0
