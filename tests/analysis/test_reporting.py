"""Tests for report formatting."""


from repro.analysis.reporting import (
    format_comparison,
    format_table,
    format_table1,
    series_to_csv,
)
from repro.baselines.slicing import evaluate_assignment, even_slicing
from repro.workloads.paper import TABLE1_LATENCIES, base_workload


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 22.125]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "1.50" in text
        assert "22.12" in text

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestFormatTable1:
    def test_contains_all_sections(self):
        ts = base_workload()
        lat = {n: 10.0 for n in ts.subtask_names}
        text = format_table1(ts, lat)
        for tname in ("T1", "T2", "T3"):
            assert f"TASK {tname}" in text
        assert "Crit.Time" in text
        assert "Crit.Path" in text

    def test_paper_comparison_row(self):
        ts = base_workload()
        lat = {n: 10.0 for n in ts.subtask_names}
        text = format_table1(ts, lat, paper_latencies=TABLE1_LATENCIES)
        assert "Paper lat." in text
        assert "9.70" in text   # T11's paper latency


class TestSeriesToCsv:
    def test_columns(self):
        csv = series_to_csv({"x": [1, 2, 3], "y": [0.5, 1.5]})
        lines = csv.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,0.50"
        assert lines[3] == "3,"   # ragged column padded

    def test_empty(self):
        assert series_to_csv({}) == "\n"


class TestFormatComparison:
    def test_renders_scores(self):
        ts = base_workload()
        score = evaluate_assignment(ts, even_slicing(ts))
        text = format_comparison({"even": score})
        assert "even" in text
        assert "utility" in text
