"""Tests for convergence-trace diagnostics."""

import pytest

from repro.analysis.trace import (
    distance_to_reference,
    price_movement,
    settling_iteration,
    summarize_trace,
    tail_oscillation,
    violation_duration,
)
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.workloads.paper import base_workload


class TestScalarMetrics:
    def test_settling_simple(self):
        values = [10.0, 5.0, 2.0, 1.0, 1.1, 0.9, 1.0]
        assert settling_iteration(values, band=0.5) == 3

    def test_settling_never(self):
        values = [1.0, 2.0, 1.0, 2.0, 10.0]
        assert settling_iteration(values, band=0.5) is None

    def test_settling_immediately(self):
        assert settling_iteration([5.0, 5.0, 5.0], band=0.5) == 0

    def test_settling_relative(self):
        values = [2000.0, 1010.0, 1000.0]
        assert settling_iteration(values, band=0.02, relative=True) == 1

    def test_settling_empty(self):
        assert settling_iteration([], band=1.0) is None

    def test_tail_oscillation(self):
        values = [0.0] * 50 + [1.0, 3.0, 2.0]
        assert tail_oscillation(values, window=3) == pytest.approx(2.0)

    def test_distance_to_reference(self):
        assert distance_to_reference([1.0, 2.0, 3.0], 5.0) == 2.0
        assert distance_to_reference([], 5.0) == float("inf")


class TestHistoryMetrics:
    @pytest.fixture(scope="class")
    def history(self):
        ts = base_workload()
        result = LLAOptimizer(
            ts, LLAConfig(max_iterations=200, stop_on_convergence=False)
        ).run()
        return result.history

    def test_price_movement_positive_early(self, history):
        early = price_movement(history[:30])
        assert early > 0.0

    def test_violation_duration_counts(self, history):
        count = violation_duration(history)
        assert 0 < count <= len(history)

    def test_summary(self, history):
        summary = summarize_trace(history)
        assert summary.iterations == len(history)
        assert summary.final_utility == pytest.approx(history[-1].utility)
        assert summary.oscillation >= 0.0
        assert summary.price_drift >= 0.0

    def test_converged_run_summary_clean(self):
        ts = base_workload()
        result = LLAOptimizer(ts, LLAConfig(max_iterations=1500)).run()
        summary = summarize_trace(result.history)
        assert summary.converged_cleanly(oscillation_tol=30.0,
                                         drift_tol=5.0)
