"""Tests for the admission-control layer."""

import pytest

from repro.analysis.admission import AdmissionController, certify_infeasible
from repro.analysis.schedulability import SchedulabilityAnalyzer
from repro.errors import ModelError
from repro.model.events import PeriodicEvent
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource
from repro.model.task import Subtask, Task
from repro.model.utility import LinearUtility

RESOURCES = [Resource(name=f"r{i}", availability=1.0, lag=1.0)
             for i in range(3)]


def chain_task(name: str, exec_time: float, critical_time: float,
               slope: float = 1.0) -> Task:
    names = [f"{name}_{i}" for i in range(3)]
    return Task(
        name=name,
        subtasks=[Subtask(names[i], f"r{i}", exec_time) for i in range(3)],
        graph=SubtaskGraph.chain(names),
        critical_time=critical_time,
        utility=LinearUtility(critical_time, k=2.0, slope=slope),
        trigger=PeriodicEvent(100.0),
    )


def controller(**kwargs) -> AdmissionController:
    return AdmissionController(
        RESOURCES,
        analyzer=SchedulabilityAnalyzer(iterations=500),
        **kwargs,
    )


class TestStrictAdmission:
    def test_first_task_admitted(self):
        ctrl = controller()
        decision = ctrl.offer(chain_task("t1", 2.0, 40.0))
        assert decision.admitted
        assert len(ctrl.admitted) == 1
        assert ctrl.latencies     # allocation computed

    def test_schedulable_second_task_admitted(self):
        ctrl = controller()
        assert ctrl.offer(chain_task("t1", 2.0, 60.0)).admitted
        assert ctrl.offer(chain_task("t2", 2.0, 60.0)).admitted
        assert ctrl.taskset is not None
        assert len(ctrl.taskset.tasks) == 2

    def test_overloading_task_rejected(self):
        ctrl = controller()
        assert ctrl.offer(chain_task("t1", 2.0, 12.0)).admitted
        # A second task with the same tight deadline cannot fit: each
        # needs ~3/4 of every resource (cost 3, per-stage budget 4).
        decision = ctrl.offer(chain_task("t2", 2.0, 12.0))
        assert not decision.admitted
        assert "not schedulable" in decision.reason
        # The incumbent workload is untouched.
        assert [t.name for t in ctrl.admitted] == ["t1"]

    def test_duplicate_name_rejected(self):
        ctrl = controller()
        ctrl.offer(chain_task("t1", 2.0, 40.0))
        decision = ctrl.offer(chain_task("t1", 1.0, 50.0))
        assert not decision.admitted
        assert "already admitted" in decision.reason

    def test_withdraw_reoptimizes(self):
        ctrl = controller()
        ctrl.offer(chain_task("t1", 2.0, 60.0))
        ctrl.offer(chain_task("t2", 2.0, 60.0))
        with_two = dict(ctrl.latencies)
        assert ctrl.withdraw("t2")
        assert [t.name for t in ctrl.admitted] == ["t1"]
        # t1's latencies shrink once t2's pressure disappears.
        for name in ("t1_0", "t1_1", "t1_2"):
            assert ctrl.latencies[name] <= with_two[name] + 1e-9
        assert not ctrl.withdraw("ghost")

    def test_admission_rate(self):
        ctrl = controller()
        ctrl.offer(chain_task("t1", 2.0, 12.0))
        ctrl.offer(chain_task("t2", 2.0, 12.0))
        assert ctrl.admission_rate() == pytest.approx(0.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ModelError):
            AdmissionController(RESOURCES, mode="optimistic")


class TestUtilityMode:
    def test_low_value_task_rejected_on_dilution(self):
        # Incumbent: important task with slack.  Arrival: schedulable but
        # drags the incumbent's latency allocation enough to breach the
        # allowed loss.
        ctrl = controller(mode="utility", max_utility_loss=0.5)
        assert ctrl.offer(chain_task("vip", 2.0, 40.0, slope=3.0)).admitted
        decision = ctrl.offer(chain_task("bulk", 4.0, 40.0, slope=1.0))
        assert not decision.admitted
        assert "utility would drop" in decision.reason
        assert decision.incumbent_utility_loss > 0.5

    def test_generous_budget_admits(self):
        ctrl = controller(mode="utility", max_utility_loss=1000.0)
        assert ctrl.offer(chain_task("vip", 2.0, 40.0, slope=3.0)).admitted
        assert ctrl.offer(chain_task("bulk", 4.0, 40.0, slope=1.0)).admitted


class TestCertifyInfeasible:
    """The closed-form certificate used by the always-on service: sound
    (never rejects a feasible set) but incomplete."""

    def make_taskset(self, *tasks):
        from repro.model.task import TaskSet
        return TaskSet(list(tasks), RESOURCES, allow_shared_resources=True)

    def test_feasible_set_has_no_certificate(self):
        ts = self.make_taskset(chain_task("ok", 2.0, 40.0))
        assert certify_infeasible(ts) is None

    def test_path_floor_certificate(self):
        """Three subtasks whose summed latency floors exceed the critical
        time can never meet it, even alone on their resources."""
        ts = self.make_taskset(chain_task("doomed", 2.0, 1.0))
        reason = certify_infeasible(ts)
        assert reason is not None
        assert "path" in reason
        assert "doomed" in reason

    def test_load_floor_certificate(self):
        """Each task is individually schedulable, but their combined
        minimum shares overload a resource."""
        competitors = [
            Task(
                name=f"solo{i}",
                subtasks=[Subtask(f"solo{i}_0", "r0", 2.0)],
                graph=SubtaskGraph.chain([f"solo{i}_0"]),
                critical_time=4.0,
                utility=LinearUtility(4.0, k=2.0),
                trigger=PeriodicEvent(100.0),
            )
            for i in range(2)
        ]
        for task in competitors:
            assert certify_infeasible(self.make_taskset(task)) is None
        reason = certify_infeasible(self.make_taskset(*competitors))
        assert reason is not None
        assert "'r0'" in reason

    def test_certificate_is_conservative(self):
        """A tight-but-feasible workload must not be rejected: the
        certificate may only fire on provable infeasibility."""
        ts = self.make_taskset(chain_task("tight", 2.0, 40.0),
                               chain_task("tight2", 2.0, 40.0))
        from repro.core.optimizer import LLAConfig, LLAOptimizer
        result = LLAOptimizer(ts, LLAConfig(max_iterations=2000)).run()
        if ts.is_feasible(result.latencies, tol=1e-2):
            assert certify_infeasible(ts) is None


class TestCertificateSoundnessRandomized:
    """Soundness sweep: across randomized task sets, the closed-form
    certificate may only fire on sets the LLA oracle also fails on —
    it must never reject a set the optimizer solves feasibly."""

    N_CASES = 50

    @staticmethod
    def random_taskset(rng):
        import numpy as np

        from repro.model.task import TaskSet

        n_tasks = int(rng.integers(1, 4))
        tasks = []
        for t in range(n_tasks):
            length = int(rng.integers(1, 4))
            start = int(rng.integers(0, 3 - length + 1)) if length < 3 else 0
            names = [f"rt{t}.s{i}" for i in range(length)]
            subtasks = [
                Subtask(names[i], f"r{start + i}",
                        float(np.round(rng.uniform(0.5, 6.0), 3)))
                for i in range(length)
            ]
            critical = float(np.round(rng.uniform(2.0, 60.0), 3))
            tasks.append(Task(
                name=f"rt{t}",
                subtasks=subtasks,
                graph=SubtaskGraph.chain(names),
                critical_time=critical,
                utility=LinearUtility(critical, k=2.0),
                trigger=PeriodicEvent(100.0),
            ))
        return TaskSet(tasks, RESOURCES, allow_shared_resources=True)

    def test_certificate_never_rejects_an_optimizer_feasible_set(self):
        import numpy as np

        from repro.core.optimizer import LLAConfig, LLAOptimizer

        certified = solved = 0
        for seed in range(self.N_CASES):
            rng = np.random.default_rng(seed)
            ts = self.random_taskset(rng)
            certificate = certify_infeasible(ts)
            result = LLAOptimizer(
                ts, LLAConfig(max_iterations=800)).run()
            feasible = ts.is_feasible(result.latencies)
            if feasible:
                solved += 1
                assert certificate is None, (
                    f"seed {seed}: certificate {certificate!r} fired on a "
                    f"set the optimizer solved feasibly"
                )
            if certificate is not None:
                certified += 1
        # The sweep must exercise both sides of the boundary to mean
        # anything: some sets solved feasibly, some certified infeasible.
        assert solved >= 10
        assert certified >= 5
