"""Tests for the LLA-based schedulability analyzer (Section 5.4)."""

import pytest

from repro.analysis.schedulability import SchedulabilityAnalyzer
from repro.workloads.paper import (
    base_workload,
    scaled_workload,
    unschedulable_workload,
)
from tests.conftest import make_chain_taskset


@pytest.fixture(scope="module")
def analyzer():
    return SchedulabilityAnalyzer(iterations=1000)


class TestClassification:
    def test_base_workload_schedulable(self, analyzer):
        report = analyzer.analyze(base_workload())
        assert report.schedulable, report.summary()
        assert report.feasible_final
        assert report.max_ratio <= 1.05

    def test_overprovisioned_schedulable(self, analyzer):
        report = analyzer.analyze(scaled_workload(2))
        assert report.schedulable, report.summary()

    def test_unschedulable_detected(self, analyzer):
        report = analyzer.analyze(unschedulable_workload())
        assert not report.schedulable
        assert not report.feasible_final
        # Some constraint family is grossly violated.
        assert report.max_load_ratio > 1.5 or report.max_ratio > 1.5

    def test_trivial_chain_schedulable(self):
        quick = SchedulabilityAnalyzer(iterations=400)
        report = quick.analyze(make_chain_taskset())
        assert report.schedulable, report.summary()


class TestReport:
    def test_summary_format(self, analyzer):
        report = analyzer.analyze(make_chain_taskset())
        text = report.summary()
        assert "SCHEDULABLE" in text
        assert "oscillation" in text

    def test_ratio_bookkeeping(self, analyzer):
        report = analyzer.analyze(make_chain_taskset())
        assert report.max_ratio >= report.min_ratio
        assert set(report.critical_path_ratios) == {"chain"}
        assert set(report.resource_load_ratios) == {"r0", "r1", "r2"}


class TestValidation:
    def test_rejects_bad_tail_fraction(self):
        with pytest.raises(ValueError):
            SchedulabilityAnalyzer(tail_fraction=0.0)


class TestPrototypeClassification:
    def test_prototype_schedulable_at_default_budget(self):
        """Regression: the Section 6 prototype converges slowly (≈1800
        iterations); the analyzer's default budget must classify it
        SCHEDULABLE, not mistake the convergence tail for instability."""
        from repro.workloads.paper import prototype_workload

        report = SchedulabilityAnalyzer().analyze(prototype_workload())
        assert report.schedulable, report.summary()
