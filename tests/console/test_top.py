"""The ops console: pure frame rendering and the live driver."""

from repro.console import TopState, collect_top_state, live_top, render_top
from repro.console.top import CLEAR
from repro.diagnostics import DiagnosticsEngine
from repro.diagnostics.findings import Finding
from repro.distributed import DistributedConfig, DistributedLLARuntime
from repro.workloads.paper import base_workload


def make_state(**overrides):
    state = dict(
        round=7,
        utility=-12.5,
        feasible=True,
        resources=(
            ("r0", 1.25, 0.5, 1.0, False),
            ("r1", 9.0, 1.2, 1.0, True),
        ),
        bus={"sent": 10, "delivered": 8, "dropped": 1, "expired": 0,
             "deduplicated": 1, "pending": 1},
        degraded=(),
        crashed=(),
        findings=(),
    )
    state.update(overrides)
    return TopState(**state)


class TestRenderTop:
    def test_header_and_resource_rows(self):
        frame = render_top(make_state())
        assert "round 7" in frame
        assert "[FEASIBLE]" in frame
        assert "r0" in frame and "r1" in frame
        assert "CONGESTED" in frame  # r1 is over its availability

    def test_congestion_marks_only_violators(self):
        lines = render_top(make_state()).splitlines()
        r0 = next(line for line in lines if line.startswith("r0"))
        r1 = next(line for line in lines if line.startswith("r1"))
        assert "CONGESTED" not in r0
        assert "CONGESTED" in r1

    def test_bus_and_fault_lines(self):
        frame = render_top(make_state(
            crashed=("resource:r0",), degraded=("controller:c0",),
        ))
        assert "bus: sent 10" in frame
        assert "crashed: resource:r0" in frame
        assert "degraded: controller:c0" in frame

    def test_findings_section(self):
        finding = Finding(
            detector="stall", severity="critical",
            summary="prices frozen while infeasible",
        )
        frame = render_top(make_state(findings=(finding,)))
        assert "[CRITICAL]" in frame
        assert "prices frozen while infeasible" in frame
        assert "no findings" not in frame

    def test_no_findings_line(self):
        assert "health: no findings" in render_top(make_state())

    def test_rendering_is_deterministic(self):
        assert render_top(make_state()) == render_top(make_state())


class TestLiveTop:
    def run_live(self, rounds=20, refresh=10, plain=True):
        runtime = DistributedLLARuntime(
            base_workload(), config=DistributedConfig(rounds=rounds),
        )
        engine = DiagnosticsEngine(taskset=runtime.taskset)
        frames = []
        state = live_top(
            runtime, rounds=rounds, refresh_every=refresh,
            engine=engine, emit=frames.append, plain=plain,
        )
        return runtime, frames, state

    def test_emits_one_frame_per_refresh(self):
        runtime, frames, state = self.run_live(rounds=20, refresh=10)
        assert len(frames) == 2
        assert runtime.round == 20
        assert state.round == 20

    def test_plain_frames_have_no_ansi(self):
        _, frames, _ = self.run_live(plain=True)
        assert all(CLEAR not in frame for frame in frames)

    def test_interactive_frames_clear_screen(self):
        _, frames, _ = self.run_live(plain=False)
        assert all(frame.startswith(CLEAR) for frame in frames)

    def test_final_partial_batch_still_renders(self):
        _, frames, state = self.run_live(rounds=25, refresh=10)
        assert len(frames) == 3
        assert state.round == 25

    def test_state_reflects_runtime(self):
        runtime, _, state = self.run_live(rounds=15, refresh=5)
        direct = collect_top_state(runtime)
        assert direct.round == state.round
        assert direct.utility == state.utility
        assert direct.resources == state.resources
