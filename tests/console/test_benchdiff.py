"""bench-diff: artifact loading, direction inference, regression flags."""

import json

import pytest

from repro.console import diff_artifacts, diff_files, format_diff, load_artifact
from repro.errors import DiagnosticsError


def bench(metrics):
    return {"bench": "x", "generated_at": "t", "metrics": metrics,
            "_artifact_kind": "bench"}


def scorecard(claims, wall=None):
    data = {
        "schema": "repro.scorecard/v1",
        "claims": claims,
        "counts": {"claims": len(claims)},
        "_artifact_kind": "scorecard",
    }
    if wall is not None:
        data["wall_time_seconds"] = wall
    return data


def claim(experiment, check, status):
    return {"experiment": experiment, "check": check, "status": status}


class TestLoadArtifact:
    def test_classifies_bench_and_scorecard(self, tmp_path):
        bench_path = tmp_path / "BENCH_x.json"
        bench_path.write_text(json.dumps(
            {"bench": "x", "metrics": {}}
        ))
        card_path = tmp_path / "scorecard.json"
        card_path.write_text(json.dumps(
            {"claims": [], "counts": {}}
        ))
        assert load_artifact(str(bench_path))["_artifact_kind"] == "bench"
        assert load_artifact(str(card_path))["_artifact_kind"] == "scorecard"

    def test_rejects_unrecognized_shapes(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(DiagnosticsError):
            load_artifact(str(path))

    def test_rejects_unreadable_file(self):
        with pytest.raises(DiagnosticsError):
            load_artifact("/nonexistent/file.json")

    def test_kind_mismatch_raises(self):
        with pytest.raises(DiagnosticsError):
            diff_artifacts(bench({}), scorecard([]))


class TestBenchDiff:
    def test_throughput_drop_is_a_regression(self):
        diff = diff_artifacts(
            bench({"opt.ops_per_sec": {"type": "gauge", "value": 100.0}}),
            bench({"opt.ops_per_sec": {"type": "gauge", "value": 50.0}}),
        )
        assert not diff.ok
        assert diff.regressions[0].name == "opt.ops_per_sec"

    def test_throughput_gain_is_fine(self):
        diff = diff_artifacts(
            bench({"opt.ops_per_sec": {"type": "gauge", "value": 100.0}}),
            bench({"opt.ops_per_sec": {"type": "gauge", "value": 200.0}}),
        )
        assert diff.ok

    def test_timing_growth_is_a_regression(self):
        diff = diff_artifacts(
            bench({"s.step_seconds": {"type": "timer", "mean": 0.001}}),
            bench({"s.step_seconds": {"type": "timer", "mean": 0.002}}),
        )
        assert not diff.ok

    def test_within_threshold_passes(self):
        diff = diff_artifacts(
            bench({"s.step_seconds": {"type": "timer", "mean": 0.001}}),
            bench({"s.step_seconds": {"type": "timer", "mean": 0.0011}}),
            threshold=0.25,
        )
        assert diff.ok

    def test_ignore_timing_suppresses_time_regressions(self):
        diff = diff_artifacts(
            bench({"s.step_seconds": {"type": "timer", "mean": 0.001}}),
            bench({"s.step_seconds": {"type": "timer", "mean": 0.01}}),
            ignore_timing=True,
        )
        assert diff.ok

    def test_directionless_metrics_never_flag(self):
        diff = diff_artifacts(
            bench({"lla.utility": {"type": "gauge", "value": -80.0}}),
            bench({"lla.utility": {"type": "gauge", "value": -200.0}}),
        )
        assert diff.ok

    def test_missing_and_added_metrics_reported(self):
        diff = diff_artifacts(
            bench({"a": {"type": "gauge", "value": 1.0}}),
            bench({"b": {"type": "gauge", "value": 1.0}}),
        )
        assert diff.missing == ["a"]
        assert diff.added == ["b"]


class TestScorecardDiff:
    def test_pass_to_fail_is_a_regression(self):
        diff = diff_artifacts(
            scorecard([claim("fig5", "settles", "pass")]),
            scorecard([claim("fig5", "settles", "fail")]),
        )
        assert not diff.ok
        assert "pass -> fail" in diff.regressions[0].note

    def test_fail_to_pass_is_an_improvement(self):
        diff = diff_artifacts(
            scorecard([claim("fig5", "settles", "fail")]),
            scorecard([claim("fig5", "settles", "pass")]),
        )
        assert diff.ok
        assert len(diff.deltas) == 1  # reported, not flagged

    def test_wall_time_growth_flagged_unless_ignored(self):
        base = scorecard([claim("fig5", "settles", "pass")], wall=10.0)
        cur = scorecard([claim("fig5", "settles", "pass")], wall=20.0)
        assert not diff_artifacts(base, cur).ok
        assert diff_artifacts(base, cur, ignore_timing=True).ok

    def test_status_flips_survive_ignore_timing(self):
        diff = diff_artifacts(
            scorecard([claim("fig5", "settles", "pass")], wall=10.0),
            scorecard([claim("fig5", "settles", "fail")], wall=10.0),
            ignore_timing=True,
        )
        assert not diff.ok


class TestFormatAndFiles:
    def test_format_leads_with_verdict(self):
        ok = diff_artifacts(bench({}), bench({}))
        assert format_diff(ok).startswith("bench-diff: OK")
        bad = diff_artifacts(
            bench({"x_seconds": {"type": "timer", "mean": 1.0}}),
            bench({"x_seconds": {"type": "timer", "mean": 9.0}}),
        )
        text = format_diff(bad)
        assert "REGRESSION" in text.splitlines()[0]
        assert "REGRESSED x_seconds" in text

    def test_diff_files_round_trip(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(
            {"bench": "x", "metrics":
             {"n.ops_per_sec": {"type": "gauge", "value": 10.0}}}
        ))
        cur.write_text(json.dumps(
            {"bench": "x", "metrics":
             {"n.ops_per_sec": {"type": "gauge", "value": 2.0}}}
        ))
        diff = diff_files(str(base), str(cur))
        assert not diff.ok
        payload = diff.to_dict()
        assert payload["ok"] is False
        assert payload["regressions"][0]["name"] == "n.ops_per_sec"
