"""Tests for the paper's workloads, including the Table 1 calibration."""

import pytest

from repro.errors import ModelError
from repro.workloads.paper import (
    PROTOTYPE_FAST_MIN_SHARE,
    PROTOTYPE_SLOW_MIN_SHARE,
    TABLE1_CRITICAL_PATHS,
    TABLE1_CRITICAL_TIMES,
    TABLE1_LATENCIES,
    TABLE1_SUBTASKS,
    base_workload,
    prototype_workload,
    scaled_workload,
    unschedulable_workload,
)


class TestCalibration:
    def test_paper_latencies_saturate_every_resource(self):
        """The DESIGN.md discovery: at the paper's reported optimum,
        Σ (c_s + 1)/lat_s ≈ 1.000 on all eight resources — this pins
        lag = 1 ms and B_r = 1."""
        ts = base_workload()
        loads = ts.resource_loads(TABLE1_LATENCIES)
        for rname, load in loads.items():
            assert load == pytest.approx(1.0, abs=0.01), (
                f"{rname}: load {load:.4f} — calibration broken"
            )

    def test_task3_chain_sums_to_paper_critical_path(self):
        """Task 3's six latencies sum to exactly the reported 52.8 ms —
        the structural evidence that it is a chain."""
        total = sum(
            TABLE1_LATENCIES[n] for n in TABLE1_SUBTASKS if n.startswith("T3")
        )
        assert total == pytest.approx(TABLE1_CRITICAL_PATHS["T3"], abs=0.05)

    def test_paper_critical_paths_within_one_percent(self):
        """The paper's claim about its own Table 1 numbers."""
        ts = base_workload()
        for task in ts.tasks:
            if task.name != "T3":
                continue   # only T3's exact topology is confirmed
            _, crit = task.critical_path(TABLE1_LATENCIES)
            assert crit <= task.critical_time
            assert crit >= 0.99 * task.critical_time


class TestBaseWorkload:
    def test_structure(self):
        ts = base_workload()
        assert len(ts.tasks) == 3
        assert len(ts.all_subtasks) == 21
        assert len(ts.resources) == 8

    def test_exec_times_match_table(self):
        ts = base_workload()
        for name, (ridx, exec_time) in TABLE1_SUBTASKS.items():
            task = ts.owner_of(name)
            sub = task.subtask(name)
            assert sub.exec_time == exec_time
            assert sub.resource == f"r{ridx}"

    def test_critical_times(self):
        ts = base_workload()
        for task in ts.tasks:
            assert task.critical_time == TABLE1_CRITICAL_TIMES[task.name]

    def test_all_tasks_periodic_100ms(self):
        ts = base_workload()
        for task in ts.tasks:
            assert task.trigger.mean_rate() == pytest.approx(0.01)

    def test_task3_is_chain(self):
        ts = base_workload()
        t3 = ts.task("T3")
        assert len(t3.graph.paths) == 1
        assert len(t3.graph.paths[0]) == 6

    def test_sum_variant(self):
        ts = base_workload(variant="sum")
        for task in ts.tasks:
            assert all(w == 1.0 for w in task.weights.values())


class TestScaledWorkload:
    def test_copies_structure(self):
        ts = scaled_workload(2)
        assert len(ts.tasks) == 6
        assert len(ts.resources) == 8    # same resources, more contention

    def test_clones_share_resources(self):
        ts = scaled_workload(2)
        original = ts.task("T1").subtask("T11")
        clone = ts.task("T1c1").subtask("T11c1")
        assert original.resource == clone.resource
        assert original.exec_time == clone.exec_time

    def test_critical_time_scaling(self):
        ts = scaled_workload(1, critical_time_factor=6.0)
        assert ts.task("T1").critical_time == pytest.approx(270.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ModelError):
            scaled_workload(0)
        with pytest.raises(ModelError):
            scaled_workload(1, critical_time_factor=0.0)


class TestUnschedulableWorkload:
    def test_unscaled_critical_times(self):
        ts = unschedulable_workload()
        assert ts.task("T1").critical_time == 45.0
        assert len(ts.tasks) == 6

    def test_genuinely_unschedulable(self):
        """Infeasibility certificate: minimize the maximum resource load
        over all latency assignments satisfying the path constraints (a
        convex program).  The minimum comes out near 2× the availability,
        so no feasible assignment exists — Figure 7's premise."""
        import numpy as np
        from scipy import optimize

        ts = unschedulable_workload()
        names = list(ts.subtask_names)
        idx = {n: i for i, n in enumerate(names)}
        cost = {}
        for task in ts.tasks:
            for sub in task.subtasks:
                cost[sub.name] = sub.exec_time + \
                    ts.resources[sub.resource].lag

        constraints = []
        for rname in ts.resources:
            members = [
                (idx[s.name], cost[s.name])
                for _t, s in ts.subtasks_on(rname)
            ]

            def load_slack(x, members=members):
                return x[-1] - sum(c / x[i] for i, c in members)

            constraints.append({"type": "ineq", "fun": load_slack})
        for task in ts.tasks:
            for path in task.graph.paths:
                ids = [idx[s] for s in path]
                critical = task.critical_time

                def path_slack(x, ids=ids, critical=critical):
                    return critical - sum(x[i] for i in ids)

                constraints.append({"type": "ineq", "fun": path_slack})

        n = len(names)
        lo = np.array([cost[nm] for nm in names] + [0.0])
        hi = np.array([200.0] * n + [10.0])
        x0 = np.array([cost[nm] * 2 for nm in names] + [3.0])
        result = optimize.minimize(
            lambda x: x[-1], x0, constraints=constraints,
            bounds=list(zip(lo, hi)), method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-9},
        )
        assert result.success
        min_max_load = result.x[-1]
        assert min_max_load > 1.5, (
            f"workload unexpectedly near-schedulable: {min_max_load:.2f}"
        )



class TestPrototypeWorkload:
    def test_structure(self):
        ts = prototype_workload()
        assert len(ts.tasks) == 4
        assert len(ts.resources) == 3
        for task in ts.tasks:
            assert len(task.subtasks) == 3
            assert len(task.graph.paths) == 1   # linear dependence
        # Every CPU hosts one subtask of every task.
        for rname in ts.resources:
            assert len(ts.subtasks_on(rname)) == 4

    def test_paper_parameters(self):
        ts = prototype_workload()
        fast = ts.task("fast1")
        slow = ts.task("slow1")
        assert fast.critical_time == 105.0
        assert slow.critical_time == 800.0
        assert fast.subtasks[0].exec_time == 5.0
        assert slow.subtasks[0].exec_time == 13.0
        assert fast.trigger.mean_rate() == pytest.approx(0.04)
        assert slow.trigger.mean_rate() == pytest.approx(0.01)

    def test_min_rate_shares(self):
        # Section 6.2's arithmetic: 0.2 fast, 0.13 slow, sum 0.66/CPU.
        assert PROTOTYPE_FAST_MIN_SHARE == pytest.approx(0.2)
        assert PROTOTYPE_SLOW_MIN_SHARE == pytest.approx(0.13)
        total = 2 * PROTOTYPE_FAST_MIN_SHARE + 2 * PROTOTYPE_SLOW_MIN_SHARE
        assert total == pytest.approx(0.66)

    def test_gc_reservation(self):
        ts = prototype_workload()
        for resource in ts.resources.values():
            assert resource.availability == pytest.approx(0.9)
            assert resource.lag == 5.0

    def test_utility_is_negative_latency(self):
        ts = prototype_workload()
        fn = ts.task("fast1").utility
        assert fn.value(35.0) == pytest.approx(-35.0)
