"""Tests for the random workload generator."""

import numpy as np
import pytest

from repro.baselines.slicing import evaluate_assignment, even_slicing
from repro.errors import ModelError
from repro.workloads.generator import (
    GeneratorConfig,
    random_graph,
    random_workload,
)


class TestRandomGraph:
    def test_chain(self):
        rng = np.random.default_rng(0)
        g = random_graph(["a", "b", "c"], "chain", rng)
        assert g.paths == (("a", "b", "c"),)

    def test_tree_single_root(self):
        rng = np.random.default_rng(1)
        g = random_graph([f"n{i}" for i in range(8)], "tree", rng)
        assert g.root == "n0"
        assert len(g.leaves) >= 1

    def test_diamond(self):
        rng = np.random.default_rng(2)
        g = random_graph(["a", "b", "c", "d"], "diamond", rng)
        assert g.root == "a"
        assert g.leaves == ("d",)
        assert len(g.paths) == 2

    def test_layered_valid(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            g = random_graph([f"n{i}" for i in range(6)], "layered", rng)
            assert len(g) == 6   # DAG validation happened in constructor

    def test_single_node(self):
        rng = np.random.default_rng(4)
        g = random_graph(["solo"], "tree", rng)
        assert g.paths == (("solo",),)

    def test_unknown_shape(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ModelError):
            random_graph(["a", "b"], "mobius", rng)


class TestRandomWorkload:
    def test_structure_valid(self):
        ts = random_workload(GeneratorConfig(n_tasks=5, n_resources=7),
                             seed=0)
        assert len(ts.tasks) == 5
        assert len(ts.resources) == 7

    def test_deterministic_per_seed(self):
        a = random_workload(seed=3)
        b = random_workload(seed=3)
        assert a.subtask_names == b.subtask_names
        for name in a.subtask_names:
            assert a.owner_of(name).subtask(name).exec_time == \
                b.owner_of(name).subtask(name).exec_time

    def test_different_seeds_differ(self):
        a = random_workload(seed=1)
        b = random_workload(seed=2)
        exec_a = [a.owner_of(n).subtask(n).exec_time for n in a.subtask_names]
        exec_b = [b.owner_of(n).subtask(n).exec_time for n in b.subtask_names[:len(exec_a)]]
        assert exec_a != exec_b

    @pytest.mark.parametrize("seed", range(5))
    def test_provisioning_guarantees_feasibility(self, seed):
        """The generator's contract: even slicing must be feasible."""
        ts = random_workload(
            GeneratorConfig(n_tasks=4, n_resources=6, provisioning=0.8),
            seed=seed,
        )
        score = evaluate_assignment(ts, even_slicing(ts))
        assert score.feasible, score.violations

    def test_validation(self):
        with pytest.raises(ModelError):
            GeneratorConfig(n_tasks=0).validate()
        with pytest.raises(ModelError):
            GeneratorConfig(min_subtasks=5, max_subtasks=3).validate()
        with pytest.raises(ModelError):
            GeneratorConfig(max_subtasks=10, n_resources=6).validate()
        with pytest.raises(ModelError):
            GeneratorConfig(shapes=("pentagon",)).validate()
