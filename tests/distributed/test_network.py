"""Unit tests for the simulated message bus."""

import pytest

from repro.distributed.messages import LatencyMessage
from repro.distributed.network import MessageBus
from repro.errors import DistributedError


def msg(i=0):
    return LatencyMessage(task="t", subtask="s", latency=1.0, iteration=i)


class TestDelivery:
    def test_zero_delay_same_round(self):
        bus = MessageBus(delay=0)
        bus.send("a", "b", msg())
        delivered = bus.deliver("b")
        assert len(delivered) == 1
        assert delivered[0].payload == msg()

    def test_delay_defers_delivery(self):
        bus = MessageBus(delay=2)
        bus.send("a", "b", msg())
        assert bus.deliver("b") == []
        bus.advance()
        assert bus.deliver("b") == []
        bus.advance()
        assert len(bus.deliver("b")) == 1

    def test_delivery_is_per_receiver(self):
        bus = MessageBus()
        bus.send("a", "b", msg(1))
        bus.send("a", "c", msg(2))
        assert len(bus.deliver("b")) == 1
        assert len(bus.deliver("c")) == 1
        assert bus.deliver("b") == []

    def test_undelivered_messages_carry_over(self):
        bus = MessageBus()
        bus.send("a", "b", msg())
        bus.advance()   # nobody collected
        assert len(bus.deliver("b")) == 1

    def test_send_order_preserved(self):
        bus = MessageBus()
        for i in range(5):
            bus.send("a", "b", msg(i))
        iterations = [env.payload.iteration for env in bus.deliver("b")]
        assert iterations == [0, 1, 2, 3, 4]

    def test_counters(self):
        bus = MessageBus()
        bus.send("a", "b", msg())
        bus.send("a", "c", msg())
        bus.deliver("b")
        assert bus.sent == 2
        assert bus.delivered == 1
        assert bus.pending() == 1


class TestFaults:
    def test_loss_probability(self):
        bus = MessageBus(loss_probability=0.5, seed=1)
        for _ in range(1000):
            bus.send("a", "b", msg())
        assert 380 <= bus.dropped <= 620

    def test_lossless_by_default(self):
        bus = MessageBus()
        for _ in range(100):
            bus.send("a", "b", msg())
        assert bus.dropped == 0

    def test_partition_drops(self):
        bus = MessageBus()
        bus.partition("a", "b")
        assert bus.send("a", "b", msg()) is None
        assert bus.send("b", "a", msg()) is None
        assert bus.dropped == 2
        # Unrelated pairs unaffected.
        assert bus.send("a", "c", msg()) is not None

    def test_heal_restores(self):
        bus = MessageBus()
        bus.partition("a", "b")
        bus.heal("a", "b")
        assert bus.send("a", "b", msg()) is not None

    def test_jitter_bounded(self):
        bus = MessageBus(delay=1, jitter=3, seed=7)
        deliveries = []
        for _ in range(200):
            env = bus.send("a", "b", msg())
            deliveries.append(env.deliver_round - env.send_round)
        assert min(deliveries) >= 1
        assert max(deliveries) <= 4

    def test_deterministic_given_seed(self):
        def run(seed):
            bus = MessageBus(loss_probability=0.3, jitter=2, seed=seed)
            outcome = []
            for _ in range(50):
                env = bus.send("a", "b", msg())
                outcome.append(None if env is None else env.deliver_round)
            return outcome
        assert run(9) == run(9)
        assert run(9) != run(10)


class TestBlackout:
    def test_full_blackout_is_legal(self):
        bus = MessageBus(loss_probability=1.0)
        for _ in range(50):
            assert bus.send("a", "b", msg()) is None
        assert bus.dropped == 50
        assert bus.deliver("b") == []

    def test_blackout_lifts_when_probability_restored(self):
        bus = MessageBus()
        bus.set_loss_probability(1.0)
        assert bus.send("a", "b", msg()) is None
        bus.set_loss_probability(0.0)
        assert bus.send("a", "b", msg()) is not None

    def test_set_loss_probability_validates(self):
        bus = MessageBus()
        with pytest.raises(DistributedError):
            bus.set_loss_probability(1.5)
        with pytest.raises(DistributedError):
            bus.set_loss_probability(-0.1)


class TestRegistration:
    def test_unregistered_bus_is_permissive(self):
        bus = MessageBus()
        bus.partition("a", "b")     # ad-hoc names allowed
        bus.heal("a", "b")

    def test_partition_rejects_unknown_agent(self):
        bus = MessageBus()
        bus.register("a", "b")
        with pytest.raises(DistributedError):
            bus.partition("a", "ghost")
        with pytest.raises(DistributedError):
            bus.partition("ghost", "b")

    def test_heal_rejects_unknown_agent(self):
        bus = MessageBus()
        bus.register("a", "b")
        with pytest.raises(DistributedError):
            bus.heal("a", "ghost")

    def test_registered_names_accepted(self):
        bus = MessageBus()
        bus.register("a", "b")
        bus.partition("a", "b")
        assert bus.send("a", "b", msg()) is None
        bus.heal("a", "b")
        assert bus.send("a", "b", msg()) is not None

    def test_rejects_empty_name(self):
        with pytest.raises(DistributedError):
            MessageBus().register("")


class TestTTL:
    def test_expired_messages_discarded(self):
        bus = MessageBus(message_ttl=1)
        bus.send("a", "b", msg())
        bus.advance()
        bus.advance()   # age 2 > ttl 1
        assert bus.deliver("b") == []
        assert bus.expired == 1

    def test_fresh_messages_survive_ttl(self):
        bus = MessageBus(message_ttl=2)
        bus.send("a", "b", msg())
        bus.advance()
        assert len(bus.deliver("b")) == 1

    def test_ttl_validation(self):
        with pytest.raises(DistributedError):
            MessageBus(message_ttl=-1)


class TestDuplicationAndDedup:
    def test_duplicates_share_seq_and_are_deduplicated(self):
        bus = MessageBus(seed=3)
        bus.duplication_probability = 1.0
        env = bus.send("a", "b", msg())
        assert bus.duplicated == 1
        delivered = bus.deliver("b")
        assert len(delivered) == 1          # duplicate suppressed
        assert delivered[0].seq == env.seq
        assert bus.deduplicated == 1

    def test_dedup_off_delivers_both_copies(self):
        bus = MessageBus(seed=3, dedup=False)
        bus.duplication_probability = 1.0
        bus.send("a", "b", msg())
        assert len(bus.deliver("b")) == 2

    def test_duplicate_across_rounds_suppressed(self):
        bus = MessageBus(seed=5, jitter=1)
        bus.duplication_probability = 1.0
        # With jitter the copies can land on different rounds; across
        # several sends every second copy must still be suppressed.
        for _ in range(20):
            bus.send("a", "b", msg())
        got = len(bus.deliver("b"))
        for _ in range(5):
            bus.advance()
            got += len(bus.deliver("b"))
        assert got == 20
        assert bus.deduplicated == 20

    def test_duplication_probability_validated(self):
        bus = MessageBus()
        with pytest.raises(DistributedError):
            bus.duplication_probability = 1.5

    def test_unique_seq_per_send(self):
        bus = MessageBus()
        seqs = {bus.send("a", "b", msg(i)).seq for i in range(10)}
        assert len(seqs) == 10


class TestReordering:
    def test_reorder_shuffles_deterministically(self):
        def run(seed):
            bus = MessageBus(seed=seed)
            bus.reorder = True
            for i in range(8):
                bus.send("a", "b", msg(i))
            return [env.payload.iteration for env in bus.deliver("b")]

        first, second = run(4), run(4)
        assert first == second                      # deterministic
        assert sorted(first) == list(range(8))      # nothing lost
        assert run(4) != run(12) or run(4) != run(29)   # some seed shuffles

    def test_reorder_off_preserves_send_order(self):
        bus = MessageBus(seed=4)
        for i in range(8):
            bus.send("a", "b", msg(i))
        order = [env.payload.iteration for env in bus.deliver("b")]
        assert order == list(range(8))


class TestPurge:
    def test_purge_discards_due_messages(self):
        bus = MessageBus()
        bus.send("a", "b", msg())
        bus.send("a", "c", msg())
        assert bus.purge("b") == 1
        assert bus.deliver("b") == []
        assert len(bus.deliver("c")) == 1
        assert bus.dropped == 1

    def test_purge_empty_is_noop(self):
        bus = MessageBus()
        assert bus.purge("b") == 0


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(DistributedError):
            MessageBus(delay=-1)
        with pytest.raises(DistributedError):
            MessageBus(jitter=-1)
        with pytest.raises(DistributedError):
            MessageBus(loss_probability=1.1)
        with pytest.raises(DistributedError):
            MessageBus(loss_probability=-0.1)
