"""Unit tests for the simulated message bus."""

import pytest

from repro.distributed.messages import LatencyMessage, PriceMessage
from repro.distributed.network import MessageBus
from repro.errors import DistributedError


def msg(i=0):
    return LatencyMessage(task="t", subtask="s", latency=1.0, iteration=i)


class TestDelivery:
    def test_zero_delay_same_round(self):
        bus = MessageBus(delay=0)
        bus.send("a", "b", msg())
        delivered = bus.deliver("b")
        assert len(delivered) == 1
        assert delivered[0].payload == msg()

    def test_delay_defers_delivery(self):
        bus = MessageBus(delay=2)
        bus.send("a", "b", msg())
        assert bus.deliver("b") == []
        bus.advance()
        assert bus.deliver("b") == []
        bus.advance()
        assert len(bus.deliver("b")) == 1

    def test_delivery_is_per_receiver(self):
        bus = MessageBus()
        bus.send("a", "b", msg(1))
        bus.send("a", "c", msg(2))
        assert len(bus.deliver("b")) == 1
        assert len(bus.deliver("c")) == 1
        assert bus.deliver("b") == []

    def test_undelivered_messages_carry_over(self):
        bus = MessageBus()
        bus.send("a", "b", msg())
        bus.advance()   # nobody collected
        assert len(bus.deliver("b")) == 1

    def test_send_order_preserved(self):
        bus = MessageBus()
        for i in range(5):
            bus.send("a", "b", msg(i))
        iterations = [env.payload.iteration for env in bus.deliver("b")]
        assert iterations == [0, 1, 2, 3, 4]

    def test_counters(self):
        bus = MessageBus()
        bus.send("a", "b", msg())
        bus.send("a", "c", msg())
        bus.deliver("b")
        assert bus.sent == 2
        assert bus.delivered == 1
        assert bus.pending() == 1


class TestFaults:
    def test_loss_probability(self):
        bus = MessageBus(loss_probability=0.5, seed=1)
        for _ in range(1000):
            bus.send("a", "b", msg())
        assert 380 <= bus.dropped <= 620

    def test_lossless_by_default(self):
        bus = MessageBus()
        for _ in range(100):
            bus.send("a", "b", msg())
        assert bus.dropped == 0

    def test_partition_drops(self):
        bus = MessageBus()
        bus.partition("a", "b")
        assert bus.send("a", "b", msg()) is None
        assert bus.send("b", "a", msg()) is None
        assert bus.dropped == 2
        # Unrelated pairs unaffected.
        assert bus.send("a", "c", msg()) is not None

    def test_heal_restores(self):
        bus = MessageBus()
        bus.partition("a", "b")
        bus.heal("a", "b")
        assert bus.send("a", "b", msg()) is not None

    def test_jitter_bounded(self):
        bus = MessageBus(delay=1, jitter=3, seed=7)
        deliveries = []
        for _ in range(200):
            env = bus.send("a", "b", msg())
            deliveries.append(env.deliver_round - env.send_round)
        assert min(deliveries) >= 1
        assert max(deliveries) <= 4

    def test_deterministic_given_seed(self):
        def run(seed):
            bus = MessageBus(loss_probability=0.3, jitter=2, seed=seed)
            outcome = []
            for _ in range(50):
                env = bus.send("a", "b", msg())
                outcome.append(None if env is None else env.deliver_round)
            return outcome
        assert run(9) == run(9)
        assert run(9) != run(10)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(DistributedError):
            MessageBus(delay=-1)
        with pytest.raises(DistributedError):
            MessageBus(jitter=-1)
        with pytest.raises(DistributedError):
            MessageBus(loss_probability=1.0)
