"""Integration tests for the distributed LLA runtime (Section 4.1)."""

import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.stepsize import FixedStepSize
from repro.distributed import (
    DistributedConfig,
    DistributedLLARuntime,
    LocalGamma,
)
from repro.errors import DistributedError
from repro.workloads.paper import base_workload


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"seed": -1},
        {"initial_resource_price": 0.0},
        {"initial_resource_price": -1.0},
        {"initial_path_price": -0.5},
    ])
    def test_rejects_unvalidated_knobs(self, kwargs):
        # Regression (REP015): these knobs used to sail through
        # construction unvalidated.
        with pytest.raises(DistributedError):
            DistributedConfig(**kwargs)


class TestEquivalence:
    def test_matches_centralized_under_ideal_bus(self):
        """Zero delay, no loss, fixed γ: the message-passing runtime must
        produce bit-for-bit the in-process optimizer's iterates."""
        central = LLAOptimizer(
            base_workload(),
            LLAConfig(step_policy=FixedStepSize(1.0), max_iterations=100,
                      stop_on_convergence=False),
        ).run()
        distributed = DistributedLLARuntime(
            base_workload(),
            DistributedConfig(rounds=100, adaptive=False),
        ).run()
        for name, lat in central.latencies.items():
            assert distributed.latencies[name] == pytest.approx(lat, abs=1e-12)
        for rname, price in central.resource_prices.items():
            assert distributed.resource_prices[rname] == \
                pytest.approx(price, abs=1e-12)

    def test_adaptive_converges_to_optimum(self):
        ts = base_workload()
        result = DistributedLLARuntime(
            ts, DistributedConfig(rounds=1500, adaptive=True)
        ).run()
        assert result.converged
        assert ts.is_feasible(result.latencies, tol=1e-2)
        for task in ts.tasks:
            _, crit = task.critical_path(result.latencies)
            assert crit == pytest.approx(task.critical_time, rel=0.02)


class TestFaultTolerance:
    def test_converges_under_message_loss(self):
        ts = base_workload()
        result = DistributedLLARuntime(
            ts,
            DistributedConfig(rounds=1500, loss_probability=0.1, seed=3),
        ).run()
        assert ts.is_feasible(result.latencies, tol=1e-2)

    def test_converges_under_delay_and_jitter(self):
        ts = base_workload()
        result = DistributedLLARuntime(
            ts,
            DistributedConfig(rounds=1500, delay=2, jitter=2, seed=5),
        ).run()
        assert ts.is_feasible(result.latencies, tol=1e-2)

    def test_recovers_from_partition(self):
        ts = base_workload()
        runtime = DistributedLLARuntime(ts, DistributedConfig(rounds=1500))
        # Partition T1's controller from r0 for the first 200 rounds.
        runtime.bus.partition("controller:T1", "resource:r0")
        for _ in range(200):
            runtime.step()
        runtime.bus.heal("controller:T1", "resource:r0")
        result = runtime.run(1300)
        assert ts.is_feasible(result.latencies, tol=1e-2)

    def test_paused_resource_agent_freezes_price(self):
        ts = base_workload()
        runtime = DistributedLLARuntime(ts, DistributedConfig(rounds=10))
        runtime.step()
        frozen = runtime.resources["r0"].price
        runtime.resources["r0"].paused = True
        for _ in range(5):
            runtime.step()
        assert runtime.resources["r0"].price == frozen


class TestAgents:
    def test_resource_agent_waits_for_all_latencies(self):
        ts = base_workload()
        runtime = DistributedLLARuntime(ts, DistributedConfig())
        agent = runtime.resources["r0"]
        assert agent.load() is None     # nothing heard yet
        runtime.step()
        assert agent.load() is not None

    def test_controller_tracks_only_own_resources(self):
        ts = base_workload()
        runtime = DistributedLLARuntime(ts, DistributedConfig())
        controller = runtime.controllers["T1"]
        used = {s.resource for s in ts.task("T1").subtasks}
        assert set(controller.resource_prices) == used

    def test_history_recorded(self):
        ts = base_workload()
        runtime = DistributedLLARuntime(
            ts, DistributedConfig(rounds=20, record_history=True)
        )
        result = runtime.run()
        assert len(result.history) == 20
        assert result.history[5].iteration == 6


class TestLocalGamma:
    def test_adaptive_doubling_and_reset(self):
        gamma = LocalGamma(initial=1.0, max_gamma=8.0)
        assert gamma.observe(True) == 2.0
        assert gamma.observe(True) == 4.0
        assert gamma.observe(True) == 8.0
        assert gamma.observe(True) == 8.0   # capped
        assert gamma.observe(False) == 1.0  # reverts

    def test_frozen_when_adapt_off(self):
        gamma = LocalGamma(initial=2.0, adapt=False)
        assert gamma.observe(True) == 2.0
        assert gamma.observe(False) == 2.0
