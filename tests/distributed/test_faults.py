"""Tests for the chaos subsystem: fault plans, crash/restart recovery,
checkpointing, staleness degradation, and fault-run determinism."""

import pytest

from repro.distributed import (
    CapacityShock,
    CheckpointCorruption,
    CheckpointOutage,
    CheckpointStore,
    ChurnStorm,
    CrashWindow,
    DistributedConfig,
    DistributedLLARuntime,
    DuplicationWindow,
    FaultPlan,
    LoopStall,
    LossBurst,
    PartitionWindow,
    ReorderWindow,
)
from repro.errors import DistributedError
from repro.telemetry import Telemetry
from repro.workloads.paper import base_workload


def make_runtime(plan=None, rounds=100, seed=0, telemetry=None, **kwargs):
    config = DistributedConfig(
        rounds=rounds, seed=seed, fault_plan=plan, **kwargs
    )
    return DistributedLLARuntime(base_workload(), config,
                                 telemetry=telemetry)


class TestFaultPlanValidation:
    def test_empty_plan(self):
        assert FaultPlan().is_empty()
        assert FaultPlan().last_round() == 0

    def test_lists_normalized_to_tuples(self):
        plan = FaultPlan(crashes=[CrashWindow("resource:r0", at=5)])
        assert isinstance(plan.crashes, tuple)

    def test_rejects_bad_rounds(self):
        with pytest.raises(DistributedError):
            CrashWindow("resource:r0", at=0)
        with pytest.raises(DistributedError):
            CrashWindow("resource:r0", at=10, restart_at=10)
        with pytest.raises(DistributedError):
            PartitionWindow("a", "b", start=5, end=3)
        with pytest.raises(DistributedError):
            LossBurst(start=1, end=5, probability=1.5)
        with pytest.raises(DistributedError):
            DuplicationWindow(start=1, end=5, probability=0.0)
        with pytest.raises(DistributedError):
            CapacityShock("r0", at=1, factor=-0.5)
        with pytest.raises(DistributedError):
            CapacityShock("r0", at=1, factor=float("inf"))

    def test_zero_factor_shock_is_a_blackout(self):
        shock = CapacityShock("r0", at=1, factor=0.0)
        assert shock.factor == 0.0

    def test_blackout_burst_is_legal(self):
        burst = LossBurst(start=10, end=20, probability=1.0)
        assert burst.probability == 1.0

    def test_rejects_overlapping_windows(self):
        with pytest.raises(DistributedError):
            FaultPlan(crashes=(
                CrashWindow("resource:r0", at=5, restart_at=20),
                CrashWindow("resource:r0", at=10, restart_at=30),
            ))
        with pytest.raises(DistributedError):
            FaultPlan(loss_bursts=(
                LossBurst(start=5, end=20),
                LossBurst(start=10, end=30),
            ))
        # Same rounds on different subjects are fine.
        FaultPlan(crashes=(
            CrashWindow("resource:r0", at=5, restart_at=20),
            CrashWindow("resource:r1", at=5, restart_at=20),
        ))

    def test_last_round(self):
        plan = FaultPlan(
            crashes=(CrashWindow("resource:r0", at=5, restart_at=20),),
            loss_bursts=(LossBurst(start=30, end=40),),
        )
        assert plan.last_round() == 40

    def test_injector_rejects_unknown_names(self):
        with pytest.raises(DistributedError):
            make_runtime(FaultPlan(crashes=(
                CrashWindow("resource:ghost", at=5),
            )))
        with pytest.raises(DistributedError):
            make_runtime(FaultPlan(capacity_shocks=(
                CapacityShock("ghost", at=5, factor=0.5),
            )))


class TestCheckpointStore:
    def test_save_load_roundtrip(self):
        store = CheckpointStore()
        store.save("a", 10, {"x": [1, 2]})
        checkpoint = store.load("a")
        assert checkpoint.round == 10
        assert checkpoint.state == {"x": [1, 2]}

    def test_load_is_isolated_copy(self):
        store = CheckpointStore()
        state = {"x": [1, 2]}
        store.save("a", 1, state)
        state["x"].append(3)                      # mutate after save
        loaded = store.load("a")
        assert loaded.state == {"x": [1, 2]}
        loaded.state["x"].append(9)               # mutate after load
        assert store.load("a").state == {"x": [1, 2]}

    def test_missing_agent(self):
        assert CheckpointStore().load("nobody") is None

    def test_rejects_negative_round(self):
        with pytest.raises(DistributedError):
            CheckpointStore().save("a", -1, {})

    def test_fingerprint_mismatch_returns_none(self):
        """Regression: checkpoints used to record only agent and round,
        so a checkpoint taken for one task set would happily warm-restore
        an agent solving a *different* one.  A stamped load must reject a
        checkpoint carrying another fingerprint."""
        store = CheckpointStore()
        store.save("a", 10, {"price": 3.0}, fingerprint="fp-old")
        assert store.load("a", fingerprint="fp-new") is None
        assert store.mismatches == 1
        # The checkpoint itself survives; a matching load still works.
        loaded = store.load("a", fingerprint="fp-old")
        assert loaded is not None and loaded.state == {"price": 3.0}

    def test_unstamped_checkpoint_cannot_satisfy_stamped_load(self):
        store = CheckpointStore()
        store.save("a", 10, {"price": 3.0})
        assert store.load("a", fingerprint="fp") is None
        assert store.mismatches == 1

    def test_unstamped_load_skips_the_check(self):
        store = CheckpointStore()
        store.save("a", 10, {"price": 3.0}, fingerprint="fp")
        assert store.load("a").fingerprint == "fp"
        assert store.mismatches == 0


class TestCheckpointFingerprintInRuntime:
    def test_taskset_mutation_demotes_warm_restart_to_cold(self):
        """Save checkpoints, shock a resource (changing the task-set
        fingerprint), then warm-restart: the stale checkpoint must be
        rejected and the agent restarted cold."""
        runtime = make_runtime()
        interval = runtime.config.checkpoint_interval
        for _ in range(interval + 1):
            runtime.step()
        assert runtime.checkpoints.saves > 0
        runtime.crash_agent("resource:r0")
        runtime.set_resource_availability("r0", 0.5)
        mismatches_before = runtime.checkpoints.mismatches
        runtime.restart_agent("resource:r0", warm=True)
        assert runtime.checkpoints.mismatches == mismatches_before + 1
        # Cold restart: the resource price is back at its initial value.
        assert runtime.resources["r0"].price == pytest.approx(
            runtime.config.initial_resource_price)

    def test_unchanged_taskset_still_restores_warm(self):
        runtime = make_runtime()
        interval = runtime.config.checkpoint_interval
        for _ in range(interval + 1):
            runtime.step()
        runtime.crash_agent("resource:r0")
        mismatches_before = runtime.checkpoints.mismatches
        runtime.restart_agent("resource:r0", warm=True)
        assert runtime.checkpoints.mismatches == mismatches_before


class TestCrashRestart:
    def test_crashed_agent_freezes_and_drops_messages(self):
        runtime = make_runtime()
        for _ in range(10):
            runtime.step()
        runtime.crash_agent("resource:r0")
        frozen_price = runtime.resources["r0"].price
        dropped_before = runtime.crash_dropped
        for _ in range(5):
            runtime.step()
        assert runtime.resources["r0"].price == frozen_price
        assert runtime.crash_dropped > dropped_before
        assert runtime.crashed_agents() == ["resource:r0"]

    def test_double_crash_rejected(self):
        runtime = make_runtime()
        runtime.crash_agent("resource:r0")
        with pytest.raises(DistributedError):
            runtime.crash_agent("resource:r0")
        with pytest.raises(DistributedError):
            runtime.restart_agent("resource:r1")

    def test_warm_restart_resumes_from_checkpoint(self):
        runtime = make_runtime(checkpoint_interval=10)
        for _ in range(20):
            runtime.step()
        checkpointed_price = runtime.checkpoints.load("resource:r0") \
            .state["price"]
        runtime.crash_agent("resource:r0")
        runtime.step()
        runtime.restart_agent("resource:r0", warm=True)
        assert runtime.resources["r0"].price == checkpointed_price

    def test_cold_restart_returns_to_initials(self):
        runtime = make_runtime(checkpoint_interval=10)
        for _ in range(20):
            runtime.step()
        runtime.crash_agent("resource:r0")
        runtime.restart_agent("resource:r0", warm=False)
        agent = runtime.resources["r0"]
        assert agent.price == agent.initial_price
        assert agent.latencies == {}

    def test_warm_restart_without_checkpoint_falls_back_to_cold(self):
        runtime = make_runtime(checkpoint_interval=0)
        for _ in range(5):
            runtime.step()
        runtime.crash_agent("controller:T1")
        runtime.restart_agent("controller:T1", warm=True)
        controller = runtime.controllers["T1"]
        assert all(p == runtime.config.initial_resource_price
                   for p in controller.resource_prices.values())

    def test_controller_crash_restart_recovers(self):
        runtime = make_runtime(rounds=1500, checkpoint_interval=25)
        plan_free = None
        del plan_free
        for _ in range(400):
            runtime.step()
        runtime.crash_agent("controller:T1")
        for _ in range(30):
            runtime.step()
        runtime.restart_agent("controller:T1", warm=True)
        result = runtime.run(1000)
        assert runtime.taskset.is_feasible(result.latencies, tol=1e-2)

    def test_crash_telemetry(self):
        telemetry = Telemetry.in_memory()
        runtime = make_runtime(telemetry=telemetry)
        runtime.step()
        runtime.crash_agent("resource:r0")
        runtime.step()
        runtime.restart_agent("resource:r0")
        kinds = [ev.kind for ev in telemetry.tracer.sinks[0].events]
        assert "agent_crash" in kinds
        assert "agent_restart" in kinds
        snapshot = telemetry.registry.snapshot()
        assert snapshot["dist.agent_crashes_total"]["value"] == 1
        assert snapshot["dist.agent_restarts_total"]["value"] == 1


class TestStalenessDegradation:
    def test_degrades_when_price_source_crashes(self):
        runtime = make_runtime(staleness_limit=5)
        for _ in range(50):
            runtime.step()
        runtime.crash_agent("resource:r0")
        for _ in range(10):
            runtime.step()
        degraded = runtime.degraded_controllers()
        assert degraded     # every task uses r0 in the base workload
        controller = runtime.controllers["T1"]
        assert controller.degraded
        assert controller.staleness() > 5

    def test_degraded_controller_freezes_dual_state(self):
        runtime = make_runtime(staleness_limit=5)
        for _ in range(50):
            runtime.step()
        runtime.crash_agent("resource:r0")
        for _ in range(7):
            runtime.step()
        controller = runtime.controllers["T1"]
        assert controller.degraded
        frozen_paths = dict(controller.path_prices)
        frozen_lat = dict(controller.latencies)
        runtime.step()
        assert controller.path_prices == frozen_paths
        assert controller.latencies == frozen_lat

    def test_degraded_assignment_is_feasible(self):
        runtime = make_runtime(staleness_limit=5)
        for _ in range(300):
            runtime.step()
        runtime.crash_agent("resource:r0")
        for _ in range(20):
            runtime.step()
        for controller in runtime.controllers.values():
            if not controller.degraded:
                continue
            task = controller.task
            for path in task.graph.paths:
                lat = task.graph.path_latency(path, controller.latencies)
                assert lat <= task.critical_time + 1e-9

    def test_recovers_after_restart(self):
        runtime = make_runtime(rounds=1500, staleness_limit=5,
                               checkpoint_interval=25)
        for _ in range(300):
            runtime.step()
        runtime.crash_agent("resource:r0")
        for _ in range(50):
            runtime.step()
        assert runtime.degraded_controllers()
        runtime.restart_agent("resource:r0", warm=True)
        for _ in range(20):
            runtime.step()
        assert not runtime.degraded_controllers()

    def test_no_detector_without_limit(self):
        runtime = make_runtime()
        for _ in range(20):
            runtime.step()
        runtime.crash_agent("resource:r0")
        for _ in range(30):
            runtime.step()
        assert not runtime.degraded_controllers()

    def test_staleness_limit_validated(self):
        with pytest.raises(DistributedError):
            make_runtime(staleness_limit=0)


class TestCapacityShock:
    def test_shock_applies_and_restores(self):
        plan = FaultPlan(capacity_shocks=(
            CapacityShock("r0", at=10, factor=0.5, restore_at=20),
        ))
        runtime = make_runtime(plan)
        original = runtime.taskset.resources["r0"].availability
        for _ in range(10):
            runtime.step()
        assert runtime.taskset.resources["r0"].availability == \
            pytest.approx(original * 0.5)
        for _ in range(10):
            runtime.step()
        assert runtime.taskset.resources["r0"].availability == \
            pytest.approx(original)

    def test_converges_through_shock(self):
        plan = FaultPlan(capacity_shocks=(
            CapacityShock("r0", at=100, factor=0.8, restore_at=300),
        ))
        runtime = make_runtime(plan, rounds=1500)
        result = runtime.run()
        assert runtime.taskset.is_feasible(result.latencies, tol=1e-2)


class TestScriptedScenario:
    """The ISSUE acceptance scenario: a resource agent down for 50 rounds
    mid-run, warm restart, full recovery, safety during degradation."""

    PLAN = FaultPlan(crashes=(
        CrashWindow("resource:r0", at=400, restart_at=450, warm=True),
    ))

    def run_with_plan(self, plan, rounds=1200, seed=0):
        runtime = make_runtime(plan, rounds=rounds, seed=seed,
                               staleness_limit=10, checkpoint_interval=25,
                               record_history=True)
        violations = 0
        for _ in range(rounds):
            record = runtime.step()
            runtime.history.append(record)
            degraded_tasks = {
                name.split(":", 1)[1]
                for name in runtime.degraded_controllers()
            }
            if degraded_tasks and any(
                    key.task in degraded_tasks
                    for key in record.congested_paths):
                violations += 1
        return runtime, violations

    def test_recovery_within_one_percent_and_safe(self):
        baseline, _ = self.run_with_plan(None)
        faulted, violations = self.run_with_plan(self.PLAN)
        base_utility = baseline.history[-1].utility
        fault_utility = faulted.history[-1].utility
        assert violations == 0
        assert abs(fault_utility - base_utility) <= \
            0.01 * abs(base_utility)
        assert faulted.taskset.is_feasible(
            faulted.global_latencies(), tol=1e-2
        )

    def test_trajectory_deterministic_given_seed(self):
        first, _ = self.run_with_plan(self.PLAN, rounds=600, seed=7)
        second, _ = self.run_with_plan(self.PLAN, rounds=600, seed=7)
        assert len(first.history) == len(second.history)
        for a, b in zip(first.history, second.history):
            assert a.utility == b.utility           # bitwise, not approx
            assert a.latencies == b.latencies
            assert a.resource_prices == b.resource_prices
            assert a.path_prices == b.path_prices

    def test_different_seed_diverges(self):
        plan = FaultPlan(
            crashes=self.PLAN.crashes,
            loss_bursts=(LossBurst(start=100, end=150, probability=0.4),),
        )
        first, _ = self.run_with_plan(plan, rounds=300, seed=7)
        second, _ = self.run_with_plan(plan, rounds=300, seed=8)
        assert any(a.utility != b.utility
                   for a, b in zip(first.history, second.history))


class TestFaultDeterminism:
    """Satellite: same seed + same FaultPlan => bitwise-identical history,
    across crash/restart boundaries, jittered delivery, partition/heal
    windows, duplication and reordering."""

    PLAN = FaultPlan(
        crashes=(CrashWindow("resource:r1", at=60, restart_at=90),),
        partitions=(PartitionWindow("controller:T1", "resource:r0",
                                    start=30, end=70),),
        loss_bursts=(LossBurst(start=100, end=120, probability=0.3),),
        duplications=(DuplicationWindow(start=125, end=150,
                                        probability=0.5),),
        reorders=(ReorderWindow(start=10, end=160),),
    )

    def run_history(self, seed):
        runtime = make_runtime(self.PLAN, rounds=200, seed=seed, jitter=2,
                               staleness_limit=15, checkpoint_interval=20,
                               message_ttl=25)
        return [runtime.step() for _ in range(200)], runtime

    def test_bitwise_identical_history(self):
        first, bus_a = self.run_history(seed=3)
        second, bus_b = self.run_history(seed=3)
        for a, b in zip(first, second):
            assert a.utility == b.utility
            assert a.latencies == b.latencies
            assert a.resource_prices == b.resource_prices
            assert a.path_prices == b.path_prices
            assert a.congested_resources == b.congested_resources
        assert bus_a.bus.sent == bus_b.bus.sent
        assert bus_a.bus.dropped == bus_b.bus.dropped
        assert bus_a.bus.duplicated == bus_b.bus.duplicated
        assert bus_a.bus.deduplicated == bus_b.bus.deduplicated
        assert bus_a.bus.expired == bus_b.bus.expired

    def test_still_converges_after_chaos(self):
        runtime = make_runtime(self.PLAN, rounds=1500, seed=3,
                               staleness_limit=15, checkpoint_interval=20)
        result = runtime.run()
        assert runtime.taskset.is_feasible(result.latencies, tol=1e-2)


class TestCheckpointFilePersistence:
    def test_roundtrip_survives_a_process_restart(self, tmp_path):
        store = CheckpointStore(directory=str(tmp_path))
        store.save("agent:a", 12, {"price": 3.5}, fingerprint="fp")
        # A fresh store over the same directory = a restarted process.
        reborn = CheckpointStore(directory=str(tmp_path))
        loaded = reborn.load("agent:a", fingerprint="fp")
        assert loaded is not None
        assert loaded.round == 12
        assert loaded.state == {"price": 3.5}

    def test_corrupted_file_demotes_to_cold_not_raise(self, tmp_path):
        """Regression: a truncated or corrupted checkpoint file used to
        escape as a raw ``json.JSONDecodeError`` out of ``load()``,
        crashing the very restart path whose job is to survive exactly
        this.  It must be *counted* and demoted to ``None``."""
        store = CheckpointStore(directory=str(tmp_path))
        store.save("agent:a", 12, {"price": 3.5}, fingerprint="fp")
        path = store.path_for("agent:a")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"agent": "agent:a", "round": 12, "sta')
        reborn = CheckpointStore(directory=str(tmp_path))
        assert reborn.load("agent:a", fingerprint="fp") is None
        assert reborn.corruptions == 1

    @pytest.mark.parametrize("payload", [
        "",                                          # empty file
        "not json at all",
        '[1, 2, 3]',                                 # wrong shape
        '{"agent": "a", "round": 1}',                # missing keys
        '{"agent": "a", "round": 1, "state": 7, "fingerprint": null}',
        '{"agent": "a", "round": 1, "state": {}, "fingerprint": 9}',
    ])
    def test_malformed_payloads_are_counted_never_raised(self, tmp_path,
                                                         payload):
        store = CheckpointStore(directory=str(tmp_path))
        with open(store.path_for("a"), "w", encoding="utf-8") as handle:
            handle.write(payload)
        assert store.load("a") is None
        assert store.corruptions == 1

    def test_missing_file_is_not_a_corruption(self, tmp_path):
        store = CheckpointStore(directory=str(tmp_path))
        assert store.load("nobody") is None
        assert store.corruptions == 0

    def test_stale_file_fingerprint_still_mismatches(self, tmp_path):
        store = CheckpointStore(directory=str(tmp_path))
        store.save("a", 5, {"x": 1}, fingerprint="fp-old")
        reborn = CheckpointStore(directory=str(tmp_path))
        assert reborn.load("a", fingerprint="fp-new") is None
        assert reborn.mismatches == 1
        assert reborn.corruptions == 0

    def test_drop_removes_the_file(self, tmp_path):
        import os

        store = CheckpointStore(directory=str(tmp_path))
        store.save("a", 5, {"x": 1})
        path = store.path_for("a")
        assert os.path.exists(path)
        store.drop("a")
        assert not os.path.exists(path)
        assert CheckpointStore(directory=str(tmp_path)).load("a") is None

    def test_unserializable_state_raises_and_keeps_old_file(self, tmp_path):
        store = CheckpointStore(directory=str(tmp_path))
        store.save("a", 5, {"x": 1}, fingerprint="fp")
        with pytest.raises(DistributedError):
            store.save("a", 6, {"x": object()}, fingerprint="fp")
        reborn = CheckpointStore(directory=str(tmp_path))
        loaded = reborn.load("a", fingerprint="fp")
        assert loaded is not None and loaded.round == 5

    def test_agent_names_are_sanitized_for_paths(self, tmp_path):
        store = CheckpointStore(directory=str(tmp_path))
        store.save("resource:r/0", 1, {"x": 1})
        path = store.path_for("resource:r/0")
        assert "/" not in path[len(str(tmp_path)) + 1:]
        assert CheckpointStore(
            directory=str(tmp_path)).load("resource:r/0") is not None


class TestServiceFaultWindows:
    def test_loop_stall_validation(self):
        LoopStall(at=1, ticks=3)
        with pytest.raises(DistributedError):
            LoopStall(at=0)
        with pytest.raises(DistributedError):
            LoopStall(at=1, ticks=0)

    def test_churn_storm_validation(self):
        ChurnStorm(at=2, events=8, kind="arrivals")
        with pytest.raises(DistributedError):
            ChurnStorm(at=2, events=0)
        with pytest.raises(DistributedError):
            ChurnStorm(at=2, kind="tsunami")

    def test_checkpoint_window_validation(self):
        CheckpointCorruption(at=3)
        CheckpointOutage(start=5, end=9)
        with pytest.raises(DistributedError):
            CheckpointCorruption(at=0)
        with pytest.raises(DistributedError):
            CheckpointOutage(start=9, end=5)

    def test_plan_rejects_overlapping_stalls_and_outages(self):
        with pytest.raises(DistributedError):
            FaultPlan(loop_stalls=(LoopStall(at=5, ticks=4),
                                   LoopStall(at=7, ticks=2)))
        with pytest.raises(DistributedError):
            FaultPlan(checkpoint_outages=(CheckpointOutage(start=5, end=9),
                                          CheckpointOutage(start=8, end=12)))

    def test_plan_classifies_fault_layers(self):
        service_plan = FaultPlan(loop_stalls=(LoopStall(at=5),))
        distributed_plan = FaultPlan(
            loss_bursts=(LossBurst(start=1, end=5, probability=0.5),))
        assert service_plan.has_service_faults()
        assert not service_plan.has_distributed_faults()
        assert distributed_plan.has_distributed_faults()
        assert not distributed_plan.has_service_faults()
        assert not service_plan.is_empty()

    def test_last_round_covers_service_windows(self):
        plan = FaultPlan(
            loop_stalls=(LoopStall(at=5, ticks=4),),
            churn_storms=(ChurnStorm(at=30),),
            checkpoint_corruptions=(CheckpointCorruption(at=12),),
            checkpoint_outages=(CheckpointOutage(start=40, end=46),),
        )
        assert plan.last_round() == 46

    def test_distributed_injector_rejects_service_faults(self):
        plan = FaultPlan(loop_stalls=(LoopStall(at=5),))
        with pytest.raises(DistributedError):
            make_runtime(plan)
