"""Direct unit tests for the distributed agents (message-level behaviour)."""

import pytest

from repro.core.state import PathKey
from repro.distributed.agents import ResourceAgent, TaskControllerAgent
from repro.distributed.messages import Envelope, LatencyMessage, PriceMessage
from repro.distributed.network import MessageBus


def envelope(payload, receiver="x"):
    return Envelope(sender="test", receiver=receiver, payload=payload,
                    send_round=0, deliver_round=0)


class TestResourceAgent:
    def test_ignores_foreign_subtask_latency(self, base_ts):
        bus = MessageBus()
        agent = ResourceAgent(base_ts, "r0", bus)
        # T12 runs on r1, not r0: the message must be ignored.
        agent.receive([envelope(
            LatencyMessage(task="T1", subtask="T12", latency=5.0,
                           iteration=1)
        )])
        assert "T12" not in agent.latencies

    def test_load_none_until_all_report(self, base_ts):
        bus = MessageBus()
        agent = ResourceAgent(base_ts, "r0", bus)
        # r0 hosts T11, T21, T31.
        agent.receive([envelope(
            LatencyMessage(task="T1", subtask="T11", latency=10.0,
                           iteration=1)
        )])
        assert agent.load() is None
        for name, task in (("T21", "T2"), ("T31", "T3")):
            agent.receive([envelope(
                LatencyMessage(task=task, subtask=name, latency=10.0,
                               iteration=1)
            )])
        assert agent.load() == pytest.approx((3 + 3 + 4) / 10.0)

    def test_act_without_data_broadcasts_price_unchanged(self, base_ts):
        bus = MessageBus()
        agent = ResourceAgent(base_ts, "r0", bus, initial_price=2.5)
        agent.act(1)
        assert agent.price == 2.5          # no latencies heard: no update
        assert bus.sent == 3               # one message per hosted task

    def test_congestion_bit_in_price_message(self, base_ts):
        bus = MessageBus()
        agent = ResourceAgent(base_ts, "r0", bus)
        for name, task in (("T11", "T1"), ("T21", "T2"), ("T31", "T3")):
            agent.receive([envelope(
                LatencyMessage(task=task, subtask=name, latency=2.0,
                               iteration=1)
            )])
        agent.act(1)
        assert agent.congested                # load = 10/2 = 5 >> 1
        delivered = bus.deliver("controller:T1")
        assert len(delivered) == 1
        assert delivered[0].payload.congested is True


class TestTaskControllerAgent:
    def test_initial_latencies_cover_task(self, base_ts):
        bus = MessageBus()
        controller = TaskControllerAgent(base_ts, base_ts.task("T1"), bus)
        assert set(controller.latencies) == set(
            base_ts.task("T1").subtask_names
        )

    def test_price_message_updates_view(self, base_ts):
        bus = MessageBus()
        controller = TaskControllerAgent(base_ts, base_ts.task("T1"), bus)
        controller.receive([envelope(
            PriceMessage(resource="r0", price=42.0, congested=True,
                         iteration=3)
        )])
        assert controller.resource_prices["r0"] == 42.0
        assert controller._congested_resources["r0"] is True

    def test_act_sends_one_latency_per_subtask(self, base_ts):
        bus = MessageBus()
        task = base_ts.task("T1")
        controller = TaskControllerAgent(base_ts, task, bus)
        controller.act(1)
        assert bus.sent == len(task.subtasks)
        delivered = bus.deliver("resource:r0")
        assert len(delivered) == 1
        assert delivered[0].payload.subtask == "T11"

    def test_congested_resource_doubles_its_paths_gamma(self, base_ts):
        bus = MessageBus()
        task = base_ts.task("T1")
        controller = TaskControllerAgent(base_ts, task, bus)
        controller.receive([envelope(
            PriceMessage(resource="r3", price=1.0, congested=True,
                         iteration=1)
        )])
        controller.act(1)
        via_r3 = [
            PathKey("T1", i) for i in task.graph.paths_through("T14")
        ]
        not_via_r3 = [
            key for key in controller.path_prices if key not in via_r3
        ]
        for key in via_r3:
            assert controller._path_gammas[key].value == 2.0
        for key in not_via_r3:
            assert controller._path_gammas[key].value == 1.0

    def test_paused_controller_is_silent(self, base_ts):
        bus = MessageBus()
        controller = TaskControllerAgent(base_ts, base_ts.task("T1"), bus)
        controller.paused = True
        before = dict(controller.latencies)
        controller.act(1)
        assert bus.sent == 0
        assert controller.latencies == before
