"""Tests for asynchronous agent activation."""

import pytest

from repro.distributed import (
    DistributedConfig,
    DistributedLLARuntime,
    EveryRound,
    PeriodicActivation,
    RandomActivation,
)
from repro.errors import DistributedError
from repro.workloads.paper import base_workload


class TestSchedules:
    def test_every_round(self):
        schedule = EveryRound()
        assert all(schedule.is_active("x", r) for r in range(10))

    def test_periodic_respects_period(self):
        schedule = PeriodicActivation(default_period=3)
        active = [r for r in range(12) if schedule.is_active("a", r)]
        assert len(active) == 4
        assert all(b - a == 3 for a, b in zip(active, active[1:]))

    def test_periodic_per_agent_override(self):
        schedule = PeriodicActivation(
            default_period=1, periods={"slow": 4}
        )
        assert all(schedule.is_active("fast", r) for r in range(8))
        slow_rounds = [r for r in range(16) if schedule.is_active("slow", r)]
        assert len(slow_rounds) == 4

    def test_random_activation_rate(self):
        schedule = RandomActivation(probability=0.3, seed=3)
        active = sum(
            1 for r in range(2000) if schedule.is_active("a", r)
        )
        assert active == pytest.approx(600, rel=0.15)

    def test_random_decision_stable_within_round(self):
        schedule = RandomActivation(probability=0.5, seed=1)
        first = schedule.is_active("a", 7)
        assert all(schedule.is_active("a", 7) == first for _ in range(5))

    def test_validation(self):
        with pytest.raises(DistributedError):
            PeriodicActivation(default_period=0)
        with pytest.raises(DistributedError):
            PeriodicActivation(periods={"a": 0})
        with pytest.raises(DistributedError):
            RandomActivation(probability=0.0)


class TestAsynchronousConvergence:
    def test_random_half_rate_converges(self):
        ts = base_workload()
        result = DistributedLLARuntime(
            ts,
            DistributedConfig(
                rounds=3000,
                activation=RandomActivation(probability=0.5, seed=1),
            ),
        ).run()
        assert ts.is_feasible(result.latencies, tol=1e-2)
        assert result.utility == pytest.approx(-79.7, abs=1.0)

    def test_heterogeneous_rates_converge(self):
        # A slow controller and a slow resource amid full-rate peers.
        ts = base_workload()
        result = DistributedLLARuntime(
            ts,
            DistributedConfig(
                rounds=3000,
                activation=PeriodicActivation(
                    default_period=1,
                    periods={"controller:T1": 3, "resource:r4": 2},
                ),
            ),
        ).run()
        assert ts.is_feasible(result.latencies, tol=1e-2)
        assert result.utility == pytest.approx(-79.7, abs=1.0)
