"""Tests for the distributed closed loop (message-passing LLA + simulator)."""

import pytest

from repro.distributed import (
    DistributedClosedLoop,
    DistributedConfig,
    DistributedLLARuntime,
    TaskControllerAgent,
)
from repro.errors import SimulationError
from repro.workloads.paper import (
    PROTOTYPE_FAST_MIN_SHARE,
    base_workload,
    prototype_workload,
)


@pytest.fixture(scope="module")
def lossy_loop():
    ts = prototype_workload()
    loop = DistributedClosedLoop(
        ts, window=1500.0, rounds_per_epoch=300, seed=7,
        runtime_config=DistributedConfig(
            record_history=False, loss_probability=0.05, seed=3
        ),
    )
    loop.run_epochs(3)
    loop.enable_correction()
    loop.run_epochs(18)
    return loop


class TestDistributedClosedLoop:
    def test_figure8_endpoint_over_lossy_bus(self, lossy_loop):
        final = lossy_loop.history[-1]
        assert final.shares["fast1_s0"] == pytest.approx(
            PROTOTYPE_FAST_MIN_SHARE, abs=0.01
        )
        assert final.shares["slow1_s0"] == pytest.approx(0.25, abs=0.01)

    def test_correction_flag_recorded(self, lossy_loop):
        assert not lossy_loop.history[0].correction_enabled
        assert lossy_loop.history[-1].correction_enabled

    def test_messages_flow_and_drop(self, lossy_loop):
        final = lossy_loop.history[-1]
        assert final.messages_sent > 0
        total_dropped = sum(r.messages_dropped for r in lossy_loop.history)
        assert total_dropped > 0   # the bus really is lossy

    def test_share_trace_shape(self, lossy_loop):
        trace = lossy_loop.share_trace("slow1_s0")
        assert len(trace) == len(lossy_loop.history)
        assert trace[-1] > trace[0]   # slow tasks gained the surplus

    def test_rejects_bad_window(self):
        with pytest.raises(SimulationError):
            DistributedClosedLoop(prototype_workload(), window=0.0,
                                  warmup_rounds=1)


class TestControllerRestart:
    def test_controller_crash_and_restart_reconverges(self):
        """A controller losing all state (crash) re-initializes its path
        prices and latencies; the protocol re-converges around it."""
        ts = base_workload()
        runtime = DistributedLLARuntime(
            ts, DistributedConfig(record_history=False)
        )
        for _ in range(1500):
            runtime.step()
        utility_before = ts.total_utility(runtime.global_latencies())

        # Crash: replace T1's controller with a fresh instance (λ = 0,
        # price view reset to the protocol's initial value).
        runtime.controllers["T1"] = TaskControllerAgent(
            ts, ts.task("T1"), runtime.bus
        )
        for _ in range(2000):
            runtime.step()
        latencies = runtime.global_latencies()
        assert ts.is_feasible(latencies, tol=1e-2)
        assert ts.total_utility(latencies) == pytest.approx(
            utility_before, abs=1.0
        )
