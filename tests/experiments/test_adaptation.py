"""Smoke tests for the adaptation drivers (small budgets)."""

import pytest

from repro.experiments.adaptation import (
    run_resource_variation,
    run_workload_variation,
)
from repro.workloads.paper import base_workload


class TestResourceVariation:
    def test_phases_progress(self):
        result = run_resource_variation(iterations_per_phase=1200)
        assert [p.label for p in result.phases] == \
            ["baseline", "degraded", "recovered"]
        assert result.baseline.feasible
        assert result.degraded.utility < result.baseline.utility

    def test_set_availability_visible_to_running_optimizer(self):
        ts = base_workload()
        assert ts.resources["r4"].availability == 1.0
        ts.set_availability("r4", 0.5)
        assert ts.resources["r4"].availability == 0.5
        # Loads are judged against the new availability immediately.
        lat = {n: 20.0 for n in ts.subtask_names}
        violations = ts.constraint_violations(lat)
        assert any("r4" in v for v in violations)

    def test_set_availability_unknown_resource(self):
        from repro.errors import ModelError
        ts = base_workload()
        with pytest.raises(ModelError):
            ts.set_availability("ghost", 0.5)


class TestWorkloadVariation:
    def test_warm_matches_cold(self):
        result = run_workload_variation(iterations_per_phase=1500)
        assert result.newcomer_absorbed()
        assert result.matches_cold_start(tol=2.0)
        assert result.after.utility > result.before.utility


class TestUndetectedInterference:
    def test_correction_defends_deadline(self):
        from repro.experiments.adaptation import run_undetected_interference

        result = run_undetected_interference(
            warmup_epochs=6, interference_epochs=8, window=1500.0
        )
        assert result.correction_reacted(), (
            f"error {result.fast_error_before:.1f} -> "
            f"{result.fast_error_during:.1f}, share "
            f"{result.fast_share_before:.3f} -> "
            f"{result.fast_share_during:.3f}"
        )
        assert result.adaptation_helps(), (
            f"adaptive p99 {result.fast_p99_adaptive:.1f} vs frozen "
            f"{result.fast_p99_frozen:.1f}"
        )

    def test_inject_interference_slows_service(self):
        from repro.sim.system import SimulatedSystem
        from repro.workloads.paper import prototype_workload

        ts = prototype_workload()
        shares = {n: 0.2 for n in ts.subtask_names}
        system = SimulatedSystem(ts, shares, seed=9)
        system.run_for(2000.0)
        clean = system.recorder.job_percentile("fast1_s0", 95)
        system.recorder.clear()
        for rname in ts.resources:
            system.inject_interference(rname, 0.5)
        system.run_for(2000.0)
        noisy = system.recorder.job_percentile("fast1_s0", 95)
        assert noisy > clean

    def test_inject_interference_validates_resource(self):
        import pytest as _pytest
        from repro.errors import SimulationError
        from repro.sim.system import SimulatedSystem
        from repro.workloads.paper import prototype_workload

        ts = prototype_workload()
        system = SimulatedSystem(ts, {n: 0.2 for n in ts.subtask_names})
        with _pytest.raises(SimulationError):
            system.inject_interference("ghost", 0.1)
