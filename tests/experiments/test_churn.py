"""Tests for the churn experiment (warm re-convergence vs cold restart)."""

import pytest

from repro.experiments.churn import SPEC, run_churn
from repro.harness import get_spec


@pytest.fixture(scope="module")
def report():
    # One reduced run shared by the whole module; parameters mirror the
    # spec's quick profile (the 1500-iteration horizon is load-bearing:
    # shorter cuts the cold baseline off before its loads drop under
    # capacity).
    return run_churn(cycles=1)


class TestRegistration:
    def test_spec_registered(self):
        assert get_spec("churn") is SPEC

    def test_quick_profile_keeps_horizon(self):
        assert SPEC.quick_params == {"cycles": 1}


class TestReport:
    def test_event_log_covers_the_cycle(self, report):
        kinds = [kind for kind, _ in report.events]
        assert "deregister" in kinds
        assert "register" in kinds
        assert "update" in kinds
        assert len(report.warm_rounds) == len(report.events)
        assert len(report.cold_rounds) == len(report.events)

    def test_warm_beats_cold(self, report):
        assert report.reconvergence_ratio <= 0.5
        assert report.warm_mean < report.cold_mean

    def test_same_optimum(self, report):
        assert report.final_utility_warm == pytest.approx(
            report.final_utility_cold,
            rel=0.01,
        )

    def test_epochs_stay_feasible(self, report):
        assert report.feasibility_violations == 0

    def test_cache_hits_on_oscillatory_churn(self, report):
        assert report.cache_hits >= 1

    def test_admission_probe_rejected(self, report):
        assert report.probe_rejected
        assert "infeasible" in report.probe_reason

    def test_to_dict_round_trips(self, report):
        payload = report.to_dict()
        assert payload["reconvergence_ratio"] == report.reconvergence_ratio
        assert payload["events"] == [list(e) for e in report.events]

    def test_checks_pass(self, report):
        for check in SPEC.checks:
            passed, measured = check.fn(report)
            assert passed, f"{check.name} failed (measured {measured!r})"
