"""Smoke tests for the experiment drivers (small budgets).

The full-budget reproduction assertions live in ``benchmarks/``; these
verify the drivers' plumbing — result shapes, traces, derived metrics —
at a fraction of the cost.
"""


from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.table1 import run_table1


class TestTable1Driver:
    def test_result_shape(self):
        result = run_table1(max_iterations=1200)
        assert result.converged
        assert len(result.latencies) == 21
        assert set(result.critical_paths) == {"T1", "T2", "T3"}
        margins = result.critical_path_margins()
        assert all(-0.01 <= m <= 0.05 for m in margins.values())

    def test_render(self):
        result = run_table1(max_iterations=1200)
        text = result.render()
        assert "TASK T1" in text and "Paper lat." in text


class TestFig5Driver:
    def test_series_and_lengths(self):
        result = run_fig5(iterations=60)
        assert set(result.series) == \
            {"gamma=0.1", "gamma=1", "gamma=10", "adaptive"}
        for series in result.series.values():
            assert len(series.utilities) == 60

    def test_metrics_computable(self):
        result = run_fig5(iterations=60)
        for series in result.series.values():
            assert series.tail_oscillation(window=20) >= 0.0
            series.settling_iteration()   # must not raise


class TestFig6Driver:
    def test_points(self):
        result = run_fig6(copies=(1, 2), iterations=80)
        assert set(result.points) == {3, 6}
        for point in result.points.values():
            assert len(point.utilities) == 80
            assert point.feasible

    def test_linearity_metric(self):
        result = run_fig6(copies=(1, 2, 4), iterations=80)
        assert 0.0 <= result.utility_linearity() <= 1.0


class TestFig7Driver:
    def test_equal_gamma_run(self):
        result = run_fig7(iterations=60)
        assert not result.feasible
        assert result.violates_constraints()
        assert set(result.share_sums) == {f"r{i}" for i in range(8)}
        assert len(result.utilities) == 60

    def test_steered_ray(self):
        result = run_fig7(iterations=60, path_gamma_divisor=500.0)
        assert result.max_critical_path_ratio > 1.0


class TestFig8Driver:
    def test_small_run_moves_shares(self):
        result = run_fig8(epochs_before=2, epochs_after=5, window=500.0)
        assert result.correction_epoch == 2
        assert len(result.fast_share_trace) == 7
        assert result.fast_share_after < result.fast_share_before
        assert result.slow_share_after > result.slow_share_before
        assert result.fast_error_trace[-1] < 0.0
