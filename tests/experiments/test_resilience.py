"""Tests for the resilience (chaos recovery) experiment driver."""

import pytest

from repro.experiments.resilience import (
    RECOVERY_BAND,
    ResilienceReport,
    blackout_plan,
    crash_restart_plan,
    run_scenario,
)


def make_report(**overrides):
    defaults = dict(
        scenario="test",
        rounds=100,
        fault_free_utility=100.0,
        final_utility=99.8,
        fault_start=40,
        repair_round=50,
        dip_depth=3.0,
        recovery_round=60,
        degraded_rounds=10,
        degraded_violations=0,
        crashes=1,
        messages_dropped=5,
    )
    defaults.update(overrides)
    return ResilienceReport(**defaults)


class TestReport:
    def test_recovery_time(self):
        assert make_report().recovery_time == 10
        assert make_report(recovery_round=None).recovery_time is None
        assert make_report(recovery_round=45).recovery_time == 0

    def test_recovered_band(self):
        assert make_report(final_utility=99.01).recovered()
        assert not make_report(final_utility=98.9).recovered()
        assert RECOVERY_BAND == 0.01

    def test_degradation_safe(self):
        assert make_report().degradation_safe()
        assert not make_report(degraded_violations=2).degradation_safe()

    def test_to_dict_traces_optional(self):
        report = make_report(utility_trace=[1.0], baseline_trace=[1.0])
        assert "utility_trace" not in report.to_dict()
        full = report.to_dict(include_traces=True)
        assert full["utility_trace"] == [1.0]
        assert full["recovered"] is True

    def test_summary_mentions_outcome(self):
        text = make_report().summary()
        assert "recovered: True" in text
        assert "recovery 10 rounds" in text


class TestPlans:
    def test_crash_restart_plan(self):
        plan = crash_restart_plan("resource:r1", crash_at=10, outage=5)
        (crash,) = plan.crashes
        assert crash.agent == "resource:r1"
        assert crash.at == 10
        assert crash.restart_at == 15
        assert crash.warm

    def test_blackout_plan_is_total(self):
        plan = blackout_plan(start=10, duration=5)
        (burst,) = plan.loss_bursts
        assert burst.probability == 1.0
        assert burst.end == 15


class TestRunScenario:
    @pytest.fixture(scope="class")
    def crash_report(self):
        return run_scenario(
            crash_restart_plan("resource:r0", crash_at=150, outage=30),
            scenario="crash",
            rounds=500,
            seed=0,
        )

    def test_crash_recovers(self, crash_report):
        assert crash_report.recovered()
        assert crash_report.degradation_safe()
        assert crash_report.degraded_rounds > 0
        assert crash_report.recovery_time is not None

    def test_fault_bounds(self, crash_report):
        assert crash_report.fault_start == 150
        assert crash_report.repair_round == 180
        assert crash_report.messages_dropped > 0

    def test_traces_cover_every_round(self, crash_report):
        assert len(crash_report.utility_trace) == 500
        assert len(crash_report.baseline_trace) == 500
        # Before the fault both trajectories are identical (same seed).
        assert (crash_report.utility_trace[:149]
                == crash_report.baseline_trace[:149])

    def test_deterministic(self, crash_report):
        again = run_scenario(
            crash_restart_plan("resource:r0", crash_at=150, outage=30),
            scenario="crash",
            rounds=500,
            seed=0,
        )
        assert again.utility_trace == crash_report.utility_trace
        assert again.dip_depth == crash_report.dip_depth
        assert again.recovery_round == crash_report.recovery_round

    def test_blackout_recovers(self):
        report = run_scenario(
            blackout_plan(start=150, duration=20),
            scenario="blackout",
            rounds=500,
            seed=0,
        )
        assert report.recovered()
        assert report.degradation_safe()
