"""Tests for the overload experiment (the hardened service under the
scripted storm/stall/corruption/outage schedule)."""

import pytest

from repro.errors import ServiceError
from repro.experiments.overload import SPEC, run_overload
from repro.harness import get_spec


@pytest.fixture(scope="module")
def report():
    # One quick-budget run shared by the whole module (the scenario
    # already executes twice internally for the determinism claim).
    return run_overload(ticks=110)


class TestRegistration:
    def test_spec_registered(self):
        assert get_spec("overload") is SPEC

    def test_quick_profile_still_covers_the_schedule(self):
        assert SPEC.quick_params["ticks"] >= 105

    def test_too_short_a_run_is_rejected(self):
        with pytest.raises(ServiceError):
            run_overload(ticks=50)


class TestReport:
    def test_availability_through_chaos(self, report):
        assert report.attempted_queries == report.tasks * report.ticks
        assert report.availability >= 0.99
        assert report.degraded_answers >= 1

    def test_degraded_entered_and_exited(self, report):
        assert report.degraded_entries >= 1
        assert report.degraded_exits >= 1
        assert not report.ends_degraded
        states = [state for _, state in report.transitions]
        assert states[0] == "degraded"
        assert states[-1] == "healthy"

    def test_queue_stays_bounded_with_sheds(self, report):
        assert report.queue_max_depth <= report.queue_capacity
        assert report.queue_shed >= 1
        assert report.queue_coalesced >= 1
        assert report.storm_rebuilds == 1

    def test_supervision_is_visible(self, report):
        assert report.supervisor_restarts >= 1
        assert report.retries >= 1
        assert report.breaker_opens >= 1
        assert report.breaker_state == "closed"
        assert report.snapshot_corruptions >= 1
        for kind in ("supervisor_restart", "retry", "breaker_open",
                     "service_degraded", "churn_storm", "loop_stall",
                     "snapshot_corrupt"):
            assert report.trace_events.get(kind, 0) >= 1, kind

    def test_arrivals_storm_shed_membership_unchanged(self, report):
        assert report.degraded_shed >= 1
        assert report.final_tasks == report.tasks
        assert report.final_feasible

    def test_deterministic_replay(self, report):
        assert report.deterministic

    def test_to_dict_round_trips(self, report):
        payload = report.to_dict()
        assert payload["availability"] == report.availability
        assert payload["transitions"] == [list(t)
                                          for t in report.transitions]
        assert payload["deterministic"] is True

    def test_checks_pass(self, report):
        for check in SPEC.checks:
            ok, measured = check.fn(report)
            assert ok, (check.name, measured)
