"""Suppression directive handling: justified, unjustified, malformed."""

import textwrap

import pytest

from repro.errors import StaticAnalysisError
from repro.statan import lint_source
from repro.statan.rules import get_rules

SCOPE = "repro/sim/clock.py"


def lint(source):
    return lint_source(textwrap.dedent(source), SCOPE)


class TestJustifiedSuppression:
    def test_same_line_directive_suppresses(self):
        result = lint("""\
            import time

            def stamp():
                return time.time()  # statan: disable=REP002 -- wall time wanted here
            """)
        assert result.ok
        assert [f.rule_id for f in result.suppressed] == ["REP002"]

    def test_multiple_ids_in_one_directive(self):
        result = lint("""\
            import time
            import random

            def sample():
                return time.time() + random.random()  # statan: disable=REP001,REP002 -- demo fixture
            """)
        assert result.ok
        assert sorted(f.rule_id for f in result.suppressed) == \
            ["REP001", "REP002"]

    def test_directive_on_other_line_does_not_apply(self):
        result = lint("""\
            import time

            # statan: disable=REP002 -- wrong line, must not apply below
            def stamp():
                return time.time()
            """)
        assert [f.rule_id for f in result.findings] == ["REP002"]


class TestBadDirectives:
    def test_unjustified_suppression_is_reported(self):
        result = lint("""\
            import time

            def stamp():
                return time.time()  # statan: disable=REP002
            """)
        ids = sorted(f.rule_id for f in result.findings)
        # The waiver is rejected AND the original finding stays live.
        assert ids == ["REP002", "STA002"]
        assert result.suppressed == []

    def test_malformed_directive_is_reported(self):
        result = lint("""\
            def fine():
                return 1  # statan: enable=REP002 -- no such verb
            """)
        assert [f.rule_id for f in result.findings] == ["STA001"]

    def test_empty_id_list_is_malformed(self):
        result = lint("""\
            def fine():
                return 1  # statan: disable= -- nothing named
            """)
        assert [f.rule_id for f in result.findings] == ["STA001"]

    def test_directive_for_other_rule_does_not_hide(self):
        result = lint("""\
            import time

            def stamp():
                return time.time()  # statan: disable=REP001 -- wrong rule id
            """)
        assert [f.rule_id for f in result.findings] == ["REP002"]


class TestRuleSelection:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(StaticAnalysisError):
            get_rules(["REP999"])

    def test_selection_limits_catalog(self):
        rules = get_rules(["REP002"])
        assert [r.rule_id for r in rules] == ["REP002"]
