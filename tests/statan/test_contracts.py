"""REP014–REP015: cross-module telemetry name resolution and config
field validation coverage."""

from repro.statan import lint_paths

from tests.statan.test_asyncsafety import write_project


def findings_for(tmp_path, files, select):
    root = write_project(tmp_path, files)
    result, _ = lint_paths([root], select=select)
    return result


class TestUnresolvedTelemetryName:
    def test_resolved_metric_read_is_clean(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/emit.py": """
                def setup(telemetry):
                    return telemetry.registry.counter(
                        "service.queries_total")
                """,
            "analysis/read.py": """
                def read(registry):
                    return registry.get("service.queries_total")
                """,
        }, ["REP014"])
        assert result.ok

    def test_typo_read_gets_did_you_mean_hint(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/emit.py": """
                def setup(telemetry):
                    return telemetry.registry.counter(
                        "service.queries_total")
                """,
            "analysis/read.py": """
                def read(registry):
                    return registry.get("service.query_total")
                """,
        }, ["REP014"])
        (finding,) = result.findings
        assert finding.rule_id == "REP014"
        assert finding.relpath.endswith("analysis/read.py")
        assert "did you mean `service.queries_total`" in finding.message

    def test_unemitted_trace_kind_is_flagged(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/emit.py": """
                def setup(telemetry):
                    telemetry.tracer.emit("tick", n=1)
                """,
            "analysis/read.py": """
                def read(sink):
                    return sink.of_kind("tock")
                """,
        }, ["REP014"])
        (finding,) = result.findings
        assert "`tock`" in finding.message

    def test_kind_conflict_between_modules_is_flagged(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/a.py": """
                def setup(telemetry):
                    return telemetry.registry.counter("service.depth")
                """,
            "service/b.py": """
                def setup(telemetry):
                    return telemetry.registry.gauge("service.depth")
                """,
        }, ["REP014"])
        (finding,) = result.findings
        assert "counter" in finding.message
        assert "gauge" in finding.message


class TestConfigFieldUnchecked:
    def test_unreferenced_scalar_field_is_flagged(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/cfg.py": """
                from dataclasses import dataclass

                @dataclass
                class TickConfig:
                    interval: int = 10
                    seed: int = 0

                    def __post_init__(self):
                        if self.interval < 1:
                            raise ValueError("bad interval")
                """,
        }, ["REP015"])
        (finding,) = result.findings
        assert finding.rule_id == "REP015"
        assert "`seed`" in finding.message

    def test_optional_and_bool_fields_are_exempt(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/cfg.py": """
                from dataclasses import dataclass
                from typing import Optional

                @dataclass
                class TickConfig:
                    interval: int = 10
                    label: Optional[str] = None
                    strict: bool = False

                    def __post_init__(self):
                        if self.interval < 1:
                            raise ValueError("bad interval")
                """,
        }, ["REP015"])
        assert result.ok

    def test_config_without_post_init_is_rep008s_problem(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/cfg.py": """
                from dataclasses import dataclass

                @dataclass
                class TickConfig:
                    interval: int = 10
                """,
        }, ["REP015"])
        assert result.ok

    def test_out_of_scope_configs_are_ignored(self, tmp_path):
        result = findings_for(tmp_path, {
            "workloads/cfg.py": """
                from dataclasses import dataclass

                @dataclass
                class SweepConfig:
                    points: int = 5

                    def __post_init__(self):
                        pass
                """,
        }, ["REP015"])
        assert result.ok
