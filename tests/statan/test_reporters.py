"""Reporter output: text, JSON, and SARIF 2.1.0."""

import json
import textwrap

import pytest

from repro.errors import StaticAnalysisError
from repro.statan import ALL_RULES, lint_source
from repro.statan.reporters import render, render_json, render_sarif, render_text

FIXTURE = textwrap.dedent("""\
    import time

    def stamp():
        return time.time()
    """)


@pytest.fixture()
def result():
    return lint_source(FIXTURE, "repro/sim/clock.py")


class TestTextReport:
    def test_lists_findings_and_summary(self, result):
        text = render_text(result, ["repro/sim/clock.py"])
        assert "REP002" in text
        assert "1 finding(s) in 1 file(s); 0 suppressed" in text

    def test_render_location_is_clickable(self, result):
        line = result.findings[0].render()
        # path:line:col prefix, 1-based column.
        assert line.startswith("repro/sim/clock.py:4:")


class TestJsonReport:
    def test_payload_round_trips(self, result):
        payload = json.loads(render_json(result, ["repro/sim/clock.py"]))
        assert payload["tool"] == "repro.statan"
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP002"
        assert finding["line"] == 4
        assert finding["severity"] == "error"
        assert payload["suppressed"] == []


class TestSarifReport:
    def test_sarif_2_1_0_shape(self, result):
        sarif = json.loads(render_sarif(result, ["repro/sim/clock.py"]))
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro.statan"
        (sarif_result,) = run["results"]
        assert sarif_result["ruleId"] == "REP002"
        region = sarif_result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 4
        assert region["startColumn"] >= 1

    def test_full_rule_catalog_is_described(self, result):
        sarif = json.loads(render_sarif(result, []))
        described = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        assert described == {rule.rule_id for rule in ALL_RULES}
        assert all(
            r["fullDescription"]["text"]
            for r in sarif["runs"][0]["tool"]["driver"]["rules"]
        )

    def test_rules_carry_help_uri_and_short_description(self, result):
        sarif = json.loads(render_sarif(result, []))
        for rule in sarif["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["helpUri"].endswith(f"#{rule['id'].lower()}")
            assert rule["shortDescription"]["text"]

    def test_results_carry_partial_fingerprints(self, tmp_path):
        # Fingerprints are assigned by lint_paths (the whole-file pass);
        # SARIF then exposes them for alert dedup across runs.
        from repro.statan import lint_paths

        target = tmp_path / "repro" / "sim" / "clock.py"
        target.parent.mkdir(parents=True)
        target.write_text(FIXTURE)
        result, files = lint_paths([str(tmp_path / "repro")])
        sarif = json.loads(render_sarif(result, files))
        (sarif_result,) = sarif["runs"][0]["results"]
        fingerprint = sarif_result["partialFingerprints"][
            "primaryLocationLineHash"]
        assert fingerprint == result.findings[0].data["fingerprint"]


class TestDispatch:
    def test_unknown_format_raises(self, result):
        with pytest.raises(StaticAnalysisError):
            render(result, [], "xml")
