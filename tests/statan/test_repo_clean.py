"""The gate's integration contract: the shipped tree lints clean."""

import os

from repro.statan import ALL_RULES, lint_paths
from repro.statan.baseline import load_baseline

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        result, files = lint_paths([os.path.join(REPO_ROOT, "src")])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files_checked == len(files) > 0

    def test_every_suppression_in_tree_is_justified(self):
        result, _ = lint_paths([os.path.join(REPO_ROOT, "src")])
        assert not any(
            f.rule_id in ("STA001", "STA002") for f in result.findings
        )

    def test_full_tree_is_clean_modulo_committed_baseline(self):
        """The CI gate contract: src + tests + benchmarks exit clean with
        the committed baseline — every finding is either inline-suppressed
        or a baselined pre-existing one, and none live under src/."""
        baseline = load_baseline(
            os.path.join(REPO_ROOT, "statan-baseline.json"))
        result, _ = lint_paths(
            [os.path.join(REPO_ROOT, p)
             for p in ("src", "tests", "benchmarks")],
            baseline=baseline,
        )
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert not any(
            f.relpath.startswith("repro/") for f in result.baselined
        ), "baselined findings must not hide src/ regressions"


class TestCatalog:
    def test_rule_ids_are_unique_and_sorted(self):
        ids = [rule.rule_id for rule in ALL_RULES]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_expected_rules_are_registered(self):
        ids = {rule.rule_id for rule in ALL_RULES}
        expected = {f"REP00{i}" for i in range(1, 10)}
        expected |= {"REP010", "REP011", "REP012", "REP013", "REP014",
                     "REP015", "REP016"}
        assert expected <= ids

    def test_project_rules_are_flagged_as_such(self):
        by_id = {rule.rule_id: rule for rule in ALL_RULES}
        for rule_id in ("REP011", "REP014", "REP015"):
            assert by_id[rule_id].is_project_rule
        for rule_id in ("REP001", "REP008", "REP012", "REP013", "REP016"):
            assert not by_id[rule_id].is_project_rule

    def test_every_rule_carries_rationale(self):
        for rule in ALL_RULES:
            assert rule.rule_id and rule.name and rule.rationale
