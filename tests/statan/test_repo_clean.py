"""The gate's integration contract: the shipped tree lints clean."""

import os

from repro.statan import ALL_RULES, lint_paths

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        result, files = lint_paths([os.path.join(REPO_ROOT, "src")])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files_checked == len(files) > 0

    def test_every_suppression_in_tree_is_justified(self):
        result, _ = lint_paths([os.path.join(REPO_ROOT, "src")])
        assert not any(
            f.rule_id in ("STA001", "STA002") for f in result.findings
        )


class TestCatalog:
    def test_rule_ids_are_unique_and_sorted(self):
        ids = [rule.rule_id for rule in ALL_RULES]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_expected_rules_are_registered(self):
        ids = {rule.rule_id for rule in ALL_RULES}
        assert {f"REP00{i}" for i in range(1, 10)} <= ids

    def test_every_rule_carries_rationale(self):
        for rule in ALL_RULES:
            assert rule.rule_id and rule.name and rule.rationale
