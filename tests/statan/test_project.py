"""The whole-program index (pass 2): call graph, blocking reachability,
telemetry inventory, config-field extraction."""

import ast
import textwrap

from repro.statan.project import (
    ModuleIndex,
    ProjectIndex,
    build_module_index,
    module_name_for,
)


def index_of(source, relpath):
    tree = ast.parse(textwrap.dedent(source))
    return build_module_index(tree, relpath, relpath)


def project(*modules):
    return ProjectIndex([index_of(src, rel) for rel, src in modules])


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_for("repro/service/supervisor.py") == \
            "repro.service.supervisor"

    def test_package_init_collapses(self):
        assert module_name_for("repro/service/__init__.py") == \
            "repro.service"


class TestModuleIndex:
    def test_collects_functions_methods_and_blocking_sites(self):
        mod = index_of(
            """
            import time

            def helper():
                time.sleep(1)

            class Loop:
                async def run(self):
                    self.tick()

                def tick(self):
                    helper()
            """,
            "repro/service/loop.py",
        )
        assert set(mod.functions) == {"helper", "Loop.run", "Loop.tick"}
        helper = mod.functions["helper"]
        assert [site.symbol for site in helper.blocking] == ["time.sleep"]
        assert mod.functions["Loop.run"].is_async

    def test_round_trips_through_dict(self):
        mod = index_of(
            """
            class C:
                def __init__(self):
                    self.x = 1

                def m(self):
                    return open("f")
            """,
            "repro/service/c.py",
        )
        clone = ModuleIndex.from_dict(mod.to_dict())
        assert clone.module == mod.module
        assert set(clone.functions) == set(mod.functions)
        blocking = [s.symbol for f in clone.functions.values()
                    for s in f.blocking]
        assert blocking == ["open"]


class TestBlockingReachability:
    def test_direct_blocking_in_async(self):
        idx = project((
            "repro/service/a.py",
            """
            import time

            class S:
                async def run(self):
                    time.sleep(5)
            """,
        ))
        ((mod, fn),) = idx.async_functions()
        reachable = idx.blocking_reachable(mod.module, fn.qualname)
        assert [entry[0].symbol for entry in reachable.values()] == \
            ["time.sleep"]

    def test_chain_through_attribute_type_across_modules(self):
        idx = project(
            (
                "repro/distributed/store.py",
                """
                class Store:
                    def save(self):
                        with open("f", "w") as fh:
                            fh.write("x")
                """,
            ),
            (
                "repro/service/loop.py",
                """
                from repro.distributed.store import Store

                class Loop:
                    def __init__(self):
                        self.store = Store()

                    async def run(self):
                        self.snapshot()

                    def snapshot(self):
                        self.store.save()
                """,
            ),
        )
        ((mod, fn),) = idx.async_functions()
        reachable = idx.blocking_reachable(mod.module, fn.qualname)
        ((site, owner, chain),) = reachable.values()
        assert site.symbol == "open"
        assert owner == "repro.distributed.store"
        assert chain[-1] == "store.Store.save"

    def test_to_thread_reference_is_exempt(self):
        idx = project((
            "repro/service/a.py",
            """
            import asyncio

            class S:
                async def run(self):
                    await asyncio.to_thread(self._snapshot)

                def _snapshot(self):
                    with open("f", "w") as fh:
                        fh.write("x")
            """,
        ))
        ((mod, fn),) = idx.async_functions()
        assert idx.blocking_reachable(mod.module, fn.qualname) == {}

    def test_run_in_executor_selfattr_reference_is_exempt(self):
        # `self.loop.run_in_executor(...)` resolves with callee kind
        # "selfattr", not "name" — the offload exemption must apply to
        # it too, or the offloaded callable produces a false REP011.
        idx = project((
            "repro/service/a.py",
            """
            class S:
                def __init__(self):
                    self.loop = None

                async def run(self):
                    await self.loop.run_in_executor(None, self._snapshot)

                def _snapshot(self):
                    with open("f", "w") as fh:
                        fh.write("x")
            """,
        ))
        ((mod, fn),) = idx.async_functions()
        assert idx.blocking_reachable(mod.module, fn.qualname) == {}

    def test_shadowed_open_is_not_blocking(self):
        idx = project((
            "repro/service/a.py",
            """
            class S:
                async def run(self):
                    open = self.cache_get
                    open("key")

                def cache_get(self, key):
                    return key
            """,
        ))
        ((mod, fn),) = idx.async_functions()
        assert idx.blocking_reachable(mod.module, fn.qualname) == {}


class TestTelemetryInventory:
    def test_metric_defs_and_reads_collected(self):
        idx = project(
            (
                "repro/service/emit.py",
                """
                class S:
                    def setup(self, telemetry):
                        self.queries = telemetry.registry.counter(
                            "service.queries_total")
                        telemetry.tracer.emit("tick", n=1)
                """,
            ),
            (
                "repro/analysis/read.py",
                """
                def read(registry, sink):
                    registry.get("service.queries_total")
                    sink.of_kind("tick")
                """,
            ),
        )
        assert "service.queries_total" in idx.metric_names()
        assert "tick" in idx.event_kinds()
        reads = [r.name
                 for m in idx.modules.values() for r in m.metric_reads]
        assert reads == ["service.queries_total"]

    def test_dict_get_on_non_registry_is_ignored(self):
        mod = index_of(
            """
            def f(mapping):
                return mapping.get("some.key")
            """,
            "repro/analysis/m.py",
        )
        assert mod.metric_reads == []


class TestConfigExtraction:
    def test_post_init_refs_and_optionals(self):
        mod = index_of(
            """
            from dataclasses import dataclass
            from typing import Optional

            @dataclass
            class TickConfig:
                interval: int = 10
                label: str = "x"
                retry: Optional[int] = None

                def __post_init__(self):
                    if self.interval < 1:
                        raise ValueError("bad interval")
            """,
            "repro/service/cfg.py",
        )
        (config,) = mod.configs
        assert config.cls == "TickConfig"
        assert config.has_post_init
        assert "interval" in config.post_init_refs
        by_name = {f.name: f for f in config.fields}
        assert not by_name["interval"].optional
        assert by_name["retry"].optional

    def test_non_config_dataclass_is_ignored(self):
        mod = index_of(
            """
            from dataclasses import dataclass

            @dataclass
            class Point:
                x: int = 0
            """,
            "repro/model/p.py",
        )
        assert mod.configs == []
