"""Fixture tests: one positive and one negative snippet per rule."""

import textwrap

from repro.statan import lint_source
from repro.statan.rules import get_rules


def run_rule(rule_id, source, relpath):
    result = lint_source(
        textwrap.dedent(source), relpath, rules=get_rules([rule_id])
    )
    return [f for f in result.findings if f.rule_id == rule_id]


class TestUnseededRandomness:
    def test_flags_stdlib_random(self):
        findings = run_rule("REP001", """\
            import random

            def jitter():
                return random.random()
            """, "repro/distributed/network.py")
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_flags_numpy_global_random(self):
        findings = run_rule("REP001", """\
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """, "repro/core/allocation.py")
        assert len(findings) == 1

    def test_allows_seeded_generator(self):
        findings = run_rule("REP001", """\
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
            """, "repro/workloads/generator.py")
        assert findings == []

    def test_out_of_scope_path_is_ignored(self):
        findings = run_rule("REP001", """\
            import random

            def jitter():
                return random.random()
            """, "repro/analysis/reporting.py")
        assert findings == []


class TestWallClock:
    def test_flags_time_time(self):
        findings = run_rule("REP002", """\
            import time

            def stamp():
                return time.time()
            """, "repro/sim/engine.py")
        assert len(findings) == 1

    def test_flags_datetime_now(self):
        findings = run_rule("REP002", """\
            import datetime

            def today():
                return datetime.datetime.now()
            """, "repro/distributed/runtime.py")
        assert len(findings) == 1

    def test_allows_perf_counter_interval(self):
        findings = run_rule("REP002", """\
            import time

            def measure():
                start = time.perf_counter()
                return time.perf_counter() - start
            """, "repro/sim/engine.py")
        assert findings == []


class TestSwallowedException:
    def test_flags_silent_broad_handler(self):
        findings = run_rule("REP003", """\
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
            """, "repro/sim/system.py")
        assert len(findings) == 1

    def test_allows_logged_and_reraised(self):
        findings = run_rule("REP003", """\
            import logging

            logger = logging.getLogger(__name__)

            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    logger.exception("load failed")
                    raise
            """, "repro/sim/system.py")
        assert findings == []

    def test_narrow_handler_is_fine(self):
        findings = run_rule("REP003", """\
            def load(path):
                try:
                    return open(path).read()
                except FileNotFoundError:
                    return None
            """, "repro/sim/system.py")
        assert findings == []


class TestCrossAgentAccess:
    def test_flags_registry_lookup_attribute(self):
        findings = run_rule("REP004", """\
            class TaskAgent:
                def handle(self, bus):
                    other = bus.agents["r0"]
                    return other.price
            """, "repro/distributed/agents.py")
        assert len(findings) == 1
        assert "other" in findings[0].message

    def test_flags_direct_chained_access(self):
        findings = run_rule("REP004", """\
            class ResourceAgent:
                def poke(self):
                    return self.bus.agents["t0"].latency
            """, "repro/distributed/agents.py")
        assert len(findings) == 1

    def test_flags_write_through_foreign_param(self):
        findings = run_rule("REP004", """\
            class TaskAgent:
                def push(self, neighbor):
                    neighbor.price = 1.0
            """, "repro/distributed/agents.py")
        assert len(findings) == 1

    def test_allows_self_state_and_payloads(self):
        findings = run_rule("REP004", """\
            class TaskAgent:
                def handle(self, message):
                    self.price = message.price
                    self.round += 1
            """, "repro/distributed/agents.py")
        assert findings == []

    def test_non_agent_class_is_ignored(self):
        findings = run_rule("REP004", """\
            class Router:
                def handle(self, bus):
                    return bus.agents["r0"].price
            """, "repro/distributed/network.py")
        assert findings == []


class TestFloatEquality:
    def test_flags_computed_comparison(self):
        findings = run_rule("REP005", """\
            def converged(a, b):
                return (a - b) == 0.0
            """, "repro/core/convergence.py")
        assert len(findings) == 1

    def test_allows_sentinel_and_tolerance(self):
        findings = run_rule("REP005", """\
            def check(err, a, b):
                if err != 0.0:
                    return abs(a - b) <= 1e-9
                return True
            """, "repro/core/convergence.py")
        assert findings == []


class TestMutableDefault:
    def test_flags_list_literal_default(self):
        findings = run_rule("REP006", """\
            def collect(items=[]):
                return items
            """, "repro/analysis/reporting.py")
        assert len(findings) == 1

    def test_flags_dict_call_default(self):
        findings = run_rule("REP006", """\
            def collect(table=dict()):
                return table
            """, "repro/experiments/fig8.py")
        assert len(findings) == 1

    def test_allows_none_default(self):
        findings = run_rule("REP006", """\
            def collect(items=None):
                return items or []
            """, "repro/analysis/reporting.py")
        assert findings == []


class TestAdHocTelemetry:
    def test_flags_direct_tracer_construction(self):
        findings = run_rule("REP007", """\
            from repro.telemetry.tracing import Tracer

            def make():
                return Tracer()
            """, "repro/core/optimizer.py")
        assert len(findings) == 1

    def test_hub_itself_is_exempt(self):
        findings = run_rule("REP007", """\
            from repro.telemetry.tracing import Tracer

            def make():
                return Tracer()
            """, "repro/telemetry/hub.py")
        assert findings == []

    def test_facade_usage_is_fine(self):
        findings = run_rule("REP007", """\
            from repro.telemetry import Telemetry

            def make():
                return Telemetry.in_memory()
            """, "repro/core/optimizer.py")
        assert findings == []

    def test_local_class_of_same_name_is_fine(self):
        findings = run_rule("REP007", """\
            class Tracer:
                pass

            def make():
                return Tracer()
            """, "repro/sim/system.py")
        assert findings == []


class TestConfigValidation:
    def test_flags_config_without_post_init(self):
        findings = run_rule("REP008", """\
            from dataclasses import dataclass

            @dataclass
            class RunConfig:
                rounds: int = 1
            """, "repro/experiments/fig7.py")
        assert len(findings) == 1
        assert "RunConfig" in findings[0].message

    def test_allows_validating_config(self):
        findings = run_rule("REP008", """\
            from dataclasses import dataclass

            @dataclass
            class RunConfig:
                rounds: int = 1

                def __post_init__(self):
                    if self.rounds < 1:
                        raise ValueError("rounds must be >= 1")
            """, "repro/experiments/fig7.py")
        assert findings == []

    def test_private_config_is_exempt(self):
        findings = run_rule("REP008", """\
            from dataclasses import dataclass

            @dataclass
            class _ScratchConfig:
                rounds: int = 1
            """, "repro/experiments/fig7.py")
        assert findings == []


class TestUnregisteredExperiment:
    def test_flags_main_without_register(self):
        findings = run_rule("REP009", """\
            def run_fig9():
                return 42

            def main():
                print(run_fig9())
            """, "repro/experiments/fig9.py")
        assert len(findings) == 1
        assert "ExperimentSpec" in findings[0].message

    def test_allows_registered_driver(self):
        findings = run_rule("REP009", """\
            from repro.harness import ExperimentSpec, register

            def run_fig9():
                return 42

            SPEC = register(ExperimentSpec(
                name="fig9", description="x", runner=run_fig9,
            ))

            def main():
                print(run_fig9())
            """, "repro/experiments/fig9.py")
        assert findings == []

    def test_allows_helper_module_without_main(self):
        findings = run_rule("REP009", """\
            def shared_helper():
                return 1
            """, "repro/experiments/_common.py")
        assert findings == []

    def test_out_of_scope_path_is_ignored(self):
        findings = run_rule("REP009", """\
            def main():
                return 1
            """, "repro/analysis/reporting.py")
        assert findings == []


class TestEngineBasics:
    def test_syntax_error_reports_sta000(self):
        result = lint_source("def broken(:\n", "repro/core/x.py")
        assert [f.rule_id for f in result.findings] == ["STA000"]

    def test_clean_file_is_ok(self):
        result = lint_source(
            "def fine():\n    return 1\n", "repro/core/x.py"
        )
        assert result.ok
        assert result.files_checked == 1


class TestSpanMisuse:
    def test_flags_unscoped_start_span(self):
        findings = run_rule("REP010", """\
            def work(telemetry):
                span = telemetry.spans.start_span("act", agent="r0")
                return span
            """, "repro/distributed/runtime.py")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_flags_non_literal_emit_kind(self):
        findings = run_rule("REP010", """\
            def emit_all(tracer, kind):
                tracer.emit(kind, value=1)
            """, "repro/sim/closedloop.py")
        assert len(findings) == 1

    def test_flags_computed_emit_kind_on_facade(self):
        findings = run_rule("REP010", """\
            def emit(telemetry, ok):
                telemetry.tracer.emit("good" if ok else "bad", value=1)
            """, "repro/core/optimizer.py")
        assert len(findings) == 1

    def test_allows_with_scoped_start_span(self):
        findings = run_rule("REP010", """\
            def work(telemetry):
                with telemetry.spans.start_span("act", agent="r0") as span:
                    return span.context
            """, "repro/distributed/runtime.py")
        assert findings == []

    def test_allows_open_end_pair_and_literal_emit(self):
        findings = run_rule("REP010", """\
            def send(telemetry, parent):
                ctx = telemetry.spans.open_span("message", parent=parent)
                telemetry.tracer.emit("send", round=1)
                telemetry.spans.end_span(ctx, status="ok")
            """, "repro/distributed/network.py")
        assert findings == []

    def test_ignores_non_tracer_emit(self):
        findings = run_rule("REP010", """\
            def fanout(sink, event):
                sink.emit(event)
            """, "repro/telemetry/tracing.py")
        assert findings == []


class TestStructureBypass:
    def test_flags_taskset_traversal_in_core(self):
        findings = run_rule("REP016", """\
            def observe(taskset, latencies):
                return taskset.resource_loads(latencies)
            """, "repro/core/observers.py")
        assert len(findings) == 1
        assert findings[0].data["api"] == "resource_loads"

    def test_flags_task_level_traversal_in_service(self):
        findings = run_rule("REP016", """\
            def describe(task, latencies):
                agg = task.aggregated_latency(latencies)
                return agg, task.utility_value(latencies)
            """, "repro/service/service.py")
        assert len(findings) == 2

    def test_flags_graph_walk_in_distributed(self):
        findings = run_rule("REP016", """\
            def worst(task, latencies):
                return task.graph.path_latency(task.graph.paths[0], latencies)
            """, "repro/distributed/runtime.py")
        assert len(findings) == 1

    def test_allows_structure_observers(self):
        findings = run_rule("REP016", """\
            from repro.core.vectorized import compute_loads, observe_assignment

            def observe(structure, latencies):
                obs = observe_assignment(structure, latencies)
                return obs.utility, compute_loads(structure, obs.lat)
            """, "repro/core/observers.py")
        assert findings == []

    def test_out_of_scope_path_is_ignored(self):
        findings = run_rule("REP016", """\
            def summarize(taskset, latencies):
                return taskset.total_utility(latencies)
            """, "repro/experiments/fig5.py")
        assert findings == []

    def test_suppression_with_reason_is_honored(self):
        result = lint_source(
            "def check(taskset, lat):\n"
            "    return taskset.is_feasible(lat)"
            "  # statan: disable=REP016 -- scalar fallback\n",
            "repro/core/convergence.py",
            rules=get_rules(["REP016"]),
        )
        assert [f for f in result.findings if f.rule_id == "REP016"] == []
        assert len(result.suppressed) == 1
