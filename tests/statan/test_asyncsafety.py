"""REP011–REP013: blocking-in-async, await-straddled RMW, unawaited
coroutines."""

import textwrap

from repro.statan import lint_paths, lint_source


def write_project(tmp_path, files):
    root = tmp_path / "repro"
    for relpath, source in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return str(root)


def findings_for(tmp_path, files, select):
    root = write_project(tmp_path, files)
    result, _ = lint_paths([root], select=select)
    return result


class TestBlockingInAsync:
    def test_cross_module_chain_is_reported_at_the_blocking_site(
            self, tmp_path):
        result = findings_for(tmp_path, {
            "distributed/store.py": """
                class Store:
                    def save(self):
                        with open("f", "w") as fh:
                            fh.write("x")
                """,
            "service/loop.py": """
                from repro.distributed.store import Store

                class Loop:
                    def __init__(self):
                        self.store = Store()

                    async def run(self):
                        self.snapshot()

                    def snapshot(self):
                        self.store.save()
                """,
        }, ["REP011"])
        (finding,) = result.findings
        assert finding.rule_id == "REP011"
        assert finding.relpath.endswith("distributed/store.py")
        assert "async def Loop.run" in finding.message
        assert "Store.save" in finding.message

    def test_to_thread_offload_is_clean(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/loop.py": """
                import asyncio

                class Loop:
                    async def run(self):
                        await asyncio.to_thread(self.snapshot)

                    def snapshot(self):
                        with open("f", "w") as fh:
                            fh.write("x")
                """,
        }, ["REP011"])
        assert result.ok

    def test_inline_suppression_applies_to_project_findings(
            self, tmp_path):
        result = findings_for(tmp_path, {
            "service/loop.py": """
                import time

                class Loop:
                    async def run(self):
                        time.sleep(1)  # statan: disable=REP011 -- test rig
                """,
        }, ["REP011"])
        assert result.ok
        (suppressed,) = result.suppressed
        assert suppressed.rule_id == "REP011"

    def test_sync_only_callers_are_clean(self, tmp_path):
        result = findings_for(tmp_path, {
            "service/loop.py": """
                class Loop:
                    def run(self):
                        with open("f") as fh:
                            return fh.read()
                """,
        }, ["REP011"])
        assert result.ok


class TestAwaitStraddledMutation:
    def check(self, source):
        return lint_source(textwrap.dedent(source),
                           "repro/service/x.py").findings

    def test_flags_rmw_across_await(self):
        findings = self.check("""
            class S:
                async def bump(self):
                    count = self.count
                    await self.flush()
                    self.count = count + 1
            """)
        (finding,) = [f for f in findings if f.rule_id == "REP012"]
        assert "self.count" in finding.message

    def test_flags_augassign_with_await_on_rhs(self):
        findings = self.check("""
            class S:
                async def bump(self):
                    self.total += await self.fetch()
            """)
        assert [f.rule_id for f in findings] == ["REP012"]

    def test_rmw_without_await_is_clean(self):
        findings = self.check("""
            class S:
                async def bump(self):
                    count = self.count
                    self.count = count + 1
                    await self.flush()
            """)
        assert [f.rule_id for f in findings if f.rule_id == "REP012"] == []

    def test_flag_check_and_set_without_await_is_clean(self):
        # The AllocationService._running pattern: read and set with no
        # suspension in between is atomic under cooperative scheduling.
        findings = self.check("""
            class S:
                async def run(self):
                    if self.running:
                        return
                    self.running = True
                    try:
                        await self.loop()
                    finally:
                        self.running = False
            """)
        assert [f.rule_id for f in findings if f.rule_id == "REP012"] == []

    def test_fresh_read_after_await_is_clean(self):
        findings = self.check("""
            class S:
                async def bump(self):
                    await self.flush()
                    count = self.count
                    self.count = count + 1
            """)
        assert [f.rule_id for f in findings if f.rule_id == "REP012"] == []

    def test_loop_wraparound_rmw_is_flagged(self):
        findings = self.check("""
            class S:
                async def pump(self):
                    while True:
                        staged = self.pending
                        await self.send(staged)
                        self.pending = staged[1:]
            """)
        assert [f.rule_id for f in findings] == ["REP012"]


class TestUnawaitedCoroutine:
    def check(self, source):
        return lint_source(textwrap.dedent(source),
                           "repro/service/x.py").findings

    def test_bare_create_task_is_flagged(self):
        findings = self.check("""
            import asyncio

            class S:
                async def start(self):
                    asyncio.create_task(self.pump())

                async def pump(self):
                    pass
            """)
        assert [f.rule_id for f in findings] == ["REP013"]

    def test_retained_task_handle_is_clean(self):
        findings = self.check("""
            import asyncio

            class S:
                async def start(self):
                    self._task = asyncio.create_task(self.pump())

                async def pump(self):
                    pass
            """)
        assert [f.rule_id for f in findings if f.rule_id == "REP013"] == []

    def test_unawaited_self_coroutine_is_flagged(self):
        findings = self.check("""
            class S:
                async def start(self):
                    self.pump()

                async def pump(self):
                    pass
            """)
        (finding,) = [f for f in findings if f.rule_id == "REP013"]
        assert "self.pump" in finding.message

    def test_awaited_coroutine_is_clean(self):
        findings = self.check("""
            class S:
                async def start(self):
                    await self.pump()

                async def pump(self):
                    pass
            """)
        assert [f.rule_id for f in findings if f.rule_id == "REP013"] == []
