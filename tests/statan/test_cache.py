"""The incremental cache: hits, invalidation, and advisory failure."""

from repro.statan import lint_paths
from repro.statan.cache import AnalysisCache, rules_salt, source_digest
from repro.statan.rules import ALL_RULES

from tests.statan.test_asyncsafety import write_project

SOURCE = """
    import time

    def stamp():
        return time.time()
    """


class TestEngineIntegration:
    def test_second_run_hits_and_agrees(self, tmp_path):
        root = write_project(tmp_path, {"sim/clock.py": SOURCE})
        cache_path = str(tmp_path / "cache.json")
        cold, _ = lint_paths([root], cache_path=cache_path)
        warm, _ = lint_paths([root], cache_path=cache_path)
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == 1
        assert warm.stats.cache_hits == 1
        assert warm.stats.cache_misses == 0
        assert [f.render() for f in warm.findings] == \
            [f.render() for f in cold.findings]

    def test_edited_file_misses(self, tmp_path):
        root = write_project(tmp_path, {"sim/clock.py": SOURCE})
        cache_path = str(tmp_path / "cache.json")
        lint_paths([root], cache_path=cache_path)
        write_project(tmp_path, {"sim/clock.py": SOURCE + "\nX = 1\n"})
        warm, _ = lint_paths([root], cache_path=cache_path)
        assert warm.stats.cache_misses == 1

    def test_cached_run_preserves_suppressions_and_pass2(self, tmp_path):
        files = {
            "service/loop.py": """
                import time

                class Loop:
                    async def run(self):
                        time.sleep(1)  # statan: disable=REP011 -- rig
                """,
        }
        root = write_project(tmp_path, files)
        cache_path = str(tmp_path / "cache.json")
        cold, _ = lint_paths([root], cache_path=cache_path)
        warm, _ = lint_paths([root], cache_path=cache_path)
        assert warm.stats.cache_hits == 1
        # Pass 2 re-runs fresh from the cached module index, and the
        # cached suppression table still applies to its findings.
        assert [f.rule_id for f in warm.suppressed] == \
            [f.rule_id for f in cold.suppressed]
        assert any(f.rule_id == "REP011" for f in warm.suppressed)

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        root = write_project(tmp_path, {"sim/clock.py": SOURCE})
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{definitely not json")
        result, _ = lint_paths([root], cache_path=str(cache_path))
        assert result.stats.cache_misses == 1
        assert result.findings  # analysis still ran


class TestCachePrimitives:
    def test_salt_changes_invalidate(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = AnalysisCache(path, "salt-a")
        digest = source_digest("x = 1\n")
        from repro.statan.cache import CacheEntry
        from repro.statan.project import ModuleIndex
        entry = CacheEntry(digest=digest, findings=[], suppressed=[],
                           suppressions={},
                           index=ModuleIndex(module="m", path="p",
                                             relpath="r"))
        cache.store("file.py", entry)
        cache.save()
        assert AnalysisCache(path, "salt-a").lookup(
            "file.py", digest) is not None
        assert AnalysisCache(path, "salt-b").lookup(
            "file.py", digest) is None

    def test_failed_save_cleans_up_temp_file(self, tmp_path, monkeypatch):
        # A failed advisory save must not litter the directory with the
        # mkstemp temp file — _dirty stays set, so every later save (one
        # per lint run) would add another orphan.
        from repro.statan.cache import CacheEntry
        from repro.statan.project import ModuleIndex
        import repro.statan.cache as cache_module

        path = str(tmp_path / "cache.json")
        cache = AnalysisCache(path, "salt-a")
        entry = CacheEntry(digest=source_digest("x = 1\n"), findings=[],
                           suppressed=[], suppressions={},
                           index=ModuleIndex(module="m", path="p",
                                             relpath="r"))
        cache.store("file.py", entry)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(cache_module.os, "replace", boom)
        cache.save()  # advisory: must not raise
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith(".statan-")]
        assert leftovers == []

    def test_rules_salt_is_deterministic(self):
        assert rules_salt(ALL_RULES) == rules_salt(ALL_RULES)
        assert rules_salt(ALL_RULES[:3]) != rules_salt(ALL_RULES)
