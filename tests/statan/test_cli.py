"""CLI behaviour of ``repro lint`` / ``python -m repro.statan.cli``."""

import json
import textwrap

from repro.cli import main as repro_main
from repro.statan.cli import main as lint_main

BAD = textwrap.dedent("""\
    import time

    def stamp():
        return time.time()
    """)

CLEAN = "def fine():\n    return 1\n"


def write_module(tmp_path, source):
    # Put the file under a `repro/sim/` segment so path-scoped rules fire.
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    path = pkg / "clock.py"
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write_module(tmp_path, CLEAN)
        assert lint_main([str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        assert lint_main([str(path)]) == 1
        assert "REP002" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope.py")]) == 2
        assert "repro lint:" in capsys.readouterr().out


class TestOptions:
    def test_select_limits_rules(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        assert lint_main([str(path), "--select", "REP001"]) == 0
        capsys.readouterr()

    def test_json_report_to_file(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        out = tmp_path / "report.json"
        code = lint_main([str(path), "--format", "json", "-o", str(out)])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["findings"][0]["rule"] == "REP002"
        assert "lint report written" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "REP008" in out

    def test_show_suppressed(self, tmp_path, capsys):
        source = BAD.replace(
            "time.time()",
            "time.time()  # statan: disable=REP002 -- cli fixture",
        )
        path = write_module(tmp_path, source)
        assert lint_main([str(path), "--show-suppressed"]) == 0
        assert "suppressed:" in capsys.readouterr().out


class TestBaselineFlags:
    def test_write_then_gate_with_baseline(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        baseline = tmp_path / "baseline.json"
        code = lint_main([str(path), "--baseline", str(baseline),
                          "--write-baseline"])
        assert code == 0
        assert "baseline written" in capsys.readouterr().out
        code = lint_main([str(path), "--baseline", str(baseline)])
        assert code == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_write_baseline_refuses_parse_errors(self, tmp_path, capsys):
        # Baselining STA000 would permanently exempt a syntax-broken
        # file from the gate; the seed must exclude it and fail loudly.
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "clock.py").write_text(BAD)
        (pkg / "broken.py").write_text("def broken(:\n")
        baseline = tmp_path / "baseline.json"
        code = lint_main([str(pkg), "--baseline", str(baseline),
                          "--write-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "NOT baselined" in out and "STA000" in out
        payload = json.loads(baseline.read_text())
        rules = {entry["rule"] for entry in payload["entries"].values()}
        assert "STA000" not in rules
        assert "REP002" in rules  # real findings are still recorded
        # The gated run keeps failing on the un-baselined parse error.
        code = lint_main([str(pkg), "--baseline", str(baseline)])
        assert code == 1
        assert "STA000" in capsys.readouterr().out

    def test_write_baseline_requires_baseline_path(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        assert lint_main([str(path), "--write-baseline"]) == 2
        assert "--write-baseline requires" in capsys.readouterr().out

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        assert lint_main(
            [str(path), "--baseline", str(tmp_path / "nope.json")]) == 2
        assert "repro lint:" in capsys.readouterr().out


class TestCacheAndStats:
    def test_cache_flag_round_trip(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        cache = tmp_path / "cache.json"
        lint_main([str(path), "--cache", str(cache), "--stats"])
        first = capsys.readouterr().out
        assert "0 hit / 1 miss" in first
        lint_main([str(path), "--cache", str(cache), "--stats"])
        second = capsys.readouterr().out
        assert "1 hit / 0 miss" in second

    def test_stats_line_without_cache(self, tmp_path, capsys):
        path = write_module(tmp_path, CLEAN)
        assert lint_main([str(path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "statan: 1 file(s)" in out
        assert "cache off" in out


class TestReproSubcommand:
    def test_lint_is_wired_into_repro_cli(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        assert repro_main(["lint", str(path)]) == 1
        assert "REP002" in capsys.readouterr().out
