"""CLI behaviour of ``repro lint`` / ``python -m repro.statan.cli``."""

import json
import textwrap

from repro.cli import main as repro_main
from repro.statan.cli import main as lint_main

BAD = textwrap.dedent("""\
    import time

    def stamp():
        return time.time()
    """)

CLEAN = "def fine():\n    return 1\n"


def write_module(tmp_path, source):
    # Put the file under a `repro/sim/` segment so path-scoped rules fire.
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    path = pkg / "clock.py"
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write_module(tmp_path, CLEAN)
        assert lint_main([str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        assert lint_main([str(path)]) == 1
        assert "REP002" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope.py")]) == 2
        assert "repro lint:" in capsys.readouterr().out


class TestOptions:
    def test_select_limits_rules(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        assert lint_main([str(path), "--select", "REP001"]) == 0
        capsys.readouterr()

    def test_json_report_to_file(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        out = tmp_path / "report.json"
        code = lint_main([str(path), "--format", "json", "-o", str(out)])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["findings"][0]["rule"] == "REP002"
        assert "lint report written" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP001" in out and "REP008" in out

    def test_show_suppressed(self, tmp_path, capsys):
        source = BAD.replace(
            "time.time()",
            "time.time()  # statan: disable=REP002 -- cli fixture",
        )
        path = write_module(tmp_path, source)
        assert lint_main([str(path), "--show-suppressed"]) == 0
        assert "suppressed:" in capsys.readouterr().out


class TestReproSubcommand:
    def test_lint_is_wired_into_repro_cli(self, tmp_path, capsys):
        path = write_module(tmp_path, BAD)
        assert repro_main(["lint", str(path)]) == 1
        assert "REP002" in capsys.readouterr().out
