"""Baseline fingerprints: stability across edits, split semantics, and
file round-trips."""

import json
import textwrap

import pytest

from repro.errors import StaticAnalysisError
from repro.statan import lint_paths
from repro.statan.baseline import (
    FINGERPRINT_KEY,
    apply_baseline,
    load_baseline,
    write_baseline,
)

from tests.statan.test_asyncsafety import write_project

SOURCE = """
    import time

    def stamp():
        return time.time()
    """


def lint_one(tmp_path, source=SOURCE, name="clock.py"):
    root = write_project(tmp_path, {f"sim/{name}": source})
    result, _ = lint_paths([root])
    return result


class TestFingerprints:
    def test_every_finding_is_fingerprinted(self, tmp_path):
        result = lint_one(tmp_path)
        assert result.findings
        for finding in result.findings:
            assert isinstance(finding.data[FINGERPRINT_KEY], str)

    def test_fingerprint_survives_line_shifts(self, tmp_path):
        before = lint_one(tmp_path)
        shifted = "\n\n# a comment\n" + textwrap.dedent(SOURCE)
        after = lint_one(tmp_path, source=shifted)
        assert before.findings[0].line != after.findings[0].line
        assert before.findings[0].data[FINGERPRINT_KEY] == \
            after.findings[0].data[FINGERPRINT_KEY]

    def test_identical_lines_get_distinct_ordinals(self, tmp_path):
        twice = """
            import time

            def a():
                return time.time()

            def b():
                return time.time()
            """
        result = lint_one(tmp_path, source=twice)
        prints = [f.data[FINGERPRINT_KEY] for f in result.findings]
        assert len(prints) == 2
        assert len(set(prints)) == 2


class TestBaselineFile:
    def test_write_then_apply_reclassifies(self, tmp_path):
        result = lint_one(tmp_path)
        path = tmp_path / "baseline.json"
        count = write_baseline(str(path), result.findings)
        assert count == len(result.findings)
        baseline = load_baseline(str(path))
        fresh, known = apply_baseline(result.findings, baseline)
        assert fresh == []
        assert known == result.findings

    def test_lint_paths_baseline_kwarg(self, tmp_path):
        result = lint_one(tmp_path)
        path = tmp_path / "baseline.json"
        write_baseline(str(path), result.findings)
        root = str(tmp_path / "repro")
        gated, _ = lint_paths([root], baseline=load_baseline(str(path)))
        assert gated.ok
        assert len(gated.baselined) == len(result.findings)

    def test_new_findings_still_gate(self, tmp_path):
        result = lint_one(tmp_path)
        path = tmp_path / "baseline.json"
        write_baseline(str(path), result.findings)
        grown = textwrap.dedent(SOURCE) + textwrap.dedent("""
            def extra():
                return time.time()
            """)
        root = write_project(tmp_path, {"sim/clock.py": grown})
        gated, _ = lint_paths([root], baseline=load_baseline(str(path)))
        assert not gated.ok
        assert len(gated.findings) == 1
        assert len(gated.baselined) == len(result.findings)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StaticAnalysisError):
            load_baseline(str(tmp_path / "nope.json"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StaticAnalysisError):
            load_baseline(str(path))

    def test_missing_entries_table_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(StaticAnalysisError):
            load_baseline(str(path))

    def test_unfingerprinted_findings_cannot_seed(self, tmp_path):
        from repro.statan import lint_source
        result = lint_source(textwrap.dedent(SOURCE), "repro/sim/clock.py")
        with pytest.raises(StaticAnalysisError):
            write_baseline(str(tmp_path / "b.json"), result.findings)
