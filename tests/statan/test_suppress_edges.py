"""Suppression edge cases: stale-waiver detection (STA003), multi-rule
directives spanning both passes, and baseline interaction."""

from repro.statan import lint_paths
from repro.statan.baseline import load_baseline, write_baseline

from tests.statan.test_asyncsafety import write_project


class TestStaleSuppressions:
    def test_stale_directive_is_flagged_in_full_runs(self, tmp_path):
        root = write_project(tmp_path, {
            "sim/clock.py": """
                def fine():
                    return 1  # statan: disable=REP002 -- nothing fires here
                """,
        })
        result, _ = lint_paths([root])
        (finding,) = result.findings
        assert finding.rule_id == "STA003"
        assert "stale suppression" in finding.message

    def test_live_directive_is_not_stale(self, tmp_path):
        root = write_project(tmp_path, {
            "sim/clock.py": """
                import time

                def stamp():
                    return time.time()  # statan: disable=REP002 -- wanted
                """,
        })
        result, _ = lint_paths([root])
        assert result.ok
        assert [f.rule_id for f in result.suppressed] == ["REP002"]

    def test_narrowed_runs_skip_stale_detection(self, tmp_path):
        # With --select the directive's rule may simply not be running;
        # staleness is only decidable against the full catalog.
        root = write_project(tmp_path, {
            "sim/clock.py": """
                def fine():
                    return 1  # statan: disable=REP002 -- out of scope
                """,
        })
        result, _ = lint_paths([root], select=["REP001"])
        assert result.ok

    def test_directive_suppressing_only_pass2_is_live(self, tmp_path):
        root = write_project(tmp_path, {
            "service/loop.py": """
                import time

                class Loop:
                    async def run(self):
                        time.sleep(1)  # statan: disable=REP011 -- rig
                """,
        })
        result, _ = lint_paths([root])
        # The only thing this directive waives is a pass-2 finding;
        # stale detection must still count it as live.
        assert result.ok
        assert [f.rule_id for f in result.suppressed] == ["REP011"]


class TestMultiRuleDirectives:
    def test_partially_stale_multirule_directive_is_not_stale(
            self, tmp_path):
        # One of the listed rules fired, so the directive is live; the
        # unused id is tolerated (common when a fix removes one finding).
        root = write_project(tmp_path, {
            "sim/clock.py": """
                import time

                def stamp():
                    return time.time()  # statan: disable=REP001,REP002 -- demo
                """,
        })
        result, _ = lint_paths([root])
        assert result.ok
        assert [f.rule_id for f in result.suppressed] == ["REP002"]


class TestBaselineInteraction:
    def test_suppressed_findings_never_enter_the_baseline(self, tmp_path):
        root = write_project(tmp_path, {
            "sim/clock.py": """
                import time

                def stamp():
                    return time.time()  # statan: disable=REP002 -- wanted
                """,
        })
        result, _ = lint_paths([root])
        path = tmp_path / "baseline.json"
        count = write_baseline(str(path), result.findings)
        assert count == 0  # only live findings are recorded

    def test_removing_a_suppression_surfaces_a_gating_finding(
            self, tmp_path):
        suppressed = """
            import time

            def stamp():
                return time.time()  # statan: disable=REP002 -- wanted
            """
        root = write_project(tmp_path, {"sim/clock.py": suppressed})
        result, _ = lint_paths([root])
        path = tmp_path / "baseline.json"
        write_baseline(str(path), result.findings)  # empty baseline

        bare = suppressed.replace(
            "  # statan: disable=REP002 -- wanted", "")
        root = write_project(tmp_path, {"sim/clock.py": bare})
        gated, _ = lint_paths([root], baseline=load_baseline(str(path)))
        # The finding is new relative to the baseline: it gates.
        assert [f.rule_id for f in gated.findings] == ["REP002"]
        assert gated.baselined == []
