"""Unit tests for the convergence detector."""

import pytest

from repro.core.convergence import ConvergenceDetector


def feasible_latencies(ts):
    """9 ms per subtask is feasible for the dedicated-resource chain
    fixture (path 27 ≤ 30, loads 3/9 = 0.33)."""
    return {n: 9.0 for n in ts.subtask_names}


class TestConvergenceDetector:
    def test_not_converged_before_window_fills(self, chain_ts):
        det = ConvergenceDetector(chain_ts, window=5)
        for _ in range(5):
            det.observe(10.0, feasible_latencies(chain_ts))
        assert not det.converged()   # needs window+1 observations
        det.observe(10.0, feasible_latencies(chain_ts))
        assert det.converged()

    def test_detects_stability(self, chain_ts):
        det = ConvergenceDetector(chain_ts, window=3, utility_tol=1e-3)
        for _ in range(10):
            det.observe(100.0, feasible_latencies(chain_ts))
        assert det.utility_stable()

    def test_rejects_drift(self, chain_ts):
        det = ConvergenceDetector(chain_ts, window=3, utility_tol=1e-3)
        for i in range(10):
            det.observe(100.0 + i, feasible_latencies(chain_ts))
        assert not det.utility_stable()

    def test_relative_tolerance_scales(self, chain_ts):
        # Spread 0.5 on a value of 10000 is relatively tiny.
        det = ConvergenceDetector(chain_ts, window=3, utility_tol=1e-3)
        values = [10000.0, 10000.5, 10000.0, 10000.4, 10000.1]
        for v in values:
            det.observe(v, feasible_latencies(chain_ts))
        assert det.utility_stable()

    def test_requires_feasibility(self, base_ts):
        det = ConvergenceDetector(base_ts, window=2)
        infeasible = {n: 0.1 for n in base_ts.subtask_names}
        for _ in range(6):
            det.observe(10.0, infeasible)
        assert det.utility_stable()
        assert not det.feasible()
        assert not det.converged()

    def test_feasibility_check_optional(self, base_ts):
        det = ConvergenceDetector(base_ts, window=2, require_feasible=False)
        infeasible = {n: 0.1 for n in base_ts.subtask_names}
        for _ in range(6):
            det.observe(10.0, infeasible)
        assert det.converged()

    def test_reset(self, chain_ts):
        det = ConvergenceDetector(chain_ts, window=2)
        for _ in range(6):
            det.observe(10.0, feasible_latencies(chain_ts))
        assert det.converged()
        det.reset()
        assert not det.converged()

    def test_rejects_bad_params(self, base_ts):
        with pytest.raises(ValueError):
            ConvergenceDetector(base_ts, window=0)
        with pytest.raises(ValueError):
            ConvergenceDetector(base_ts, utility_tol=0.0)
        with pytest.raises(ValueError):
            ConvergenceDetector(base_ts, utility_floor=0.0)


class TestSmallUtilityScale:
    """Regression: the stability scale used to be ``max(1.0, max|v|)``,
    so any run whose utilities were much smaller than 1 looked "stable"
    immediately — the absolute spread was tiny even while the trace was
    still swinging by 50% of its own magnitude."""

    def test_small_utilities_still_swinging_not_stable(self, chain_ts):
        det = ConvergenceDetector(chain_ts, window=3, utility_tol=1e-3)
        # |U| ~ 1e-4 with a 30% relative spread: with the old absolute
        # scale of 1.0 the spread (6e-5) was far below tol and this
        # wrongly converged.
        for v in (1.0e-4, 1.3e-4, 0.9e-4, 1.2e-4, 1.1e-4):
            det.observe(v, feasible_latencies(chain_ts))
        assert not det.utility_stable()

    def test_small_utilities_settled_are_stable(self, chain_ts):
        det = ConvergenceDetector(chain_ts, window=3, utility_tol=1e-3)
        for _ in range(6):
            det.observe(1.0e-4, feasible_latencies(chain_ts))
        assert det.utility_stable()

    def test_identically_zero_trace_is_stable(self, chain_ts):
        # The floor's other job: no division by zero on an all-zero trace.
        det = ConvergenceDetector(chain_ts, window=3)
        for _ in range(6):
            det.observe(0.0, feasible_latencies(chain_ts))
        assert det.utility_stable()

    def test_floor_bounds_the_scale_from_below(self, chain_ts):
        # Raising the floor above the trace magnitude re-enables the old
        # absolute judgement for callers that want it.
        det = ConvergenceDetector(chain_ts, window=3, utility_tol=1e-3,
                                  utility_floor=1.0)
        for v in (1.0e-4, 1.3e-4, 0.9e-4, 1.2e-4, 1.1e-4):
            det.observe(v, feasible_latencies(chain_ts))
        assert det.utility_stable()
