"""Behavioural tests for inelastic (hard real-time) tasks in LLA.

Section 3.2 / Figure 2: inelastic tasks "constrain resources, but do not
allow trade-offs between benefit and utilization" — under LLA they should
claim exactly the allocation needed to meet their deadline (their paths
end *at* the critical time, not below it), leaving every remaining drop of
capacity to the elastic tasks.
"""

import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.model.events import PeriodicEvent
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import InelasticUtility, LinearUtility


def mixed_taskset(elastic_slope: float = 1.0) -> TaskSet:
    """One inelastic and one elastic chain sharing three resources."""
    resources = [Resource(name=f"r{i}", availability=1.0, lag=1.0)
                 for i in range(3)]

    hard_names = [f"hard_{i}" for i in range(3)]
    hard = Task(
        name="hard",
        subtasks=[Subtask(hard_names[i], f"r{i}", exec_time=2.0)
                  for i in range(3)],
        graph=SubtaskGraph.chain(hard_names),
        critical_time=30.0,
        utility=InelasticUtility(30.0, u_max=10.0),
        trigger=PeriodicEvent(100.0),
    )
    soft_names = [f"soft_{i}" for i in range(3)]
    soft = Task(
        name="soft",
        subtasks=[Subtask(soft_names[i], f"r{i}", exec_time=3.0)
                  for i in range(3)],
        graph=SubtaskGraph.chain(soft_names),
        critical_time=90.0,
        utility=LinearUtility(90.0, k=2.0, slope=elastic_slope),
        trigger=PeriodicEvent(100.0),
    )
    return TaskSet([hard, soft], resources)


@pytest.fixture(scope="module")
def solved():
    ts = mixed_taskset()
    result = LLAOptimizer(ts, LLAConfig(max_iterations=2500)).run()
    return ts, result


class TestInelasticBehaviour:
    def test_converges_feasibly(self, solved):
        ts, result = solved
        assert ts.is_feasible(result.latencies, tol=1e-2)

    def test_inelastic_rides_its_deadline(self, solved):
        """No marginal benefit below the deadline: the hard task takes
        exactly its critical time, no more share than needed."""
        ts, result = solved
        _, crit = ts.task("hard").critical_path(result.latencies)
        assert crit == pytest.approx(30.0, rel=0.02)

    def test_elastic_soaks_remaining_capacity(self, solved):
        ts, result = solved
        loads = ts.resource_loads(result.latencies)
        for load in loads.values():
            assert load == pytest.approx(1.0, abs=0.02)

    def test_elastic_below_its_deadline(self, solved):
        """The elastic task trades: it ends well below its own deadline
        because latency still buys it utility."""
        ts, result = solved
        _, crit = ts.task("soft").critical_path(result.latencies)
        assert crit < 0.95 * 90.0

    def test_inelastic_allocation_insensitive_to_elastic_importance(self):
        """Scaling the elastic task's slope must not move the inelastic
        task's allocation — it is constraint-driven, not price-driven.

        Uses a fixed γ = 0.3 for both slopes: adaptive doubling can lock
        this geometry into a limit cycle at some slopes (the step-size
        sensitivity the Figure 5 reproduction documents), and comparing
        across configurations needs one policy that converges for both."""
        from repro.core.stepsize import FixedStepSize

        def hard_latencies(slope):
            ts = mixed_taskset(elastic_slope=slope)
            result = LLAOptimizer(
                ts,
                LLAConfig(step_policy=FixedStepSize(0.3),
                          max_iterations=8000),
            ).run()
            assert result.converged
            return [result.latencies[f"hard_{i}"] for i in range(3)]

        gentle = hard_latencies(1.0)
        fierce = hard_latencies(5.0)
        assert sum(gentle) == pytest.approx(sum(fierce), rel=0.02)

    def test_inelastic_utility_constant_while_met(self, solved):
        ts, result = solved
        hard = ts.task("hard")
        assert hard.utility_value(result.latencies) == pytest.approx(10.0)
