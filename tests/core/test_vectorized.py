"""Parity tests: the vectorized backend must reproduce the scalar one.

The vectorized kernel (:mod:`repro.core.vectorized`) exists purely for
throughput — the acceptance bar is element-wise closeness (rtol ≤ 1e-9) of
latencies, prices and utility over full figure runs, and the implementation
actually delivers bitwise-identical trajectories (every reduction is
ordered like its scalar counterpart), which these tests pin down so a ulp
regression is caught before it flips an adaptive-γ branch.
"""

import numpy as np
import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize
from repro.errors import OptimizationError
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.model.share import PowerLawShare, ShareFunction
from repro.model.utility import LogUtility
from repro.workloads.paper import base_workload
from tests.conftest import make_chain_taskset
from tests.core.test_inelastic import mixed_taskset


def _pair(taskset_factory, **config_kwargs):
    """Two optimizers over fresh task-set copies, one per backend."""
    return tuple(
        LLAOptimizer(taskset_factory(),
                     LLAConfig(backend=backend, **config_kwargs))
        for backend in ("scalar", "vectorized")
    )


def assert_records_match(scalar, vector):
    """Element-wise parity of two IterationRecords (rtol per the ISSUE's
    acceptance bar; in practice the values are bitwise equal)."""
    assert vector.iteration == scalar.iteration
    assert vector.utility == pytest.approx(scalar.utility, rel=1e-9, abs=0.0)
    for field in ("latencies", "resource_prices", "path_prices",
                  "resource_loads", "critical_paths"):
        s, v = getattr(scalar, field), getattr(vector, field)
        assert set(v) == set(s), field
        for key in s:
            assert v[key] == pytest.approx(s[key], rel=1e-9, abs=0.0), \
                (field, key)
    assert set(vector.congested_resources) == set(scalar.congested_resources)
    assert set(vector.congested_paths) == set(scalar.congested_paths)


class TestFigureRunParity:
    def test_fig5_full_run(self):
        """All four Figure 5 series (fixed γ ∈ {0.1, 1, 10} + adaptive)
        produce the same utility trace on both backends."""
        scalar = run_fig5(backend="scalar")
        vector = run_fig5(backend="vectorized")
        assert set(vector.series) == set(scalar.series)
        for label, line in scalar.series.items():
            np.testing.assert_allclose(
                vector.series[label].utilities, line.utilities,
                rtol=1e-9, atol=0.0, err_msg=label,
            )

    def test_fig6_full_run(self):
        """The ×1/×2/×4 scaling runs (unbounded adaptive γ) match too."""
        scalar = run_fig6(backend="scalar")
        vector = run_fig6(backend="vectorized")
        assert set(vector.points) == set(scalar.points)
        for n, point in scalar.points.items():
            np.testing.assert_allclose(
                vector.points[n].utilities, point.utilities,
                rtol=1e-9, atol=0.0, err_msg=f"{n} tasks",
            )
            assert vector.points[n].final_utility == pytest.approx(
                point.final_utility, rel=1e-9, abs=0.0
            )


class TestRecordParity:
    @pytest.mark.parametrize("gamma", [0.1, 1.0, 10.0])
    def test_fixed_step_records(self, gamma):
        s_opt, v_opt = _pair(
            base_workload, step_policy=FixedStepSize(gamma),
            max_iterations=200, stop_on_convergence=False,
        )
        for _ in range(200):
            assert_records_match(s_opt.step(), v_opt.step())

    def test_adaptive_step_records(self):
        def config(ts):
            return dict(step_policy=AdaptiveStepSize(ts, initial_gamma=1.0),
                        max_iterations=300, stop_on_convergence=False)

        ts_s, ts_v = base_workload(), base_workload()
        s_opt = LLAOptimizer(ts_s, LLAConfig(backend="scalar", **config(ts_s)))
        v_opt = LLAOptimizer(ts_v, LLAConfig(backend="vectorized",
                                             **config(ts_v)))
        for _ in range(300):
            assert_records_match(s_opt.step(), v_opt.step())

    def test_inelastic_mixed_records(self):
        """The inelastic-utility branch (step value, zero pull → clamp)
        follows the same trajectory — including through the pull-collapse
        regime where latencies ride the clamps."""
        s_opt, v_opt = _pair(mixed_taskset, max_iterations=400,
                             stop_on_convergence=False)
        for _ in range(400):
            assert_records_match(s_opt.step(), v_opt.step())

    def test_power_law_share_records(self):
        def taskset():
            ts = make_chain_taskset()
            for sub in ts.tasks[0].subtasks:
                ts.set_share_function(sub.name,
                                      PowerLawShare(cost=3.0, alpha=2.0))
            return ts

        s_opt, v_opt = _pair(taskset, max_iterations=150,
                             stop_on_convergence=False)
        for _ in range(150):
            assert_records_match(s_opt.step(), v_opt.step())


class TestFacadeParity:
    def test_run_result(self):
        s_opt, v_opt = _pair(base_workload, max_iterations=400)
        s_res, v_res = s_opt.run(), v_opt.run()
        assert v_res.converged == s_res.converged
        assert v_res.iterations == s_res.iterations
        assert v_res.utility == pytest.approx(s_res.utility,
                                              rel=1e-9, abs=0.0)
        for key, value in s_res.latencies.items():
            assert v_res.latencies[key] == pytest.approx(value, rel=1e-9,
                                                         abs=0.0)
        for key, value in s_res.path_prices.items():
            assert v_res.path_prices[key] == pytest.approx(value, rel=1e-9,
                                                           abs=0.0)

    def test_warm_start(self):
        s_opt, v_opt = _pair(base_workload, warm_start=True,
                             max_iterations=200, stop_on_convergence=False)
        assert v_opt.latencies == pytest.approx(s_opt.latencies, rel=1e-9)
        for _ in range(200):
            assert_records_match(s_opt.step(), v_opt.step())

    def test_reset_reproduces_run(self):
        ts = base_workload()
        opt = LLAOptimizer(ts, LLAConfig(backend="vectorized",
                                         max_iterations=150,
                                         stop_on_convergence=False))
        first = [opt.step().utility for _ in range(150)]
        opt.reset()
        assert opt.iteration == 0
        second = [opt.step().utility for _ in range(150)]
        assert second == first


class TestUnsupportedModels:
    def test_nonclosed_form_utility_rejected(self):
        ts = make_chain_taskset()
        ts.tasks[0].utility = LogUtility(ts.tasks[0].critical_time)
        with pytest.raises(OptimizationError, match="backend='scalar'"):
            LLAOptimizer(ts, LLAConfig(backend="vectorized"))

    def test_custom_share_function_rejected(self):
        class OddShare(ShareFunction):
            def share(self, latency):
                return 1.0 / latency

            def dshare_dlat(self, latency):
                return -1.0 / latency ** 2

            def latency_for_share(self, share):
                return 1.0 / share

            def min_latency(self, availability):
                return 1.0 / availability

        ts = make_chain_taskset()
        ts.set_share_function("s0", OddShare())
        with pytest.raises(OptimizationError, match="backend='scalar'"):
            LLAOptimizer(ts, LLAConfig(backend="vectorized"))

    def test_bad_backend_name_rejected(self, base_ts):
        with pytest.raises(OptimizationError, match="backend"):
            LLAOptimizer(base_ts, LLAConfig(backend="simd"))
