"""Tests for the sharded optimizer (:mod:`repro.core.sharding`).

Sharding is a throughput knob, not a different algorithm: the planner
never splits a resource-connectivity component, so on separable
workloads every materialized value — latencies, prices, loads, utility —
must stay bitwise-identical to the unsharded vectorized engine, in both
the in-process (``serial``) and process-pool (``processes``) modes.
"""

import numpy as np
import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.sharding import ShardedEngine, plan_shards
from repro.core.structure import compile_structure
from repro.core.vectorized import VectorizedEngine
from repro.errors import OptimizationError, ServiceError
from repro.service import ServiceConfig
from repro.workloads.generator import GeneratorConfig, random_workload
from repro.workloads.paper import base_workload


def separable_taskset(partitions=2, seed=3):
    """A workload whose task↔resource graph has exactly ``partitions``
    connected components — the regime the shard planner exploits."""
    return random_workload(
        GeneratorConfig(n_tasks=8, n_resources=6 * partitions,
                        min_subtasks=3, max_subtasks=4,
                        partitions=partitions),
        seed=seed,
    )


def _engine(taskset, shards, mode="serial"):
    config = LLAConfig(backend="vectorized", shards=shards, shard_mode=mode)
    policy = config.build_step_policy(taskset)
    if shards == 1 and mode == "serial":
        return VectorizedEngine(taskset, config, policy)
    return ShardedEngine(taskset, config, policy)


def assert_steps_match(expected, actual):
    """Bitwise equality of two EngineSteps."""
    assert actual.utility == expected.utility
    for field in ("latencies", "resource_prices", "path_prices",
                  "resource_loads", "critical_paths"):
        assert getattr(actual, field) == getattr(expected, field), field
    assert actual.congested_resources == expected.congested_resources
    assert actual.congested_paths == expected.congested_paths


class TestPlanShards:
    def test_plan_is_deterministic(self):
        s = compile_structure(separable_taskset(partitions=4))
        assert plan_shards(s, 4) == plan_shards(s, 4)

    def test_partition_is_exact_and_disjoint(self):
        s = compile_structure(separable_taskset(partitions=4))
        plan = plan_shards(s, 3)
        for field, total in (
            ("task_ids", len(s.task_names)),
            ("sub_ids", s.n_subtasks),
            ("resource_ids", s.n_resources),
            ("path_ids", s.n_paths),
        ):
            seen = [i for spec in plan.specs for i in getattr(spec, field)]
            assert sorted(seen) == list(range(total)), field

    def test_components_are_never_split(self):
        """Two subtasks sharing a resource (or a task spanning both) must
        land on the same shard — that is what makes shard iterates exact
        rather than approximate."""
        s = compile_structure(separable_taskset(partitions=4))
        plan = plan_shards(s, 4)
        # 4 partition components plus singleton components for any
        # resources the generator left idle.
        assert plan.n_components >= 4
        for spec in plan.specs:
            ress = set(spec.resource_ids)
            for sub in spec.sub_ids:
                assert int(s.sub_resource[sub]) in ress
            tasks = set(spec.task_ids)
            for sub in spec.sub_ids:
                assert int(s.sub_task_ids[sub]) in tasks

    def test_shard_count_is_capped_by_components(self):
        s = compile_structure(separable_taskset(partitions=2))
        assert plan_shards(s, 8).n_shards == 2

    def test_single_shard_covers_everything(self):
        s = compile_structure(base_workload())
        plan = plan_shards(s, 1)
        assert plan.n_shards == 1
        assert len(plan.specs[0].sub_ids) == s.n_subtasks

    def test_rejects_nonpositive_shards(self):
        s = compile_structure(base_workload())
        with pytest.raises(OptimizationError):
            plan_shards(s, 0)


class TestEngineParity:
    def test_one_shard_is_the_unsharded_kernel(self):
        """shards=1 collapses to a plain VectorizedEngine — identical by
        construction, verified step-for-step bitwise here."""
        plain = _engine(base_workload(), shards=1)
        sharded = _engine(base_workload(), shards=1, mode="processes")
        assert sharded.plan.n_shards == 1
        for _ in range(150):
            assert_steps_match(plain.step(), sharded.step())

    def test_two_serial_shards_match_bitwise(self):
        plain = _engine(separable_taskset(), shards=1)
        sharded = _engine(separable_taskset(), shards=2)
        assert sharded.plan.n_shards == 2
        for _ in range(150):
            assert_steps_match(plain.step(), sharded.step())

    def test_two_process_shards_match_bitwise(self):
        plain = _engine(separable_taskset(), shards=1)
        with _engine(separable_taskset(), shards=2,
                     mode="processes") as sharded:
            assert sharded.plan.n_shards == 2
            for _ in range(40):
                assert_steps_match(plain.step(), sharded.step())

    def test_single_component_collapses_gracefully(self):
        """Asking for shards on an unpartitionable workload silently runs
        the single-engine path (still bitwise-correct), rather than
        cutting a component."""
        plain = _engine(base_workload(), shards=1)
        sharded = _engine(base_workload(), shards=4)
        assert sharded.plan.n_shards == 1
        for _ in range(50):
            assert_steps_match(plain.step(), sharded.step())


class TestFullRunParity:
    """The ISSUE's Fig. 5-style acceptance: a full optimizer run with
    shards=2 on a partition-separable workload matches the unsharded run
    within 1e-9 (bitwise in practice) and converges in the same rounds."""

    def _run(self, **kwargs):
        config = LLAConfig(backend="vectorized", max_iterations=400,
                           **kwargs)
        return LLAOptimizer(separable_taskset(), config).run()

    def test_sharded_full_run_matches_unsharded(self):
        plain = self._run()
        sharded = self._run(shards=2)
        assert sharded.iterations == plain.iterations
        assert sharded.converged == plain.converged
        assert sharded.utility == pytest.approx(plain.utility,
                                                rel=1e-9, abs=0.0)
        assert set(sharded.latencies) == set(plain.latencies)
        np.testing.assert_allclose(
            [sharded.latencies[k] for k in sorted(plain.latencies)],
            [plain.latencies[k] for k in sorted(plain.latencies)],
            rtol=1e-9, atol=0.0,
        )

    def test_sharded_history_matches_unsharded(self):
        plain = self._run(record_history=True)
        sharded = self._run(shards=2, record_history=True)
        np.testing.assert_allclose(
            [r.utility for r in sharded.history],
            [r.utility for r in plain.history],
            rtol=1e-9, atol=0.0,
        )

    def test_optimizer_exposes_the_sharded_structure(self):
        opt = LLAOptimizer(separable_taskset(),
                           LLAConfig(backend="vectorized", shards=2))
        assert isinstance(opt._engine, ShardedEngine)
        assert opt.structure is not None
        assert opt.structure.fingerprint


class TestConfigValidation:
    def test_lla_rejects_nonpositive_shards(self):
        with pytest.raises(OptimizationError, match="shards"):
            LLAConfig(shards=0)

    def test_lla_rejects_scalar_sharding(self):
        with pytest.raises(OptimizationError, match="vectorized"):
            LLAConfig(backend="scalar", shards=2)

    def test_lla_rejects_unknown_shard_mode(self):
        with pytest.raises(OptimizationError, match="shard_mode"):
            LLAConfig(shard_mode="threads")

    def test_service_rejects_nonpositive_shards(self):
        with pytest.raises(ServiceError, match="shards"):
            ServiceConfig(shards=0)

    def test_service_rejects_scalar_sharding(self):
        with pytest.raises(ServiceError, match="vectorized"):
            ServiceConfig(backend="scalar", shards=2)

    def test_service_rejects_unknown_shard_mode(self):
        with pytest.raises(ServiceError, match="shard_mode"):
            ServiceConfig(shard_mode="threads")

    def test_service_rejects_contradictory_lla_sharding(self):
        with pytest.raises(ServiceError, match="contradicts"):
            ServiceConfig(shards=2,
                          lla=LLAConfig(backend="vectorized", shards=4))
