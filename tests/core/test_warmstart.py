"""Tests for warm-start price initialization."""

import math

import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.warmstart import (
    apply_warm_start,
    warm_start_resource_prices,
)
from repro.model.share import CorrectedShare, PowerLawShare
from repro.model.utility import LogUtility
from repro.workloads.paper import base_workload, scaled_workload
from tests.conftest import make_chain_taskset


class TestEstimate:
    def test_formula_on_chain(self):
        ts = make_chain_taskset(n_subtasks=3, exec_time=2.0, lag=1.0)
        prices = warm_start_resource_prices(ts)
        # One subtask per resource, cost 3, weight 1: sqrt(mu) = sqrt(3)/1.
        for rname in ts.resources:
            assert prices[rname] == pytest.approx(3.0)

    def test_accounts_for_weights_and_slope(self, base_ts):
        prices = warm_start_resource_prices(base_ts)
        # r0 hosts T11 (cost 3, weight 4), T21 (cost 3, weight 3),
        # T31 (cost 4, weight 1).
        expected = (
            math.sqrt(3.0 * 4) + math.sqrt(3.0 * 3) + math.sqrt(4.0 * 1)
        ) ** 2
        assert prices["r0"] == pytest.approx(expected)

    def test_falls_back_for_nonlinear_utility(self):
        ts = make_chain_taskset()
        ts.tasks[0].utility = LogUtility(ts.tasks[0].critical_time)
        prices = warm_start_resource_prices(ts, default=7.0)
        assert all(v == 7.0 for v in prices.values())

    def test_mixed_taskset_falls_back_per_resource(self):
        """Only the resource hosting the out-of-closed-form subtask falls
        back; resources whose subtasks all fit the formula keep their
        estimates."""
        ts = make_chain_taskset(n_subtasks=3, exec_time=2.0, lag=1.0)
        ts.set_share_function("s1", PowerLawShare(cost=3.0, alpha=2.0))
        prices = warm_start_resource_prices(ts, default=7.0)
        assert prices["r0"] == pytest.approx(3.0)
        assert prices["r1"] == 7.0   # power-law share: not estimable
        assert prices["r2"] == pytest.approx(3.0)

    def test_corrected_share_unwraps_to_base(self):
        ts = make_chain_taskset(n_subtasks=2, exec_time=2.0, lag=1.0)
        base = ts.share_function("s0")
        ts.set_share_function("s0", CorrectedShare(base, error=-0.5))
        prices = warm_start_resource_prices(ts, default=7.0)
        # The correction offset does not change the equilibrium estimate.
        assert prices["r0"] == pytest.approx(3.0)

    def test_blacked_out_resource_falls_back_to_default(self):
        """Regression: a full capacity shock (availability 0) used to
        crash the estimate with a ZeroDivisionError; it must fall back
        to the default price for the shocked resource and keep the
        closed-form estimate everywhere else."""
        ts = make_chain_taskset(n_subtasks=3, exec_time=2.0, lag=1.0)
        ts.set_availability("r1", 0.0)
        prices = warm_start_resource_prices(ts, default=5.0)
        assert prices["r1"] == 5.0
        assert prices["r0"] == pytest.approx(3.0)
        assert prices["r2"] == pytest.approx(3.0)
        assert all(math.isfinite(v) for v in prices.values())


class TestIntegration:
    def test_apply_updates_optimizer(self, base_ts):
        opt = LLAOptimizer(base_ts, LLAConfig())
        applied = apply_warm_start(opt)
        assert opt.resource_prices.prices == applied
        assert applied["r0"] > 1.0

    def test_config_flag(self, base_ts):
        opt = LLAOptimizer(base_ts, LLAConfig(warm_start=True))
        cold = warm_start_resource_prices(base_ts)
        assert opt.resource_prices.prices == pytest.approx(cold)

    def test_warm_start_speeds_up_overprovisioned_convergence(self):
        # In the Figure 6 regime the estimate is not exact (latencies pin
        # at the rate bound, not at saturation) but the head start still
        # dominates a cold start.
        def iterations_to_converge(warm):
            ts = scaled_workload(2, critical_time_factor=20.0)
            config = LLAConfig(max_iterations=2000, warm_start=warm)
            return LLAOptimizer(ts, config).run().iterations

        assert iterations_to_converge(True) <= iterations_to_converge(False)

    def test_warm_start_reaches_same_optimum(self, base_ts):
        from repro.workloads.paper import base_workload
        cold = LLAOptimizer(base_workload(),
                            LLAConfig(max_iterations=2500)).run()
        warm = LLAOptimizer(base_workload(),
                            LLAConfig(max_iterations=2500,
                                      warm_start=True)).run()
        assert warm.utility == pytest.approx(cold.utility, abs=0.5)

    def test_reset_reapplies_warm_start(self, base_ts):
        opt = LLAOptimizer(base_ts, LLAConfig(warm_start=True,
                                              max_iterations=50))
        initial = dict(opt.resource_prices.prices)
        opt.run(20)
        opt.reset()
        assert opt.resource_prices.prices == pytest.approx(initial)

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_apply_after_iterating_matches_fresh_optimizer(self, backend):
        """Regression: applying a warm start to an optimizer that already
        iterated used to leave the previous run's path prices (and
        step-size escalation) in place, so its state diverged from a
        fresh warm-started optimizer.  After ``apply_warm_start`` the two
        must hold identical duals and then walk identical trajectories.
        """
        config = LLAConfig(backend=backend, max_iterations=500,
                           stop_on_convergence=False)
        stale = LLAOptimizer(base_workload(), config)
        stale.run(40)
        apply_warm_start(stale)
        fresh = LLAOptimizer(
            base_workload(),
            LLAConfig(backend=backend, max_iterations=500,
                      stop_on_convergence=False, warm_start=True),
        )
        assert stale.resource_prices.prices == pytest.approx(
            fresh.resource_prices.prices)
        assert stale._collect_path_prices() == pytest.approx(
            fresh._collect_path_prices())
        assert stale.latencies == pytest.approx(fresh.latencies)
        for _ in range(30):
            stale.step()
            fresh.step()
        assert stale.latencies == pytest.approx(fresh.latencies)
        assert stale.resource_prices.prices == pytest.approx(
            fresh.resource_prices.prices)
