"""Unit tests for Lagrangian evaluation and KKT diagnostics."""

import pytest

from repro.core.lagrangian import kkt_report, lagrangian_value
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.state import PathKey


class TestLagrangianValue:
    def test_zero_prices_reduce_to_utility(self, base_ts):
        lat = {n: 10.0 for n in base_ts.subtask_names}
        value = lagrangian_value(base_ts, lat, {}, {})
        assert value == pytest.approx(base_ts.total_utility(lat))

    def test_price_on_violated_resource_lowers_value(self, base_ts):
        lat = {n: 3.0 for n in base_ts.subtask_names}   # overloads resources
        free = lagrangian_value(base_ts, lat, {}, {})
        priced = lagrangian_value(base_ts, lat, {"r0": 10.0}, {})
        assert priced < free

    def test_price_on_slack_resource_raises_value(self, base_ts):
        lat = {n: 20.0 for n in base_ts.subtask_names}  # slack on resources
        free = lagrangian_value(base_ts, lat, {}, {})
        priced = lagrangian_value(base_ts, lat, {"r0": 10.0}, {})
        assert priced > free

    def test_path_price_term(self, base_ts):
        lat = {n: 5.0 for n in base_ts.subtask_names}
        key = PathKey("T3", 0)
        t3 = base_ts.task("T3")
        path_lat = t3.graph.path_latency(t3.graph.paths[0], lat)
        slack = t3.critical_time - path_lat
        free = lagrangian_value(base_ts, lat, {}, {})
        priced = lagrangian_value(base_ts, lat, {}, {key: 2.0})
        assert priced - free == pytest.approx(2.0 * slack)


class TestKKTReport:
    @pytest.fixture(scope="class")
    def converged(self):
        from repro.workloads.paper import base_workload
        ts = base_workload()
        result = LLAOptimizer(ts, LLAConfig(max_iterations=1500)).run()
        return ts, result

    def test_near_zero_residuals_at_optimum(self, converged):
        ts, result = converged
        report = kkt_report(ts, result.latencies, result.resource_prices,
                            result.path_prices)
        assert report.max_stationarity() < 1e-2
        assert report.max_primal() < 1e-2
        assert report.max_complementary() < 0.2
        assert report.is_approximately_optimal(
            stationarity_tol=1e-2, primal_tol=1e-2, complementary_tol=0.2
        )

    def test_detects_non_optimal_point(self, converged):
        ts, _result = converged
        arbitrary = {n: 10.0 for n in ts.subtask_names}
        report = kkt_report(ts, arbitrary, {r: 1.0 for r in ts.resources}, {})
        assert not report.is_approximately_optimal()

    def test_primal_residuals_flag_violations(self, base_ts):
        tight = {n: 1.5 for n in base_ts.subtask_names}
        report = kkt_report(base_ts, tight, {}, {})
        assert report.max_primal() > 0.1
        assert any(v > 0 for v in report.primal_resource.values())
