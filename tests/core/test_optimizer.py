"""Integration-grade unit tests for the LLA optimizer."""

import pytest

from repro.baselines.centralized import solve_centralized
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.stepsize import FixedStepSize
from repro.errors import OptimizationError
from repro.model.utility import ExponentialUtility
from tests.conftest import make_chain_taskset


class TestConvergence:
    def test_base_workload_converges(self, base_ts):
        result = LLAOptimizer(base_ts, LLAConfig(max_iterations=1500)).run()
        assert result.converged
        assert base_ts.is_feasible(result.latencies, tol=1e-2)

    def test_matches_centralized_optimum(self, base_ts):
        result = LLAOptimizer(base_ts, LLAConfig(max_iterations=1500)).run()
        oracle = solve_centralized(base_ts)
        assert result.utility == pytest.approx(oracle.utility, abs=0.5)

    def test_critical_paths_bind(self, base_ts):
        # The saturated workload pins every task at its critical time.
        result = LLAOptimizer(base_ts, LLAConfig(max_iterations=1500)).run()
        for task in base_ts.tasks:
            _, crit = task.critical_path(result.latencies)
            assert crit == pytest.approx(task.critical_time, rel=0.01)

    def test_single_chain_task(self):
        ts = make_chain_taskset()
        result = LLAOptimizer(ts, LLAConfig(max_iterations=800)).run()
        assert result.converged
        assert ts.is_feasible(result.latencies, tol=1e-2)

    def test_prices_stay_nonnegative(self, base_ts):
        opt = LLAOptimizer(base_ts, LLAConfig(max_iterations=100,
                                              stop_on_convergence=False))
        result = opt.run()
        for record in result.history:
            assert all(v >= 0.0 for v in record.resource_prices.values())
            assert all(v >= 0.0 for v in record.path_prices.values())

    def test_latencies_within_bounds_every_iteration(self, base_ts):
        opt = LLAOptimizer(base_ts, LLAConfig(max_iterations=100,
                                              stop_on_convergence=False))
        result = opt.run()
        for record in result.history:
            for task in base_ts.tasks:
                for sub in task.subtasks:
                    lat = record.latencies[sub.name]
                    assert lat > 0.0
                    assert lat <= task.critical_time + 1e-9


class TestMechanics:
    def test_history_recorded(self, base_ts):
        result = LLAOptimizer(
            base_ts, LLAConfig(max_iterations=20, stop_on_convergence=False)
        ).run()
        assert len(result.history) == 20
        assert result.history[0].iteration == 1
        assert len(result.utility_trace()) == 20

    def test_history_disabled(self, base_ts):
        result = LLAOptimizer(
            base_ts,
            LLAConfig(max_iterations=20, record_history=False,
                      stop_on_convergence=False),
        ).run()
        assert result.history == []

    def test_on_iteration_callback(self, base_ts):
        seen = []
        opt = LLAOptimizer(
            base_ts,
            LLAConfig(max_iterations=5, stop_on_convergence=False),
            on_iteration=seen.append,
        )
        opt.run()
        assert [r.iteration for r in seen] == [1, 2, 3, 4, 5]

    def test_step_returns_record(self, base_ts):
        opt = LLAOptimizer(base_ts, LLAConfig())
        record = opt.step()
        assert record.iteration == 1
        assert set(record.latencies) == set(base_ts.subtask_names)
        assert set(record.resource_loads) == set(base_ts.resources)

    def test_reset_restores_initial_state(self, base_ts):
        opt = LLAOptimizer(base_ts, LLAConfig(max_iterations=50,
                                              stop_on_convergence=False))
        initial = dict(opt.latencies)
        opt.run()
        opt.reset()
        assert opt.iteration == 0
        assert opt.latencies == pytest.approx(initial)
        assert all(
            v == opt.config.initial_resource_price
            for v in opt.resource_prices.prices.values()
        )

    def test_deterministic(self, base_ts):
        from repro.workloads.paper import base_workload
        r1 = LLAOptimizer(base_workload(), LLAConfig(max_iterations=100)).run()
        r2 = LLAOptimizer(base_workload(), LLAConfig(max_iterations=100)).run()
        assert r1.latencies == pytest.approx(r2.latencies)

    def test_load_trace(self, base_ts):
        result = LLAOptimizer(
            base_ts, LLAConfig(max_iterations=10, stop_on_convergence=False)
        ).run()
        trace = result.load_trace("r0")
        assert len(trace) == 10


class TestConfig:
    def test_rejects_zero_iterations(self, base_ts):
        with pytest.raises(OptimizationError):
            LLAOptimizer(base_ts, LLAConfig(max_iterations=0))

    @pytest.mark.parametrize("kwargs", [
        {"initial_resource_price": 0.0},
        {"initial_resource_price": -1.0},
        {"initial_path_price": -0.5},
    ])
    def test_rejects_bad_initial_prices(self, kwargs):
        # Regression (REP015): these knobs used to sail through
        # construction unvalidated.
        with pytest.raises(OptimizationError):
            LLAConfig(**kwargs)

    def test_fixed_factory(self):
        config = LLAConfig.fixed(0.5, max_iterations=10)
        assert isinstance(config.step_policy, FixedStepSize)
        assert config.max_iterations == 10

    def test_strict_rejects_nonconcave_utility(self):
        ts = make_chain_taskset()
        ts.tasks[0].utility = ExponentialUtility(ts.tasks[0].critical_time)
        with pytest.raises(OptimizationError, match="non-concave"):
            LLAOptimizer(ts, LLAConfig(strict=True))

    def test_non_strict_allows_nonconcave(self):
        ts = make_chain_taskset()
        ts.tasks[0].utility = ExponentialUtility(ts.tasks[0].critical_time)
        LLAOptimizer(ts, LLAConfig(strict=False))  # must not raise

    def test_refresh_model_after_share_swap(self, base_ts):
        from repro.model.share import CorrectedShare
        opt = LLAOptimizer(base_ts, LLAConfig())
        base = base_ts.share_function("T11")
        base_ts.set_share_function("T11", CorrectedShare(base, error=2.0))
        opt.refresh_model()
        lo, _hi = opt.allocators["T1"]._bounds["T11"]
        assert lo == pytest.approx(base.min_latency(1.0) + 2.0)
