"""Tests for enactment policies (Section 4.4's "enact on significant
change" behaviour)."""

import pytest

from repro.core.enactment import (
    AlwaysEnact,
    PeriodicEnactment,
    ThresholdEnactment,
)
from repro.errors import OptimizationError


class TestAlwaysEnact:
    def test_always_true(self):
        policy = AlwaysEnact()
        for _ in range(5):
            assert policy.should_enact({"s": 0.5})


class TestThresholdEnactment:
    def test_first_call_enacts(self):
        policy = ThresholdEnactment(threshold=0.05)
        assert policy.should_enact({"s": 0.5})
        policy.notify_enacted({"s": 0.5})

    def test_small_change_skipped(self):
        policy = ThresholdEnactment(threshold=0.05)
        policy.notify_enacted({"s": 0.5})
        assert not policy.should_enact({"s": 0.51})   # 2% < 5%
        assert policy.skips == 1

    def test_large_change_enacts(self):
        policy = ThresholdEnactment(threshold=0.05)
        policy.notify_enacted({"s": 0.5})
        assert policy.should_enact({"s": 0.56})       # 12% > 5%

    def test_new_subtask_forces_enactment(self):
        policy = ThresholdEnactment(threshold=0.05)
        policy.notify_enacted({"s": 0.5})
        assert policy.should_enact({"s": 0.5, "t": 0.2})

    def test_max_interval_bounds_staleness(self):
        policy = ThresholdEnactment(threshold=0.5, max_interval=3)
        policy.notify_enacted({"s": 0.5})
        for _ in range(3):
            assert not policy.should_enact({"s": 0.5})
        assert policy.should_enact({"s": 0.5})        # staleness bound hit

    def test_counters(self):
        policy = ThresholdEnactment(threshold=0.05)
        policy.notify_enacted({"s": 0.5})
        policy.should_enact({"s": 0.5})
        policy.should_enact({"s": 0.9})
        policy.notify_enacted({"s": 0.9})
        assert policy.enactments == 2
        assert policy.skips == 1

    def test_validation(self):
        with pytest.raises(OptimizationError):
            ThresholdEnactment(threshold=0.0)
        with pytest.raises(OptimizationError):
            ThresholdEnactment(max_interval=-1)


class TestPeriodicEnactment:
    def test_period(self):
        policy = PeriodicEnactment(interval=3)
        decisions = [policy.should_enact({}) for _ in range(7)]
        assert decisions == [True, False, False, True, False, False, True]

    def test_validation(self):
        with pytest.raises(OptimizationError):
            PeriodicEnactment(interval=0)


class TestClosedLoopIntegration:
    def test_threshold_policy_reduces_enactments(self):
        from repro.core.optimizer import LLAConfig
        from repro.sim.closedloop import ClosedLoopRuntime
        from repro.workloads.paper import prototype_workload

        policy = ThresholdEnactment(threshold=0.05)
        runtime = ClosedLoopRuntime(
            prototype_workload(), window=500.0, seed=5,
            optimizer_config=LLAConfig(max_iterations=2000),
            optimizer_steps_per_epoch=100,
            enactment=policy,
        )
        runtime.run_epochs(6)   # no correction: shares barely move
        skipped = sum(1 for rec in runtime.history if not rec.enacted)
        assert skipped >= 4
        # With correction on, shares move and enactments resume.
        runtime.enable_correction()
        runtime.run_epochs(3)
        assert any(rec.enacted for rec in runtime.history[-3:])
