"""Per-phase timers: recorded on both backends, never perturbing them."""

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.phases import PHASES, PhaseTimers
from repro.telemetry import Telemetry
from repro.workloads.paper import base_workload

PHASE_METRICS = [f"lla.phase.{name}_seconds" for name in PHASES]


def run(backend, telemetry=None, iterations=60):
    return LLAOptimizer(
        base_workload(),
        LLAConfig(max_iterations=iterations, backend=backend),
        telemetry=telemetry,
    ).run()


class TestPhaseTimers:
    def test_scalar_backend_records_all_phases(self):
        telemetry = Telemetry.in_memory()
        result = run("scalar", telemetry)
        snapshot = telemetry.registry.snapshot()
        for name in PHASE_METRICS:
            assert name in snapshot, f"missing {name}"
            assert snapshot[name]["count"] == result.iterations

    def test_vectorized_backend_records_all_phases(self):
        telemetry = Telemetry.in_memory()
        result = run("vectorized", telemetry)
        snapshot = telemetry.registry.snapshot()
        for name in PHASE_METRICS:
            assert name in snapshot, f"missing {name}"
            assert snapshot[name]["count"] == result.iterations

    def test_disabled_registry_records_nothing(self):
        telemetry = Telemetry.disabled()
        run("scalar", telemetry)
        assert not telemetry.registry.snapshot()

    def test_lap_observes_interval(self):
        telemetry = Telemetry.in_memory()
        timers = PhaseTimers(telemetry)
        started = 0.0
        timers.observe("allocate", 0.25)
        snap = telemetry.registry.snapshot()["lla.phase.allocate_seconds"]
        assert snap["count"] == 1
        assert abs(snap["sum"] - 0.25) < 1e-12
        assert timers.lap("classify", started) > started


class TestTimingDoesNotPerturb:
    def test_scalar_iterates_identical_with_timing_on(self):
        plain = run("scalar")
        timed = run("scalar", Telemetry.in_memory())
        assert timed.latencies == plain.latencies
        assert timed.utility == plain.utility
        assert timed.utility_trace() == plain.utility_trace()

    def test_vectorized_iterates_identical_with_tracing_on(self):
        # The acceptance bar: bit-identity for the vectorized backend
        # with full telemetry (metrics + tracing) enabled.
        plain = run("vectorized")
        telemetry = Telemetry.in_memory()
        traced = run("vectorized", telemetry)
        assert traced.latencies == plain.latencies
        assert traced.utility == plain.utility
        assert traced.utility_trace() == plain.utility_trace()
        assert [r.resource_prices for r in traced.history] == \
            [r.resource_prices for r in plain.history]

    def test_backends_agree_with_telemetry_enabled(self):
        scalar = run("scalar", Telemetry.in_memory())
        vector = run("vectorized", Telemetry.in_memory())
        assert scalar.iterations == vector.iterations
        assert abs(scalar.utility - vector.utility) < 1e-9
