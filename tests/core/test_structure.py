"""Tests for the canonical compiled structure: ordering, serialization,
fingerprints, and corruption detection.

``TaskSetStructure`` is the single shared representation of a compiled
task set — the vectorized engine, the shard planner, the distributed
runtime, the simulator and the service snapshots all consume it — so its
serialization must round-trip bit-exactly and its fingerprint must be a
pure function of the *problem*, not of declaration order or transport.
"""

import json

import numpy as np
import pytest

from repro.core.structure import (
    _FLOAT_ARRAYS,
    _INDEX_ARRAYS,
    compile_structure,
    structure_from_dict,
    structure_to_dict,
)
from repro.errors import ModelError
from repro.model.task import TaskSet
from repro.workloads.generator import GeneratorConfig, random_workload
from repro.workloads.paper import base_workload

_ALL_ARRAYS = _INDEX_ARRAYS + _FLOAT_ARRAYS + (
    "ut_kind", "hyper_mask", "path_res_inc",
)


def _assert_structures_equal(a, b):
    """Bit-exact equality of two compiled structures."""
    assert b.subtask_names == a.subtask_names
    assert b.resource_names == a.resource_names
    assert b.task_names == a.task_names
    assert b.path_keys == a.path_keys
    assert b.max_latency_factor == a.max_latency_factor
    for name in _ALL_ARRAYS:
        lhs, rhs = getattr(a, name), getattr(b, name)
        assert rhs.dtype == lhs.dtype, name
        assert np.array_equal(rhs, lhs), name


class TestCanonicalOrdering:
    def test_task_declaration_order_is_irrelevant(self):
        """Regression for the sharded/serialized world: a permuted task
        declaration must compile to the identical structure — same
        arrays, same fingerprint — or fingerprint-keyed caches and
        snapshot verification would miss on equal problems."""
        ts = base_workload()
        permuted = TaskSet(tuple(reversed(ts.tasks)),
                           ts.resources.values(),
                           allow_shared_resources=True)
        s1 = compile_structure(ts)
        s2 = compile_structure(permuted)
        _assert_structures_equal(s1, s2)
        assert s2.fingerprint == s1.fingerprint

    def test_task_names_are_sorted(self):
        s = compile_structure(base_workload())
        assert list(s.task_names) == sorted(s.task_names)

    def test_distinct_problems_distinct_fingerprints(self):
        s1 = compile_structure(base_workload())
        s2 = compile_structure(base_workload(k=3.0))
        assert s2.fingerprint != s1.fingerprint


class TestRoundTrip:
    def test_round_trip_is_bit_exact(self):
        s = compile_structure(base_workload())
        restored = structure_from_dict(structure_to_dict(s))
        _assert_structures_equal(s, restored)
        assert restored.fingerprint == s.fingerprint

    def test_round_trip_through_json_transport(self):
        """float64 → repr → float64 is exact, so a JSON hop (the
        CheckpointStore's on-disk format) must preserve every bit."""
        ts = random_workload(GeneratorConfig(n_tasks=6, n_resources=8),
                             seed=11)
        s = compile_structure(ts)
        wire = json.loads(json.dumps(structure_to_dict(s)))
        restored = structure_from_dict(wire)
        _assert_structures_equal(s, restored)
        assert restored.fingerprint == s.fingerprint

    def test_rebound_structure_can_refresh(self):
        ts = base_workload()
        s = compile_structure(ts)
        restored = structure_from_dict(structure_to_dict(s), taskset=ts)
        restored.refresh_model()          # no-op mutation: same model
        assert restored.fingerprint == s.fingerprint

    def test_unbound_structure_cannot_refresh(self):
        restored = structure_from_dict(
            structure_to_dict(compile_structure(base_workload()))
        )
        with pytest.raises(ModelError, match="unbound"):
            restored.refresh_model()


class TestCorruptionDetection:
    def _payload(self):
        return structure_to_dict(compile_structure(base_workload()))

    def test_flipped_coefficient_is_detected(self):
        payload = self._payload()
        payload["cost"][0] += 1e-9
        with pytest.raises(ModelError, match="fingerprint"):
            structure_from_dict(payload)

    def test_renamed_subtask_is_detected(self):
        payload = self._payload()
        payload["subtask_names"][0] = "imposter"
        with pytest.raises(ModelError, match="fingerprint"):
            structure_from_dict(payload)

    def test_truncated_array_is_detected(self):
        payload = self._payload()
        payload["sub_exec"].pop()
        with pytest.raises(ModelError):
            structure_from_dict(payload)

    def test_missing_key_is_detected(self):
        payload = self._payload()
        del payload["alpha"]
        with pytest.raises(ModelError, match="malformed"):
            structure_from_dict(payload)

    def test_unknown_format_version_is_rejected(self):
        payload = self._payload()
        payload["format"] = 999
        with pytest.raises(ModelError, match="format"):
            structure_from_dict(payload)

    def test_tampered_fingerprint_is_rejected(self):
        payload = self._payload()
        payload["fingerprint"] = "0" * 64
        with pytest.raises(ModelError, match="fingerprint"):
            structure_from_dict(payload)
