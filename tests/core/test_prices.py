"""Unit tests for the price updates (Eqs. 8–9, gradient projection)."""

import math

import pytest

from repro.errors import OptimizationError
from repro.core.prices import (
    PathPriceUpdater,
    ResourcePriceUpdater,
    update_path_price,
    update_resource_price,
)
from repro.core.state import PathKey
from repro.core.stepsize import FixedStepSize


class TestUpdateRules:
    def test_overload_raises_resource_price(self):
        new = update_resource_price(price=1.0, gamma=1.0,
                                    availability=1.0, load=1.5)
        assert new == pytest.approx(1.5)

    def test_slack_lowers_resource_price(self):
        new = update_resource_price(price=1.0, gamma=1.0,
                                    availability=1.0, load=0.4)
        assert new == pytest.approx(0.4)

    def test_resource_price_projection(self):
        new = update_resource_price(price=0.1, gamma=1.0,
                                    availability=1.0, load=0.0)
        assert new == 0.0

    def test_violated_path_raises_price(self):
        new = update_path_price(price=0.0, gamma=1.0,
                                path_latency=90.0, critical_time=45.0)
        assert new == pytest.approx(1.0)

    def test_slack_path_decays_price(self):
        new = update_path_price(price=2.0, gamma=1.0,
                                path_latency=22.5, critical_time=45.0)
        assert new == pytest.approx(1.5)

    def test_path_price_projection(self):
        new = update_path_price(price=0.1, gamma=1.0,
                                path_latency=0.0, critical_time=45.0)
        assert new == 0.0

    def test_gamma_scales_step(self):
        small = update_resource_price(1.0, 0.1, 1.0, 2.0)
        large = update_resource_price(1.0, 10.0, 1.0, 2.0)
        assert large - 1.0 == pytest.approx(100.0 * (small - 1.0))


class TestResourcePriceUpdater:
    def test_initialization_and_reset(self, base_ts):
        up = ResourcePriceUpdater(base_ts, initial_price=2.0)
        assert all(v == 2.0 for v in up.prices.values())
        up.prices["r0"] = 99.0
        up.reset()
        assert up.prices["r0"] == 2.0

    def test_rejects_negative_initial(self, base_ts):
        with pytest.raises(ValueError):
            ResourcePriceUpdater(base_ts, initial_price=-1.0)

    def test_congested_classification(self, base_ts):
        up = ResourcePriceUpdater(base_ts)
        loads = {r: 0.5 for r in base_ts.resources}
        loads["r3"] = 1.2
        assert up.congested(loads) == ("r3",)

    def test_update_applies_eq8(self, base_ts):
        up = ResourcePriceUpdater(base_ts, initial_price=1.0)
        lat = {n: 5.0 for n in base_ts.subtask_names}
        policy = FixedStepSize(1.0)
        new = up.update(lat, policy)
        for rname in base_ts.resources:
            load = base_ts.resource_load(rname, lat)
            expected = max(0.0, 1.0 - 1.0 * (1.0 - load))
            assert new[rname] == pytest.approx(expected)


class TestPathPriceUpdater:
    def test_one_price_per_path(self, base_ts):
        t2 = base_ts.task("T2")
        up = PathPriceUpdater(t2)
        assert len(up.prices) == len(t2.graph.paths)

    def test_congested_paths(self, base_ts):
        t1 = base_ts.task("T1")
        up = PathPriceUpdater(t1)
        # All latencies huge: every path congested.
        lat = {n: 100.0 for n in base_ts.subtask_names}
        assert len(up.congested(lat)) == len(t1.graph.paths)
        # All tiny: none.
        lat = {n: 0.1 for n in base_ts.subtask_names}
        assert up.congested(lat) == ()

    def test_update_applies_eq9(self, base_ts):
        t3 = base_ts.task("T3")
        up = PathPriceUpdater(t3, initial_price=1.0)
        lat = {n: 10.0 for n in base_ts.subtask_names}
        policy = FixedStepSize(2.0)
        new = up.update(lat, policy)
        key = PathKey("T3", 0)
        path_lat = 60.0  # 6-subtask chain at 10ms each
        expected = max(0.0, 1.0 - 2.0 * (1.0 - path_lat / 53.0))
        assert new[key] == pytest.approx(expected)

    def test_reset(self, base_ts):
        up = PathPriceUpdater(base_ts.task("T1"), initial_price=0.0)
        up.prices[PathKey("T1", 0)] = 5.0
        up.reset()
        assert up.prices[PathKey("T1", 0)] == 0.0


class TestDegenerateCriticalTime:
    """Regression: Eq. 9's gradient divides by ``C_i``.  A zero critical
    time used to crash with ZeroDivisionError deep in the update; an
    infinite one silently froze the gradient at a constant −γ.  Both are
    now rejected up front, at the update and at updater construction."""

    @pytest.mark.parametrize("bad", [0.0, math.inf, -math.inf, math.nan])
    def test_update_rejects_bad_critical_time(self, bad):
        with pytest.raises(OptimizationError, match="critical time"):
            update_path_price(price=1.0, gamma=1.0,
                              path_latency=10.0, critical_time=bad)

    @pytest.mark.parametrize("bad", [0.0, math.inf])
    def test_updater_rejects_bad_task(self, base_ts, bad):
        task = base_ts.task("T1")
        # Task's own constructor validates, so corrupt the attribute the
        # way a buggy runtime mutation would.
        task.critical_time = bad
        with pytest.raises(OptimizationError, match="T1"):
            PathPriceUpdater(task)

    def test_update_method_guarded_after_mutation(self, base_ts):
        task = base_ts.task("T2")
        up = PathPriceUpdater(task)
        task.critical_time = 0.0
        lat = {n: 1.0 for n in base_ts.subtask_names}
        with pytest.raises(OptimizationError):
            up.update(lat, FixedStepSize(1.0))
