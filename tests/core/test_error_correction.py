"""Unit tests for online model-error correction (Section 6.3)."""

import numpy as np
import pytest

from repro.core.error_correction import ErrorCorrector, ErrorSample
from repro.errors import OptimizationError
from repro.model.share import CorrectedShare
from tests.conftest import make_chain_taskset


class TestObservation:
    def test_first_sample_initializes(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts, alpha=0.2)
        err = corrector.observe(ErrorSample("s0", predicted=35.0, observed=17.5))
        assert err == pytest.approx(-17.5)
        assert corrector.error("s0") == pytest.approx(-17.5)

    def test_exponential_smoothing(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts, alpha=0.5)
        corrector.observe(ErrorSample("s0", 30.0, 20.0))   # error -10
        corrector.observe(ErrorSample("s0", 30.0, 30.0))   # error 0
        assert corrector.error("s0") == pytest.approx(-5.0)

    def test_batch_uses_high_percentile(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts, percentile=95.0)
        samples = list(np.linspace(10.0, 20.0, 101))
        corrector.observe_batch("s0", predicted=30.0,
                                observed_latencies=samples)
        # 95th percentile of 10..20 is 19.5: error = -10.5.
        assert corrector.error("s0") == pytest.approx(-10.5)

    def test_empty_batch_is_noop(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts)
        assert corrector.observe_batch("s0", 30.0, []) is None
        assert corrector.error("s0") == 0.0

    def test_raw_error_history(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts)
        corrector.observe(ErrorSample("s0", 30.0, 25.0))
        corrector.observe(ErrorSample("s0", 30.0, 28.0))
        assert corrector.raw_errors("s0") == [-5.0, -2.0]

    def test_unknown_subtask_rejected(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts)
        with pytest.raises(OptimizationError):
            corrector.observe(ErrorSample("ghost", 1.0, 1.0))


class TestApplication:
    def test_apply_wraps_share_function(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts)
        corrector.observe(ErrorSample("s0", 30.0, 20.0))
        applied = corrector.apply("s0")
        assert applied == pytest.approx(-10.0)
        fn = ts.share_function("s0")
        assert isinstance(fn, CorrectedShare)
        assert fn.error == pytest.approx(-10.0)

    def test_apply_is_idempotent_wrap(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts)
        corrector.observe(ErrorSample("s0", 30.0, 20.0))
        corrector.apply("s0")
        first = ts.share_function("s0")
        corrector.observe(ErrorSample("s0", 30.0, 25.0))
        corrector.apply("s0")
        assert ts.share_function("s0") is first   # same wrapper, new error

    def test_apply_all_touches_only_initialized(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts)
        corrector.observe(ErrorSample("s1", 30.0, 22.0))
        applied = corrector.apply_all()
        assert set(applied) == {"s1"}
        assert not isinstance(ts.share_function("s0"), CorrectedShare)

    def test_optional_clamp(self):
        ts = make_chain_taskset()
        corrector = ErrorCorrector(ts, max_abs_correction=5.0)
        corrector.observe(ErrorSample("s0", 40.0, 10.0))   # error -30
        applied = corrector.apply("s0")
        assert applied == -5.0

    def test_corrected_model_lowers_required_share(self):
        ts = make_chain_taskset()
        raw = ts.share_function("s0")
        raw_share = raw.share(10.0)
        corrector = ErrorCorrector(ts)
        corrector.observe(ErrorSample("s0", 30.0, 20.0))
        corrector.apply("s0")
        assert ts.share_function("s0").share(10.0) < raw_share


class TestValidation:
    def test_rejects_bad_alpha(self):
        ts = make_chain_taskset()
        with pytest.raises(OptimizationError):
            ErrorCorrector(ts, alpha=0.0)
        with pytest.raises(OptimizationError):
            ErrorCorrector(ts, alpha=1.5)

    def test_rejects_bad_percentile(self):
        ts = make_chain_taskset()
        with pytest.raises(OptimizationError):
            ErrorCorrector(ts, percentile=0.0)

    def test_rejects_bad_clamp(self):
        ts = make_chain_taskset()
        with pytest.raises(OptimizationError):
            ErrorCorrector(ts, max_abs_correction=0.0)
