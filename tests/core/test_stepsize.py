"""Unit tests for step-size policies (Section 5.2's heuristic)."""

import pytest

from repro.core.state import PathKey
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize
from repro.errors import OptimizationError


class TestFixedStepSize:
    def test_uniform(self):
        policy = FixedStepSize(2.5)
        assert policy.resource_gamma("anything") == 2.5
        assert policy.path_gamma(PathKey("t", 0)) == 2.5

    def test_split_gammas(self):
        policy = FixedStepSize(1.0, path_gamma=0.01)
        assert policy.resource_gamma("r") == 1.0
        assert policy.path_gamma(PathKey("t", 0)) == 0.01

    def test_observe_is_noop(self):
        policy = FixedStepSize(1.0)
        policy.observe(["r0"], [PathKey("t", 0)])
        assert policy.resource_gamma("r0") == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(OptimizationError):
            FixedStepSize(0.0)
        with pytest.raises(OptimizationError):
            FixedStepSize(1.0, path_gamma=-1.0)


class TestAdaptiveStepSize:
    def test_initial_gamma(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        assert policy.resource_gamma("r0") == 1.0

    def test_doubles_while_congested(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0, max_gamma=64.0)
        for expected in (2.0, 4.0, 8.0):
            policy.observe(["r0"], [])
            assert policy.resource_gamma("r0") == expected

    def test_caps_at_max_gamma(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0, max_gamma=4.0)
        for _ in range(10):
            policy.observe(["r0"], [])
        assert policy.resource_gamma("r0") == 4.0

    def test_reverts_when_uncongested(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        policy.observe(["r0"], [])
        policy.observe(["r0"], [])
        assert policy.resource_gamma("r0") == 4.0
        policy.observe([], [])
        assert policy.resource_gamma("r0") == 1.0

    def test_paths_through_congested_resource_double(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        # r3 hosts T14 (task 1) and T27 (task 2).
        policy.observe(["r3"], [])
        t1_paths_via_r3 = [
            PathKey("T1", i)
            for i in base_ts.task("T1").graph.paths_through("T14")
        ]
        for key in t1_paths_via_r3:
            assert policy.path_gamma(key) == 2.0
        # A path not crossing r3 keeps its initial gamma: T3 is a chain on
        # r0,r1,r2,r4,r6,r7.
        assert policy.path_gamma(PathKey("T3", 0)) == 1.0

    def test_unaffected_resources_keep_initial(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        policy.observe(["r0"], [])
        assert policy.resource_gamma("r1") == 1.0

    def test_reset(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        policy.observe(["r0", "r1"], [])
        policy.reset()
        assert policy.resource_gamma("r0") == 1.0
        assert all(
            policy.path_gamma(k) == 1.0 for k in policy._path_gamma
        )

    def test_rejects_bad_params(self, base_ts):
        with pytest.raises(OptimizationError):
            AdaptiveStepSize(base_ts, initial_gamma=0.0)
        with pytest.raises(OptimizationError):
            AdaptiveStepSize(base_ts, growth=1.0)


class TestDirectPathCongestion:
    """Regression: a path violating its *own* critical-time constraint must
    escalate its γ — observe() used to ignore ``congested_paths``
    entirely, so latency constraints never got the Section 5.2 boost."""

    def test_directly_congested_path_doubles(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        key = PathKey("T3", 0)
        for expected in (2.0, 4.0, 8.0):
            policy.observe([], [key])
            assert policy.path_gamma(key) == expected
        # Other paths and all resources keep their initial γ.
        assert policy.path_gamma(PathKey("T1", 0)) == 1.0
        assert policy.resource_gamma("r0") == 1.0

    def test_snaps_back_when_constraint_clears(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        key = PathKey("T3", 0)
        policy.observe([], [key])
        policy.observe([], [key])
        assert policy.path_gamma(key) == 4.0
        policy.observe([], [])
        assert policy.path_gamma(key) == 1.0

    def test_caps_at_max_gamma(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0, max_gamma=4.0)
        key = PathKey("T3", 0)
        for _ in range(10):
            policy.observe([], [key])
        assert policy.path_gamma(key) == 4.0

    def test_direct_trigger_does_not_inherit_coverage_boost(self, base_ts):
        """The two triggers escalate independently: a fresh direct
        violation starts doubling from the initial γ even if resource
        coverage had already escalated the path (inheriting the boosted γ
        makes the first Eq. 9 step huge and locks limit cycles)."""
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        key = PathKey("T3", 0)  # T3 is a chain through r0.
        policy.observe(["r0"], [])
        policy.observe(["r0"], [])
        assert policy.path_gamma(key) == 4.0  # coverage escalation
        # r0 decongests; now the path itself is violated for the first
        # time: γ restarts at 2 rather than continuing from 4.
        policy.observe([], [key])
        assert policy.path_gamma(key) == 2.0

    def test_both_triggers_serve_the_larger(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        key = PathKey("T3", 0)
        policy.observe(["r0"], [])
        policy.observe(["r0"], [])          # coverage γ → 4
        policy.observe(["r0"], [key])       # coverage γ → 8, direct γ → 2
        assert policy.path_gamma(key) == 8.0

    def test_reset_clears_direct_state(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        key = PathKey("T3", 0)
        policy.observe([], [key])
        policy.reset()
        assert policy.path_gamma(key) == 1.0
        policy.observe([], [key])
        assert policy.path_gamma(key) == 2.0


class TestChurnRobustness:
    """Regression tests for task-set churn: congestion feedback can
    mention resources and paths the policy was not built for (the
    optimizer was just rebuilt for a different membership, or a stale
    agent reports against an old task set)."""

    def test_observe_ignores_unknown_resource(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        # Must not raise, and must not disturb known state.
        policy.observe(["r0", "no-such-resource"], [])
        assert policy.resource_gamma("r0") == 2.0
        assert policy.resource_gamma("no-such-resource") == 1.0

    def test_observe_ignores_unknown_path(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        ghost = PathKey("departed-task", 3)
        policy.observe([], [ghost])
        assert policy.path_gamma(ghost) == 1.0

    def test_unknown_keys_report_initial_gamma(self, base_ts):
        policy = AdaptiveStepSize(base_ts, initial_gamma=0.5)
        assert policy.resource_gamma("never-registered") == 0.5
        assert policy.path_gamma(PathKey("never-registered", 0)) == 0.5

    def test_rebuilt_policy_does_not_inherit_escalation(self, base_ts):
        """Rebuilding the policy for a churned task set (what the service
        does on every epoch) must start every γ back at the initial
        value, even for names shared with the escalated predecessor."""
        old = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        for _ in range(3):
            old.observe(list(base_ts.resources), [])
        assert old.resource_gamma("r0") == 8.0
        new = AdaptiveStepSize(base_ts, initial_gamma=1.0)
        for rname in base_ts.resources:
            assert new.resource_gamma(rname) == 1.0
        for key, gamma in new._path_gamma.items():
            assert gamma == 1.0
