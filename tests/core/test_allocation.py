"""Unit tests for the latency-allocation step (Eq. 7)."""

import math

import pytest

from repro.core.allocation import LatencyAllocator, stationary_latency
from repro.core.state import PathKey
from repro.model.share import CorrectedShare, HyperbolicShare, PowerLawShare
from repro.model.utility import LogUtility
from tests.conftest import make_chain_taskset


class TestStationaryLatency:
    def test_hyperbolic_closed_form(self):
        # mu * cost / lat^2 = pull  ->  lat = sqrt(mu*cost/pull)
        fn = HyperbolicShare(exec_time=4.0, lag=1.0)
        lat = stationary_latency(fn, price=20.0, pull=1.0)
        assert lat == pytest.approx(math.sqrt(100.0))

    def test_powerlaw_closed_form(self):
        fn = PowerLawShare(cost=5.0, alpha=2.0)
        price, pull = 8.0, 2.0
        lat = stationary_latency(fn, price, pull)
        # Verify stationarity numerically: price * (-dshare) == pull.
        assert price * (-fn.dshare_dlat(lat)) == pytest.approx(pull)

    def test_corrected_share_shifts_by_error(self):
        base = HyperbolicShare(exec_time=4.0, lag=1.0)
        corrected = CorrectedShare(base, error=-3.0)
        raw = stationary_latency(base, 20.0, 1.0)
        shifted = stationary_latency(corrected, 20.0, 1.0)
        assert shifted == pytest.approx(raw - 3.0)

    def test_zero_price_wants_minimum(self):
        fn = HyperbolicShare(exec_time=4.0, lag=1.0)
        assert stationary_latency(fn, price=0.0, pull=1.0) == 0.0

    def test_zero_pull_wants_maximum(self):
        fn = HyperbolicShare(exec_time=4.0, lag=1.0)
        assert math.isinf(stationary_latency(fn, price=1.0, pull=0.0))

    def test_generic_share_function_bracketing(self):
        class ExpShare(PowerLawShare):
            """Not recognized by the closed-form dispatch."""
        # Subclass IS recognized via isinstance; make a truly generic one.
        class Generic:
            def __init__(self):
                self._inner = HyperbolicShare(exec_time=4.0, lag=1.0)
            def share(self, lat):
                return self._inner.share(lat)
            def dshare_dlat(self, lat):
                return self._inner.dshare_dlat(lat)
            def latency_for_share(self, share):
                return self._inner.latency_for_share(share)
            def min_latency(self, availability):
                return self._inner.min_latency(availability)
        lat = stationary_latency(Generic(), price=20.0, pull=1.0)
        assert lat == pytest.approx(10.0, rel=1e-6)


class TestAllocatorClosedForm:
    def test_stationarity_holds_at_interior_solution(self, base_ts):
        task = base_ts.tasks[0]
        allocator = LatencyAllocator(base_ts, task)
        prices = {r: 50.0 for r in base_ts.resources}
        path_prices = {PathKey(task.name, i): 0.5
                       for i in range(len(task.graph.paths))}
        latencies = allocator.allocate(prices, path_prices)
        for sub in task.subtasks:
            lat = latencies[sub.name]
            lo, hi = allocator._bounds[sub.name]
            if lo + 1e-9 < lat < hi - 1e-9:
                fn = base_ts.share_function(sub.name)
                pull = task.weight(sub.name) + \
                    allocator.path_price_sum(sub.name, path_prices)
                residual = prices[sub.resource] * (-fn.dshare_dlat(lat)) - pull
                assert abs(residual) < 1e-8

    def test_respects_lower_bound(self, chain_ts):
        task = chain_ts.tasks[0]
        allocator = LatencyAllocator(chain_ts, task)
        # Tiny price: unconstrained solution would be ~0.
        latencies = allocator.allocate({f"r{i}": 1e-9 for i in range(3)}, {})
        for sub in task.subtasks:
            fn = chain_ts.share_function(sub.name)
            assert latencies[sub.name] >= fn.min_latency(1.0) - 1e-12

    def test_respects_critical_time_bound(self, chain_ts):
        task = chain_ts.tasks[0]
        allocator = LatencyAllocator(chain_ts, task)
        # Huge price: unconstrained solution would exceed the deadline.
        latencies = allocator.allocate({f"r{i}": 1e9 for i in range(3)}, {})
        for sub in task.subtasks:
            assert latencies[sub.name] <= task.critical_time + 1e-9

    def test_rate_share_bound(self):
        # Period 50ms, exec 2ms -> min share 0.04 -> lat <= 3/0.04 = 75;
        # with a critical time of 200 the rate bound binds first.
        ts = make_chain_taskset(critical_time=200.0, period=50.0)
        task = ts.tasks[0]
        allocator = LatencyAllocator(ts, task)
        latencies = allocator.allocate({f"r{i}": 1e9 for i in range(3)}, {})
        for sub in task.subtasks:
            assert latencies[sub.name] <= 75.0 + 1e-9

    def test_higher_path_price_shrinks_latency(self, chain_ts):
        task = chain_ts.tasks[0]
        allocator = LatencyAllocator(chain_ts, task)
        prices = {f"r{i}": 100.0 for i in range(3)}
        lat_free = allocator.allocate(prices, {})
        lat_priced = allocator.allocate(
            prices, {PathKey(task.name, 0): 10.0}
        )
        for name in task.subtask_names:
            assert lat_priced[name] < lat_free[name]

    def test_refresh_bounds_follows_corrected_model(self):
        ts = make_chain_taskset(critical_time=200.0, period=50.0)
        task = ts.tasks[0]
        allocator = LatencyAllocator(ts, task)
        _lo0, hi0 = allocator._bounds["s0"]
        base = ts.share_function("s0")
        ts.set_share_function("s0", CorrectedShare(base, error=-10.0))
        allocator.refresh_bounds()
        _lo1, hi1 = allocator._bounds["s0"]
        assert hi1 == pytest.approx(hi0 - 10.0)


class TestAllocatorNumeric:
    def test_log_utility_uses_numeric_path(self):
        ts = make_chain_taskset()
        # Swap in a concave non-linear utility.
        task = ts.tasks[0]
        task.utility = LogUtility(task.critical_time)
        allocator = LatencyAllocator(ts, task)
        prices = {f"r{i}": 5.0 for i in range(3)}
        latencies = allocator.allocate(prices, {})
        assert set(latencies) == set(task.subtask_names)
        for name, lat in latencies.items():
            lo, hi = allocator._bounds[name]
            assert lo - 1e-9 <= lat <= hi + 1e-9

    def test_numeric_matches_closed_form_for_linear(self):
        # Force the numeric path on a linear problem by lying about the
        # utility type, and compare with the closed form.
        ts = make_chain_taskset()
        task = ts.tasks[0]
        allocator = LatencyAllocator(ts, task)
        prices = {f"r{i}": 40.0 for i in range(3)}
        path_prices = {PathKey(task.name, 0): 0.3}
        closed = allocator._allocate_closed_form(prices, path_prices)
        numeric = allocator._allocate_numeric(prices, path_prices, closed)
        for name in task.subtask_names:
            assert numeric[name] == pytest.approx(closed[name], abs=1e-4)

    def test_inelastic_task_drifts_to_upper_clamp_without_prices(self):
        from repro.model.utility import InelasticUtility
        ts = make_chain_taskset()
        task = ts.tasks[0]
        task.utility = InelasticUtility(task.critical_time)
        allocator = LatencyAllocator(ts, task)
        latencies = allocator.allocate({f"r{i}": 1.0 for i in range(3)}, {})
        # No marginal benefit and no path pressure: latency maximal.
        for name in task.subtask_names:
            _lo, hi = allocator._bounds[name]
            assert latencies[name] == pytest.approx(hi)
