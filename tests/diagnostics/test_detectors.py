"""Detector unit tests on seeded synthetic trajectories.

The acceptance bar: ``repro diagnose`` must correctly classify three
seeded pathologies — oscillation, stall, infeasible churn — and stay
quiet on a healthy decaying trajectory.
"""

import math

import pytest

from repro.core.state import IterationRecord
from repro.diagnostics import (
    DiagnosticsEngine,
    assess_feasibility_margin,
    detect_escalation_streaks,
    detect_infeasible_churn,
    detect_oscillation,
    detect_stall,
    diagnose_history,
    worst_severity,
)
from repro.errors import DiagnosticsError


def record(i, price, congested=False, feasible=None, load=0.9):
    """One synthetic iteration with a single resource ``r0``."""
    if feasible is None:
        feasible = not congested
    return IterationRecord(
        iteration=i,
        utility=-1.0,
        latencies={"t0.s0": 1.0},
        resource_prices={"r0": price},
        path_prices={},
        resource_loads={"r0": load},
        congested_resources=() if feasible else ("r0",),
        congested_paths=(),
        critical_paths={"t0": 1.0},
    )


def oscillating_history(n=120, lo=1.0, hi=3.0):
    """A price locked in a two-cycle: the classic too-large-gamma cycle."""
    return [record(i, lo if i % 2 == 0 else hi) for i in range(n)]


def stalled_history(n=120, price=5.0):
    """Prices frozen while the resource stays congested."""
    return [record(i, price, congested=True) for i in range(n)]


def churning_history(n=120, period=10):
    """The feasibility bit flips every ``period`` iterations."""
    return [
        record(i, 2.0 + 0.001 * i, feasible=(i // period) % 2 == 0)
        for i in range(n)
    ]


def healthy_history(n=120):
    """A decaying approach to a fixed point, always feasible."""
    return [record(i, 2.0 + math.exp(-0.1 * i)) for i in range(n)]


class TestOscillation:
    def test_flags_limit_cycle(self):
        findings = detect_oscillation(oscillating_history())
        assert len(findings) == 1
        assert findings[0].severity == "critical"
        assert findings[0].details["resource"] == "r0"
        assert findings[0].details["flip_rate"] > 0.9

    def test_ignores_decaying_oscillation(self):
        # Alternating but shrinking: converging, not limit-cycling.
        history = [
            record(i, 2.0 + ((-1) ** i) * math.exp(-0.1 * i))
            for i in range(120)
        ]
        assert detect_oscillation(history) == []

    def test_ignores_healthy_trajectory(self):
        assert detect_oscillation(healthy_history()) == []


class TestStall:
    def test_flags_frozen_infeasible_prices(self):
        findings = detect_stall(stalled_history())
        assert len(findings) == 1
        assert findings[0].severity == "critical"
        assert "r0" in findings[0].details["congested_resources"]

    def test_frozen_but_feasible_is_fine(self):
        history = [record(i, 5.0) for i in range(120)]
        assert detect_stall(history) == []

    def test_moving_prices_are_not_a_stall(self):
        history = [record(i, 5.0 + 0.1 * i, congested=True)
                   for i in range(120)]
        assert detect_stall(history) == []


class TestInfeasibleChurn:
    def test_flags_flapping_feasibility(self):
        findings = detect_infeasible_churn(churning_history())
        assert len(findings) == 1
        assert findings[0].details["flips"] >= 4

    def test_single_crossing_is_fine(self):
        history = [record(i, 2.0, feasible=i > 30) for i in range(120)]
        assert detect_infeasible_churn(history) == []

    def test_severity_critical_when_ending_infeasible(self):
        # 120/10 windows end on an infeasible stretch when the count of
        # periods is even at the tail; build one explicitly.
        history = churning_history(n=115)
        finding = detect_infeasible_churn(history)[0]
        assert finding.severity in ("warning", "critical")
        ends_feasible = not history[-1].congested_resources
        expected = "warning" if ends_feasible else "critical"
        assert finding.severity == expected


class TestEscalationStreaks:
    def test_flags_saturated_heuristic(self):
        findings = detect_escalation_streaks(stalled_history())
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert findings[0].details["streak"] >= 8

    def test_short_streaks_pass(self):
        history = [
            record(i, 2.0, congested=(i % 5 == 0)) for i in range(120)
        ]
        assert detect_escalation_streaks(history) == []


class TestFeasibilityMargin:
    def test_fallback_warns_on_final_congestion(self):
        findings = assess_feasibility_margin(stalled_history())
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert findings[0].details["exact"] is False

    def test_fallback_info_when_feasible(self):
        findings = assess_feasibility_margin(healthy_history())
        assert findings[0].severity == "info"


class TestEngine:
    def test_three_seeded_pathologies_classify_correctly(self):
        cases = {
            "oscillation": oscillating_history(),
            "stall": stalled_history(),
            "infeasible_churn": churning_history(),
        }
        for expected, history in cases.items():
            findings = diagnose_history(history)
            detectors = {f.detector for f in findings}
            assert expected in detectors, (
                f"{expected} not detected; got {sorted(detectors)}"
            )
            # No cross-talk: oscillation must not read as a stall etc.
            others = set(cases) - {expected}
            assert not (others & detectors), (
                f"{expected} misclassified as {others & detectors}"
            )

    def test_healthy_history_yields_no_warnings(self):
        findings = diagnose_history(healthy_history())
        assert worst_severity(findings) in (None, "info")

    def test_report_is_sorted_severe_first(self):
        findings = diagnose_history(stalled_history())
        ranks = [f.rank for f in findings]
        assert ranks == sorted(ranks, reverse=True)

    def test_streaming_observe_matches_batch(self):
        history = oscillating_history()
        engine = DiagnosticsEngine(window=100)
        for rec in history:
            engine.observe(rec)
        assert [
            (f.detector, f.severity) for f in engine.report()
        ] == [
            (f.detector, f.severity)
            for f in diagnose_history(history, window=100)
        ]

    def test_window_bounds_memory(self):
        engine = DiagnosticsEngine(window=16)
        engine.extend(healthy_history(200))
        assert len(engine) == 16

    def test_tiny_window_rejected(self):
        with pytest.raises(DiagnosticsError):
            DiagnosticsEngine(window=4)

    def test_health_is_worst_severity(self):
        engine = DiagnosticsEngine()
        engine.extend(stalled_history())
        assert engine.health() == "critical"
