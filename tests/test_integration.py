"""End-to-end integration: every library layer in one flow.

Builds a deployment on a network topology, round-trips it through JSON,
optimizes it with both the in-process optimizer and the distributed
runtime, enacts the allocation on the discrete-event simulator, and
verifies the observed behaviour honours the optimized budgets.
"""

import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.distributed import DistributedConfig, DistributedLLARuntime
from repro.model.events import PeriodicEvent
from repro.model.serialize import taskset_from_json, taskset_to_json
from repro.model.topology import ComputeStage, NetworkTopology
from repro.model.utility import LinearUtility
from repro.sim.system import SimulatedSystem


@pytest.fixture(scope="module")
def deployed_taskset():
    """Two pipelines over a 4-node line topology sharing its middle links."""
    topo = NetworkTopology.line(["edge", "agg", "core", "store"],
                                cpu_availability=0.9,
                                link_availability=0.9)
    topo.deploy_pipeline(
        "ingest",
        [ComputeStage("capture", "edge", exec_time=2.0, transfer_time=1.5),
         ComputeStage("aggregate", "agg", exec_time=3.0, transfer_time=2.0),
         ComputeStage("persist", "store", exec_time=2.5)],
        critical_time=80.0,
        utility=LinearUtility(80.0, k=2.0, slope=2.0),
        trigger=PeriodicEvent(50.0),
    )
    topo.deploy_pipeline(
        "report",
        [ComputeStage("scan", "store", exec_time=4.0, transfer_time=2.0),
         ComputeStage("render", "core", exec_time=3.0)],
        critical_time=150.0,
        utility=LinearUtility(150.0, k=2.0),
        trigger=PeriodicEvent(100.0),
    )
    return topo.build_taskset()


class TestFullPipeline:
    def test_serialization_roundtrip(self, deployed_taskset):
        restored = taskset_from_json(taskset_to_json(deployed_taskset))
        assert restored.subtask_names == deployed_taskset.subtask_names
        r1 = LLAOptimizer(deployed_taskset,
                          LLAConfig(max_iterations=300)).run()
        r2 = LLAOptimizer(restored, LLAConfig(max_iterations=300)).run()
        assert r1.latencies == pytest.approx(r2.latencies)

    def test_centralized_and_distributed_agree(self, deployed_taskset):
        restored = taskset_from_json(taskset_to_json(deployed_taskset))
        central = LLAOptimizer(
            deployed_taskset, LLAConfig(max_iterations=1500)
        ).run()
        distributed = DistributedLLARuntime(
            restored, DistributedConfig(rounds=1500)
        ).run()
        assert central.utility == pytest.approx(distributed.utility,
                                                abs=1.0)

    def test_simulated_execution_honours_budgets(self, deployed_taskset):
        result = LLAOptimizer(
            deployed_taskset, LLAConfig(max_iterations=1500)
        ).run()
        assert deployed_taskset.is_feasible(result.latencies, tol=1e-2)
        shares = {
            name: deployed_taskset.share_function(name).share(lat)
            for name, lat in result.latencies.items()
        }
        system = SimulatedSystem(deployed_taskset, shares, seed=17)
        system.run_for(30_000.0)
        # The worst-case model is conservative: observed end-to-end p99
        # must come in under each task's critical time.
        for task in deployed_taskset.tasks:
            p99 = system.recorder.jobset_percentile(task.name, 99)
            assert p99 is not None
            assert p99 <= task.critical_time, (
                f"{task.name}: p99 {p99:.1f} > C {task.critical_time}"
            )

    def test_shared_link_priced_between_pipelines(self, deployed_taskset):
        # Both pipelines cross link agg-core and link core-store.
        crossers = deployed_taskset.subtasks_on("link:core-store")
        owners = {task.name for task, _sub in crossers}
        assert owners == {"ingest", "report"}
