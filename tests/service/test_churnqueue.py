"""Tests for the bounded, coalescing churn queue."""

import pytest

from repro.errors import ServiceError
from repro.model.utility import LogUtility
from repro.service import ChurnEvent, ChurnQueue

from tests.service.test_service import make_task


def reg(name, **kwargs):
    return ChurnEvent(kind="register", key=name,
                      task=make_task(name, **kwargs))


def dereg(name):
    return ChurnEvent(kind="deregister", key=name)


class TestChurnEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ServiceError):
            ChurnEvent(kind="teleport", key="t0")

    def test_rejects_empty_key(self):
        with pytest.raises(ServiceError):
            ChurnEvent(kind="deregister", key="")

    def test_register_needs_matching_task(self):
        with pytest.raises(ServiceError):
            ChurnEvent(kind="register", key="t0")
        with pytest.raises(ServiceError):
            ChurnEvent(kind="register", key="t0", task=make_task("t1"))

    def test_update_needs_a_payload(self):
        with pytest.raises(ServiceError):
            ChurnEvent(kind="update", key="t0")

    def test_availability_needs_a_value(self):
        with pytest.raises(ServiceError):
            ChurnEvent(kind="availability", key="r0")


class TestCoalescing:
    def test_register_then_deregister_cancels(self):
        queue = ChurnQueue()
        queue.offer(reg("t0"))
        queue.offer(dereg("t0"))
        assert queue.depth == 0
        assert queue.drain() == []
        assert queue.coalesced == 1

    def test_deregister_then_register_becomes_replace(self):
        queue = ChurnQueue()
        queue.offer(dereg("t0"))
        queue.offer(reg("t0"))
        (event,) = queue.drain()
        assert event.kind == "replace"
        assert event.task.name == "t0"

    def test_double_register_keeps_latest_body(self):
        queue = ChurnQueue()
        queue.offer(reg("t0", critical_time=40.0))
        queue.offer(reg("t0", critical_time=80.0))
        (event,) = queue.drain()
        assert event.kind == "register"
        assert event.task.critical_time == 80.0

    def test_update_folds_into_pending_register(self):
        queue = ChurnQueue()
        queue.offer(reg("t0"))
        queue.offer(ChurnEvent(kind="update", key="t0",
                               critical_time=60.0))
        utility = LogUtility(60.0)
        queue.offer(ChurnEvent(kind="update", key="t0", utility=utility))
        (event,) = queue.drain()
        assert event.kind == "register"
        assert event.critical_time == 60.0    # earlier update survives
        assert event.utility is utility

    def test_update_onto_deregister_is_dead_work(self):
        queue = ChurnQueue()
        queue.offer(dereg("t0"))
        queue.offer(ChurnEvent(kind="update", key="t0",
                               critical_time=60.0))
        (event,) = queue.drain()
        assert event.kind == "deregister"

    def test_availability_latest_wins(self):
        queue = ChurnQueue()
        queue.offer(ChurnEvent(kind="availability", key="r0",
                               availability=0.5))
        queue.offer(ChurnEvent(kind="availability", key="r0",
                               availability=0.8))
        (event,) = queue.drain()
        assert event.availability == 0.8

    def test_task_and_resource_keys_do_not_collide(self):
        queue = ChurnQueue()
        queue.offer(dereg("x"))
        queue.offer(ChurnEvent(kind="availability", key="x",
                               availability=0.5))
        assert queue.depth == 2

    def test_oscillation_storm_collapses(self):
        """A flapping task — any number of dereg/rereg pairs — nets to a
        single replace, not a pile of events."""
        queue = ChurnQueue()
        for _ in range(10):
            queue.offer(dereg("t0"))
            queue.offer(reg("t0"))
        assert queue.depth == 1
        (event,) = queue.drain()
        assert event.kind == "replace"


class TestBoundsAndDrain:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ServiceError):
            ChurnQueue(capacity=0)

    def test_sheds_new_subjects_at_capacity(self):
        queue = ChurnQueue(capacity=2)
        assert queue.offer(dereg("a"))
        assert queue.offer(dereg("b"))
        assert not queue.offer(dereg("c"))
        assert queue.shed == 1
        assert queue.depth == 2

    def test_pending_subjects_coalesce_even_at_capacity(self):
        queue = ChurnQueue(capacity=1)
        queue.offer(dereg("a"))
        assert queue.offer(reg("a"))      # same subject: no capacity cost
        assert queue.shed == 0

    def test_drain_is_key_sorted_and_clears(self):
        queue = ChurnQueue()
        queue.offer(dereg("z"))
        queue.offer(dereg("a"))
        queue.offer(dereg("m"))
        batch = queue.drain()
        assert [e.key for e in batch] == ["a", "m", "z"]
        assert queue.depth == 0
        assert queue.drained_batches == 1

    def test_max_depth_tracks_high_water(self):
        queue = ChurnQueue(capacity=8)
        for name in "abc":
            queue.offer(dereg(name))
        queue.drain()
        queue.offer(dereg("a"))
        assert queue.max_depth == 3
