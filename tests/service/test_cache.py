"""Unit tests for the compiled-structure LRU cache."""

import pytest

from repro.errors import ServiceError
from repro.service.cache import StructureCache
from tests.conftest import make_chain_taskset


class TestValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ServiceError):
            StructureCache(capacity=0)
        with pytest.raises(ServiceError):
            StructureCache(capacity=-3)


class TestLookup:
    def test_first_lookup_misses_and_compiles(self):
        cache = StructureCache()
        ts = make_chain_taskset()
        structure = cache.get(ts)
        assert structure.taskset is ts
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.hit_rate == 0.0

    def test_equal_taskset_hits_and_rebinds(self):
        """Two separately built but identical task sets share one compiled
        structure; the hit rebinds it to the caller's task-set object."""
        cache = StructureCache()
        first = make_chain_taskset()
        second = make_chain_taskset()
        cache.get(first)
        structure = cache.get(second)
        assert structure.taskset is second
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_refreshes_model_after_availability_change(self):
        """Fingerprints cover availabilities, so a shocked task set maps
        to a different key — the stale compiled model is never reused."""
        cache = StructureCache()
        cache.get(make_chain_taskset())
        shocked = make_chain_taskset()
        shocked.set_availability("r0", 0.5)
        cache.get(shocked)
        assert cache.misses == 2

    def test_latency_clamp_is_part_of_the_key(self):
        cache = StructureCache()
        ts = make_chain_taskset()
        cache.get(ts, max_latency_factor=1.0)
        cache.get(ts, max_latency_factor=2.0)
        assert cache.misses == 2
        cache.get(ts, max_latency_factor=2.0)
        assert cache.hits == 1

    def test_precomputed_fingerprint_short_circuits(self):
        from repro.model.fingerprint import taskset_fingerprint
        cache = StructureCache()
        ts = make_chain_taskset()
        fp = taskset_fingerprint(ts)
        cache.get(ts, fingerprint=fp)
        structure = cache.get(ts, fingerprint=fp)
        assert structure.taskset is ts
        assert cache.hits == 1


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = StructureCache(capacity=1)
        cache.get(make_chain_taskset(n_subtasks=2))
        cache.get(make_chain_taskset(n_subtasks=3))
        assert cache.evictions == 1
        assert len(cache) == 1
        # The first shape was evicted: looking it up again recompiles.
        cache.get(make_chain_taskset(n_subtasks=2))
        assert cache.misses == 3

    def test_recent_use_protects_an_entry(self):
        cache = StructureCache(capacity=2)
        small = make_chain_taskset(n_subtasks=2)
        big = make_chain_taskset(n_subtasks=3)
        cache.get(small)
        cache.get(big)
        cache.get(small)                       # refresh small's recency
        cache.get(make_chain_taskset(n_subtasks=4))   # evicts big
        assert cache.get(small) is not None
        assert cache.hits == 2                 # small hit twice, big gone

    def test_clear(self):
        cache = StructureCache()
        cache.get(make_chain_taskset())
        cache.clear()
        assert len(cache) == 0
