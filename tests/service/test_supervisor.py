"""Tests for the hardened (supervised) service: watchdog restarts,
batched churn backpressure, checkpoint retry/breaker, and brownout."""

import pytest

from repro.distributed.faults import ChurnStorm, FaultPlan, LossBurst, LoopStall
from repro.errors import ServiceError
from repro.service import (
    BrownoutConfig,
    ChurnEvent,
    HardeningConfig,
    RetryPolicy,
    ServiceFaultInjector,
    SupervisedService,
    Watchdog,
)
from repro.telemetry import Telemetry

from tests.service.test_service import make_resources, make_task


def make_supervised(n_tasks=2, telemetry=None, fault_plan=None, **kwargs):
    config = HardeningConfig(**kwargs)
    tasks = [make_task(f"t{i}") for i in range(n_tasks)]
    return SupervisedService(make_resources(), tasks, config=config,
                             telemetry=telemetry, fault_plan=fault_plan)


class TestHardeningConfig:
    @pytest.mark.parametrize("kwargs", [
        {"queue_capacity": 0},
        {"stall_deadline": 0},
        {"snapshot_interval": -1},
        {"failure_threshold": 0},
        {"breaker_cooldown": 0},
        {"queue_high_watermark": 0.0},
        {"queue_high_watermark": 1.5},
        {"reconverge_patience": 0},
        {"seed": -1},
    ])
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ServiceError):
            HardeningConfig(**kwargs)


class TestWatchdog:
    def test_rejects_bad_deadline(self):
        with pytest.raises(ServiceError):
            Watchdog(0)

    def test_fires_after_deadline_no_progress_beats(self):
        dog = Watchdog(3)
        assert not dog.beat(10)            # baseline
        assert not dog.beat(10)
        assert not dog.beat(10)
        assert dog.beat(10)                # 3rd stalled beat
        assert dog.fires == 1

    def test_progress_resets_the_count(self):
        dog = Watchdog(2)
        dog.beat(1)
        dog.beat(1)
        assert not dog.beat(2)             # progress
        assert not dog.beat(2)
        assert dog.beat(2)

    def test_refires_through_a_long_stall(self):
        dog = Watchdog(2)
        dog.beat(5)
        fires = sum(1 for _ in range(8) if dog.beat(5))
        assert fires == 4                  # every `deadline` beats


class TestBatchedChurn:
    def test_storm_of_events_is_one_rebuild(self):
        svc = make_supervised(n_tasks=4)
        epoch_before = svc.service.stats().epoch
        # Ten flaps of the same task plus one real departure: two slots.
        for _ in range(10):
            svc.deregister("t0")
            svc.register(make_task("t0"))
        svc.deregister("t1")
        svc.tick()
        assert svc.service.stats().epoch == epoch_before + 1
        assert set(svc.service.tasks) == {"t0", "t2", "t3"}
        assert svc.queue.coalesced >= 10

    def test_cancelled_churn_is_no_rebuild(self):
        svc = make_supervised()
        svc.tick()
        epoch_before = svc.service.stats().epoch
        svc.register(make_task("t9"))
        svc.deregister("t9")               # cancels in the queue
        svc.tick()
        assert svc.service.stats().epoch == epoch_before

    def test_capacity_shed_is_counted_and_reported(self):
        svc = make_supervised(queue_capacity=2)
        assert svc.deregister("t0")
        assert svc.register(make_task("t8"))
        assert not svc.register(make_task("t9"))   # third subject
        assert svc.stats().queue_shed == 1

    def test_availability_and_update_round_trip(self):
        svc = make_supervised()
        svc.run_ticks(3)
        assert svc.update_task("t0", critical_time=60.0)
        assert svc.set_availability("r0", 0.8)
        svc.tick()
        assert svc.service.task("t0").critical_time == 60.0

    def test_oscillation_storm_preserves_membership(self):
        svc = make_supervised(n_tasks=3)
        accepted = svc.inject_storm(
            ChurnStorm(at=1, events=12, kind="oscillate"))
        assert accepted == 12              # all coalesce, none shed
        svc.tick()
        assert set(svc.service.tasks) == {"t0", "t1", "t2"}


class TestSupervisorRestart:
    def test_watchdog_restart_restores_from_snapshot(self):
        telemetry = Telemetry.in_memory()
        svc = make_supervised(telemetry=telemetry, stall_deadline=2,
                              snapshot_interval=5)
        svc.run_ticks(10)                  # converging + snapshots
        svc.inject_stall(4)
        svc.run_ticks(4)
        stats = svc.stats()
        assert stats.watchdog_fires >= 1
        assert stats.supervisor_restarts >= 1
        assert stats.stall_ticks == 4
        registry = telemetry.registry
        assert registry.counter(
            "service.supervisor_restarts_total").value >= 1.0
        kinds = [e.kind for e in telemetry.tracer.sinks[0].events]
        assert "supervisor_restart" in kinds
        # The loop resumes making progress after the stall.
        iterations = svc.service.stats().iterations
        svc.tick()
        assert svc.service.stats().iterations > iterations

    def test_corrupted_snapshot_demotes_to_cold_and_counts(self, tmp_path):
        svc = make_supervised(stall_deadline=2, snapshot_interval=5,
                              snapshot_dir=str(tmp_path))
        svc.run_ticks(5)
        svc.corrupt_snapshot()
        svc.inject_stall(3)
        svc.run_ticks(3)                   # watchdog fires into the rot
        stats = svc.stats()
        assert stats.supervisor_restarts >= 1
        assert stats.snapshot_corruptions >= 1
        # Never raised; the loop keeps running.
        svc.run_ticks(2)

    def test_snapshots_disabled_still_survives_stall(self):
        svc = make_supervised(snapshot_interval=0, stall_deadline=2)
        svc.run_ticks(3)
        svc.inject_stall(3)
        svc.run_ticks(5)
        assert svc.stats().supervisor_restarts >= 1


class TestCheckpointOutage:
    def test_outage_retries_then_opens_breaker(self):
        telemetry = Telemetry.in_memory()
        svc = make_supervised(
            telemetry=telemetry, snapshot_interval=2,
            retry=RetryPolicy(max_attempts=3), failure_threshold=3,
            breaker_cooldown=2,
        )
        svc.set_checkpoint_outage(True)
        svc.run_ticks(2)                   # snapshot at tick 2 fails out
        stats = svc.stats()
        assert stats.retries >= 2
        assert stats.breaker_opens >= 1
        assert stats.checkpoint_failures >= 1
        registry = telemetry.registry
        assert registry.counter("service.retries_total").value >= 2.0
        assert registry.counter(
            "service.breaker_opens_total").value >= 1.0

    def test_breaker_recloses_after_outage_and_cooldown(self):
        svc = make_supervised(
            snapshot_interval=2, retry=RetryPolicy(max_attempts=3),
            failure_threshold=3, breaker_cooldown=2,
        )
        svc.set_checkpoint_outage(True)
        svc.run_ticks(2)
        assert svc.breaker.state != "closed"
        svc.set_checkpoint_outage(False)
        svc.run_ticks(6)                   # next snapshots reclose it
        assert svc.breaker.state == "closed"
        assert svc.stats().snapshots_taken >= 1


class TestBrownout:
    def make_degraded(self, telemetry=None):
        svc = make_supervised(
            telemetry=telemetry, stall_deadline=10,
            brownout=BrownoutConfig(enter_after=2, exit_after=3),
        )
        svc.run_ticks(10)                  # capture a last-good answer
        svc.inject_stall(6)
        svc.run_ticks(4)                   # stressed ticks -> degraded
        assert svc.degraded
        return svc

    def test_degraded_serves_last_good_allocation(self):
        svc = self.make_degraded()
        view = svc.query("t0")
        assert view.degraded
        assert view.meets_critical_time
        assert svc.stats().degraded_served >= 1

    def test_degraded_sheds_new_registrations(self):
        svc = self.make_degraded()
        assert not svc.register(make_task("t9"))
        assert svc.stats().degraded_shed == 1
        # Existing-task churn still queues.
        assert svc.deregister("t1")

    def test_exits_via_hysteresis_and_traces_transitions(self):
        telemetry = Telemetry.in_memory()
        svc = self.make_degraded(telemetry=telemetry)
        svc.run_ticks(8)                   # stall drains, calm run builds
        assert not svc.degraded
        stats = svc.stats()
        assert stats.brownout_entries == 1
        assert stats.brownout_exits == 1
        states = [e.data["state"]
                  for e in telemetry.tracer.sinks[0].events
                  if e.kind == "service_degraded"]
        assert states == ["degraded", "healthy"]
        assert telemetry.registry.counter(
            "service.degraded_transitions_total").value == 2.0

    def test_healthy_query_is_live(self):
        svc = make_supervised()
        svc.run_ticks(2)
        view = svc.query("t0")
        assert not view.degraded
        assert svc.stats().live_served == 1

    def test_unknown_query_raises_and_counts(self):
        svc = make_supervised()
        svc.run_ticks(1)
        with pytest.raises(ServiceError):
            svc.query("ghost")
        assert svc.stats().failed_queries == 1


class TestFaultInjection:
    def test_service_injector_rejects_distributed_plans(self):
        svc = make_supervised()
        plan = FaultPlan(loss_bursts=(LossBurst(start=1, end=5,
                                                probability=0.5),))
        with pytest.raises(ServiceError):
            ServiceFaultInjector(plan, svc)

    def test_plan_drives_the_supervised_loop(self):
        plan = FaultPlan(
            loop_stalls=(LoopStall(at=3, ticks=2),),
            churn_storms=(ChurnStorm(at=5, events=4, kind="arrivals"),),
        )
        svc = make_supervised(fault_plan=plan, stall_deadline=2)
        svc.run_ticks(6)
        stats = svc.stats()
        assert stats.stall_ticks == 2
        assert stats.storms == 1
        assert any(name.startswith("storm") for name in svc.service.tasks)


def trace_tuples(telemetry):
    sink = telemetry.tracer.sinks[0]
    return [
        (ev.kind, ev.ts,
         tuple(sorted((k, repr(v)) for k, v in ev.data.items()
                      if k != "duration_s"))
         if ev.kind != "metrics_snapshot" else ())
        for ev in sink.events
    ]


class TestDeterminism:
    def test_identical_chaos_runs_produce_identical_traces(self):
        plan = FaultPlan(
            loop_stalls=(LoopStall(at=4, ticks=3),),
            churn_storms=(ChurnStorm(at=2, events=6, kind="oscillate"),),
        )

        def run():
            telemetry = Telemetry.in_memory()
            svc = make_supervised(n_tasks=3, telemetry=telemetry,
                                  fault_plan=plan, stall_deadline=2,
                                  snapshot_interval=3)
            svc.run_ticks(12)
            return trace_tuples(telemetry), svc.stats().to_dict()

        first_trace, first_stats = run()
        second_trace, second_stats = run()
        assert first_trace == second_trace
        assert first_stats == second_stats
