"""Tests for the always-on allocation service (churn, queries, admission,
snapshots, the async loop)."""

import asyncio

import pytest

from repro.core.optimizer import LLAConfig
from repro.core.stepsize import FixedStepSize
from repro.errors import ServiceError
from repro.model.events import PeriodicEvent
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource
from repro.model.task import Subtask, Task
from repro.model.utility import LinearUtility, LogUtility
from repro.service import AllocationService, ServiceConfig
from repro.telemetry import Telemetry


def make_resources(n=3, availability=1.0):
    return [Resource(name=f"r{i}", availability=availability, lag=1.0)
            for i in range(n)]


def make_task(name, n_subtasks=2, exec_time=2.0, critical_time=40.0,
              k=2.0):
    """A chain task whose subtask ``i`` runs on shared resource ``r{i}``."""
    names = [f"{name}.s{i}" for i in range(n_subtasks)]
    subtasks = [
        Subtask(name=names[i], resource=f"r{i}", exec_time=exec_time)
        for i in range(n_subtasks)
    ]
    return Task(
        name=name,
        subtasks=subtasks,
        graph=SubtaskGraph.chain(names),
        critical_time=critical_time,
        utility=LinearUtility(critical_time, k=k),
        trigger=PeriodicEvent(50.0),
    )


def make_service(n_tasks=2, **config_kwargs):
    config = ServiceConfig(**config_kwargs)
    tasks = [make_task(f"t{i}") for i in range(n_tasks)]
    return AllocationService(make_resources(), tasks, config=config)


class TestServiceConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ServiceError):
            ServiceConfig(backend="gpu")

    def test_rejects_bad_capacity_and_batch(self):
        with pytest.raises(ServiceError):
            ServiceConfig(cache_capacity=0)
        with pytest.raises(ServiceError):
            ServiceConfig(batch_size=0)

    def test_rejects_contradictory_lla_backend(self):
        with pytest.raises(ServiceError):
            ServiceConfig(backend="vectorized",
                          lla=LLAConfig(backend="scalar"))

    def test_rejects_shared_step_policy(self):
        """A shared policy object would carry step-size escalation across
        churn epochs — the service demands per-epoch policies."""
        with pytest.raises(ServiceError):
            ServiceConfig(
                backend="scalar",
                lla=LLAConfig(backend="scalar",
                              step_policy=FixedStepSize(1.0)),
            )

    def test_optimizer_config_follows_backend(self):
        assert ServiceConfig(backend="scalar").optimizer_config() \
            .backend == "scalar"


class TestConstruction:
    def test_needs_resources(self):
        with pytest.raises(ServiceError):
            AllocationService([])

    def test_rejects_duplicate_resources(self):
        with pytest.raises(ServiceError):
            AllocationService(make_resources() + make_resources(1))

    def test_rejected_initial_task_raises(self):
        doomed = make_task("doomed", critical_time=1e-3)
        with pytest.raises(ServiceError, match="rejected"):
            AllocationService(make_resources(), [doomed])

    def test_starts_empty_without_tasks(self):
        service = AllocationService(make_resources())
        assert service.tasks == ()
        assert service.taskset is None
        assert service.step(10) == 0


class TestChurn:
    def test_register_and_query(self):
        service = make_service(n_tasks=0)
        decision = service.register(make_task("t0"))
        assert decision.admitted
        service.step(50)
        view = service.query("t0")
        assert view.task == "t0"
        assert set(view.latencies) == {"t0.s0", "t0.s1"}
        assert view.aggregated_latency > 0.0

    def test_duplicate_name_rejected(self):
        service = make_service()
        decision = service.register(make_task("t0"))
        assert not decision.admitted
        assert "already registered" in decision.reason

    def test_unknown_resource_rejected(self):
        service = make_service()
        stray = Task(
            name="stray",
            subtasks=[Subtask(name="stray.s0", resource="elsewhere",
                              exec_time=1.0)],
            graph=SubtaskGraph.chain(["stray.s0"]),
            critical_time=30.0,
            utility=LinearUtility(30.0),
            trigger=PeriodicEvent(50.0),
        )
        decision = service.register(stray)
        assert not decision.admitted
        assert "unknown resource" in decision.reason

    def test_deregister_unknown_raises(self):
        with pytest.raises(ServiceError):
            make_service().deregister("ghost")

    def test_fingerprint_ignores_arrival_order(self):
        """Membership, not arrival order, determines the fingerprint —
        the property that lets oscillatory churn hit the cache."""
        forward = make_service(n_tasks=0)
        forward.register(make_task("a"))
        forward.register(make_task("b"))
        backward = make_service(n_tasks=0)
        backward.register(make_task("b"))
        backward.register(make_task("a"))
        assert forward.fingerprint == backward.fingerprint

    def test_oscillatory_churn_hits_structure_cache(self):
        service = make_service(n_tasks=2)
        fingerprint = service.fingerprint
        departed = service.deregister("t1")
        service.register(departed)
        assert service.fingerprint == fingerprint
        assert service.cache.hits >= 1

    def test_churn_warm_starts_from_live_prices(self):
        service = make_service(n_tasks=2)
        service.step(200)
        live = dict(service._optimizer.resource_prices.prices)
        service.deregister("t1")
        rebuilt = service._optimizer.resource_prices.prices
        for rname, price in rebuilt.items():
            assert price == pytest.approx(live[rname])

    def test_cold_config_restarts_from_estimate(self):
        service = make_service(n_tasks=2, warm_start_churn=False)
        service.step(200)
        live = dict(service._optimizer.resource_prices.prices)
        service.deregister("t1")
        rebuilt = service._optimizer.resource_prices.prices
        assert rebuilt != pytest.approx(live)

    def test_admission_blocks_provably_infeasible_arrival(self):
        service = make_service(n_tasks=2)
        fingerprint = service.fingerprint
        probe = make_task("probe", critical_time=1e-3)
        decision = service.register(probe)
        assert not decision.admitted
        assert "provably infeasible" in decision.reason
        # The rejection left the live problem untouched.
        assert service.fingerprint == fingerprint
        assert "probe" not in service.tasks
        assert service.stats().admission_rejections == 1

    def test_update_task_retargets_utility(self):
        service = make_service(n_tasks=1)
        decision = service.update_task("t0", critical_time=50.0)
        assert decision.admitted
        task = service.taskset.task("t0")
        assert task.critical_time == 50.0
        assert isinstance(task.utility, LinearUtility)
        assert task.utility.k == 2.0

    def test_update_task_accepts_new_utility(self):
        # LogUtility needs the numeric per-task solver → scalar backend.
        service = make_service(n_tasks=1, backend="scalar")
        service.update_task("t0", utility=LogUtility(40.0))
        assert isinstance(service.taskset.task("t0").utility, LogUtility)

    def test_update_task_rejection_restores_old_task(self):
        service = make_service(n_tasks=1)
        fingerprint = service.fingerprint
        decision = service.update_task("t0", critical_time=1e-3)
        assert not decision.admitted
        assert service.fingerprint == fingerprint
        assert service.taskset.task("t0").critical_time == 40.0

    def test_update_task_validates_arguments(self):
        service = make_service(n_tasks=1)
        with pytest.raises(ServiceError):
            service.update_task("ghost", critical_time=50.0)
        with pytest.raises(ServiceError):
            service.update_task("t0")

    def test_set_availability_rebuilds(self):
        service = make_service(n_tasks=1)
        fingerprint = service.fingerprint
        service.set_availability("r0", 0.5)
        assert service.fingerprint != fingerprint
        assert service.taskset.resources["r0"].availability == 0.5

    def test_set_availability_unknown_resource(self):
        with pytest.raises(ServiceError):
            make_service().set_availability("ghost", 0.5)

    def test_deregistering_everything_idles_the_service(self):
        service = make_service(n_tasks=1)
        service.deregister("t0")
        assert service.taskset is None
        assert service.fingerprint is None
        assert service.step(5) == 0
        assert service.allocations() == {}


class TestQueries:
    def test_unknown_task_raises(self):
        with pytest.raises(ServiceError):
            make_service().query("ghost")

    def test_query_counts(self):
        service = make_service()
        service.step(10)
        service.query("t0")
        service.query("t1")
        assert service.stats().queries == 2

    def test_converged_view_meets_critical_time(self):
        service = make_service()
        rounds = service.run_to_convergence()
        assert rounds is not None
        view = service.query("t0")
        assert view.converged
        assert view.meets_critical_time

    def test_reconvergence_recorded_per_epoch(self):
        service = make_service()
        assert service.run_to_convergence() is not None
        service.deregister("t1")
        assert service.run_to_convergence() is not None
        assert len(service.stats().reconvergence_rounds) == 2


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self):
        service = make_service()
        service.step(100)
        prices = dict(service._optimizer.resource_prices.prices)
        service.snapshot()
        service.step(100)
        assert service.restore() is True
        assert service._optimizer.resource_prices.prices == \
            pytest.approx(prices)

    def test_stale_snapshot_demotes_to_cold_reset(self):
        service = make_service()
        service.step(100)
        service.snapshot()
        service.deregister("t1")          # fingerprint changes
        assert service.restore() is False
        assert service.stats().snapshot_fallbacks == 1

    def test_corrupted_structure_payload_demotes_to_cold_reset(self):
        """A snapshot whose embedded compiled-structure payload fails its
        own fingerprint verification is untrustworthy end to end: the
        restore must demote to a cold reset (same counter and trace event
        as a fingerprint mismatch), never adopt the prices."""
        service = make_service()
        service.step(100)
        service.snapshot()
        stored = service.snapshots._checkpoints["service"]
        stored.state["structure"]["cost"][0] += 1.0
        assert service.restore() is False
        assert service.stats().snapshot_fallbacks == 1

    def test_truncated_structure_payload_demotes_to_cold_reset(self):
        service = make_service()
        service.step(100)
        service.snapshot()
        stored = service.snapshots._checkpoints["service"]
        stored.state["structure"]["sub_exec"].pop()
        assert service.restore() is False
        assert service.stats().snapshot_fallbacks == 1

    def test_intact_structure_payload_still_warm_restores(self):
        service = make_service()
        service.step(100)
        service.snapshot()
        assert "structure" in \
            service.snapshots._checkpoints["service"].state
        assert service.restore() is True
        assert service.stats().snapshot_fallbacks == 0

    def test_snapshot_needs_tasks(self):
        empty = AllocationService(make_resources())
        with pytest.raises(ServiceError):
            empty.snapshot()
        with pytest.raises(ServiceError):
            empty.restore()


class TestAsyncRun:
    def test_run_executes_requested_iterations(self):
        service = make_service()
        executed = asyncio.run(service.run(iterations=70))
        assert executed == 70
        assert service.stats().iterations == 70

    def test_stop_ends_an_unbounded_run(self):
        service = make_service()

        async def scenario():
            runner = asyncio.create_task(service.run())
            await asyncio.sleep(0)
            service.stop()
            return await runner

        executed = asyncio.run(scenario())
        assert executed >= 0
        assert service._running is False

    def test_concurrent_run_rejected(self):
        service = make_service()

        async def scenario():
            runner = asyncio.create_task(service.run())
            await asyncio.sleep(0)
            try:
                with pytest.raises(ServiceError):
                    await service.run(iterations=1)
            finally:
                service.stop()
                await runner

        asyncio.run(scenario())

    def test_churn_between_batches(self):
        """Queries and churn interleave with a bounded run on one loop."""
        service = make_service(batch_size=8)

        async def scenario():
            runner = asyncio.create_task(service.run(iterations=64))
            await asyncio.sleep(0)
            service.deregister("t1")
            view = service.query("t0")
            await runner
            return view

        view = asyncio.run(scenario())
        assert view.task == "t0"
        assert service.tasks == ("t0",)


class TestTelemetryAndStats:
    def test_counters_flow_into_registry(self):
        telemetry = Telemetry()
        service = AllocationService(
            make_resources(), [make_task("t0")], telemetry=telemetry,
        )
        service.step(5)
        service.query("t0")
        service.register(make_task("t0"))      # duplicate → rejected
        registry = telemetry.registry
        assert registry.get("service.queries_total").value == 1
        assert registry.get("service.admission_rejections_total").value == 1
        assert registry.get("service.tasks").value == 1

    def test_stats_to_dict_is_json_shaped(self):
        service = make_service()
        service.step(10)
        payload = service.stats().to_dict()
        assert payload["tasks"] == 2
        assert payload["iterations"] == 10
        assert isinstance(payload["reconvergence_rounds"], list)
