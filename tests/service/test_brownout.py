"""Tests for the brownout hysteresis controller."""

import pytest

from repro.errors import ServiceError
from repro.service import BrownoutConfig, BrownoutController


def feed(controller, verdicts, start=1):
    out = []
    for i, stressed in enumerate(verdicts):
        out.append(controller.observe(start + i, stressed))
    return out


class TestBrownoutConfig:
    def test_rejects_bad_widths(self):
        with pytest.raises(ServiceError):
            BrownoutConfig(enter_after=0)
        with pytest.raises(ServiceError):
            BrownoutConfig(exit_after=0)


class TestHysteresis:
    def test_enters_only_after_consecutive_stress(self):
        c = BrownoutController(BrownoutConfig(enter_after=3, exit_after=2))
        assert feed(c, [True, True]) == [None, None]
        assert not c.degraded
        assert c.observe(3, True) == "enter"
        assert c.degraded
        assert c.entries == 1

    def test_single_calm_tick_resets_the_stress_run(self):
        c = BrownoutController(BrownoutConfig(enter_after=3, exit_after=2))
        feed(c, [True, True, False, True, True])
        assert not c.degraded          # run was broken at tick 3
        assert c.observe(6, True) == "enter"

    def test_exits_only_after_consecutive_calm(self):
        c = BrownoutController(BrownoutConfig(enter_after=1, exit_after=3))
        c.observe(1, True)
        assert c.degraded
        assert feed(c, [False, False], start=2) == [None, None]
        assert c.degraded
        assert c.observe(4, False) == "exit"
        assert not c.degraded
        assert c.exits == 1

    def test_stress_blip_resets_the_calm_run(self):
        c = BrownoutController(BrownoutConfig(enter_after=1, exit_after=2))
        c.observe(1, True)
        feed(c, [False, True, False], start=2)
        assert c.degraded              # calm run restarted at tick 3
        assert c.observe(5, False) == "exit"

    def test_transition_log_records_ticks_and_states(self):
        c = BrownoutController(BrownoutConfig(enter_after=2, exit_after=2))
        feed(c, [True, True, False, False, True, True])
        assert c.transitions == [(2, "degraded"), (4, "healthy"),
                                 (6, "degraded")]
        assert c.entries == 2
        assert c.exits == 1

    def test_no_flapping_on_alternating_stress(self):
        """Alternating stress/calm never satisfies either threshold, so
        the controller holds its state — the point of hysteresis."""
        c = BrownoutController(BrownoutConfig(enter_after=2, exit_after=2))
        out = feed(c, [True, False] * 10)
        assert out == [None] * 20
        assert not c.degraded
        assert c.transitions == []
