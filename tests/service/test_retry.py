"""Tests for the deterministic retry / circuit-breaker primitives."""

import numpy as np
import pytest

from repro.errors import BreakerOpenError, ServiceError
from repro.service import CircuitBreaker, Retrier, RetryPolicy
from repro.telemetry import Telemetry


class TestRetryPolicy:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"base_delay": float("nan")},
        {"multiplier": 0.5},
        {"max_delay": 0.01},          # < base_delay
        {"jitter": 1.5},
        {"jitter": -0.1},
    ])
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ServiceError):
            RetryPolicy(**kwargs)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0,
                             max_delay=5.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.delay(1, rng) == 1.0
        assert policy.delay(2, rng) == 2.0
        assert policy.delay(3, rng) == 4.0
        assert policy.delay(4, rng) == 5.0    # capped

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        a = [policy.delay(i, np.random.default_rng(7)) for i in (1, 2, 3)]
        b = [policy.delay(i, np.random.default_rng(7)) for i in (1, 2, 3)]
        assert a == b
        # Jitter stretches, never shrinks, and is bounded.
        assert 1.0 <= a[0] <= 1.5

    def test_rejects_bad_attempt(self):
        with pytest.raises(ServiceError):
            RetryPolicy().delay(0, np.random.default_rng(0))


class TestRetrier:
    def test_success_first_try(self):
        retrier = Retrier()
        assert retrier.call(lambda: 42) == 42
        assert retrier.retries == 0

    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("disk hiccup")
            return "ok"

        retrier = Retrier(RetryPolicy(max_attempts=3))
        assert retrier.call(flaky) == "ok"
        assert retrier.retries == 2
        assert retrier.exhausted == 0

    def test_exhaustion_reraises_last_error(self):
        retrier = Retrier(RetryPolicy(max_attempts=2))

        def always():
            raise OSError("still dead")

        with pytest.raises(OSError, match="still dead"):
            retrier.call(always)
        assert retrier.retries == 1          # one backoff between 2 tries
        assert retrier.exhausted == 1

    def test_breaker_open_is_not_retried(self):
        calls = []

        def shorted():
            calls.append(1)
            raise BreakerOpenError("open")

        retrier = Retrier(RetryPolicy(max_attempts=5))
        with pytest.raises(BreakerOpenError):
            retrier.call(shorted)
        assert len(calls) == 1
        assert retrier.retries == 0

    def test_backoff_sequence_is_seed_deterministic(self):
        def total(seed):
            retrier = Retrier(RetryPolicy(max_attempts=4, jitter=0.5),
                              seed=seed)
            with pytest.raises(ValueError):
                retrier.call(lambda: (_ for _ in ()).throw(ValueError()))
            return retrier.total_backoff

        assert total(3) == total(3)
        assert total(3) != total(4)

    def test_injected_sleep_receives_backoffs(self):
        slept = []
        retrier = Retrier(RetryPolicy(max_attempts=3, jitter=0.0,
                                      base_delay=0.5, multiplier=2.0),
                          sleep=slept.append)
        with pytest.raises(KeyError):
            retrier.call(lambda: {}[0])
        assert slept == [0.5, 1.0]

    def test_retry_telemetry(self):
        telemetry = Telemetry.in_memory()
        retrier = Retrier(RetryPolicy(max_attempts=2),
                          telemetry=telemetry)
        with pytest.raises(OSError):
            retrier.call(lambda: (_ for _ in ()).throw(OSError("x")),
                         label="snapshot")
        registry = telemetry.registry
        assert registry.counter("service.retries_total").value == 1.0
        assert registry.counter(
            "service.retries_exhausted_total").value == 1.0
        kinds = [e.kind for e in telemetry.tracer.sinks[0].events]
        assert kinds.count("retry") == 1


def make_breaker(clock, **kwargs):
    return CircuitBreaker(failure_threshold=kwargs.pop("threshold", 2),
                          cooldown=kwargs.pop("cooldown", 3.0),
                          clock=clock, **kwargs)


class TestCircuitBreaker:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(failure_threshold=0, clock=lambda: 0.0)
        with pytest.raises(ServiceError):
            CircuitBreaker(cooldown=0.0, clock=lambda: 0.0)

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = make_breaker(lambda: 0.0)
        with pytest.raises(OSError):
            breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        assert breaker.state == CircuitBreaker.CLOSED
        with pytest.raises(OSError):
            breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1

    def test_success_resets_the_failure_run(self):
        breaker = make_breaker(lambda: 0.0)
        with pytest.raises(OSError):
            breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        breaker.guard(lambda: "fine")
        with pytest.raises(OSError):
            breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_short_circuits_until_cooldown(self):
        now = [0.0]
        breaker = make_breaker(lambda: now[0])
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        with pytest.raises(BreakerOpenError):
            breaker.guard(lambda: "never runs")
        assert breaker.short_circuits == 1
        # Cooldown elapses on the injected clock: half-open trial runs.
        now[0] = 3.0
        assert breaker.guard(lambda: "probe") == "probe"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        now = [0.0]
        breaker = make_breaker(lambda: now[0])
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        now[0] = 3.0
        with pytest.raises(OSError):
            breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2

    def test_breaker_telemetry(self):
        telemetry = Telemetry.in_memory()
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0,
                                 clock=lambda: now[0],
                                 telemetry=telemetry, name="ckpt")
        with pytest.raises(OSError):
            breaker.guard(lambda: (_ for _ in ()).throw(OSError()))
        with pytest.raises(BreakerOpenError):
            breaker.guard(lambda: None)
        now[0] = 2.0
        breaker.guard(lambda: None)
        registry = telemetry.registry
        assert registry.counter("service.breaker_opens_total").value == 1.0
        assert registry.counter(
            "service.breaker_short_circuits_total").value == 1.0
        kinds = [e.kind for e in telemetry.tracer.sinks[0].events]
        assert kinds == ["breaker_open", "breaker_half_open",
                         "breaker_closed"]


class TestComposition:
    def test_each_retry_attempt_feeds_the_breaker(self):
        """The supervisor composes breaker *inside* retrier so one
        exhausted call can trip the circuit."""
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0,
                                 clock=lambda: now[0])
        retrier = Retrier(RetryPolicy(max_attempts=3))

        def dead():
            raise OSError("volume gone")

        with pytest.raises(OSError):
            retrier.call(lambda: breaker.guard(dead))
        assert breaker.state == CircuitBreaker.OPEN
        # The next call short-circuits without retrying.
        with pytest.raises(BreakerOpenError):
            retrier.call(lambda: breaker.guard(dead))
        assert retrier.attempts == 4
