"""Async-safety regressions for the supervised service (REP011).

``SupervisedService.run`` used to drive the synchronous :meth:`tick`
directly on the event-loop thread, which put checkpoint file I/O — the
periodic snapshot write and the watchdog's restore read — on the loop.
A slow disk (or an injected outage plus retries) would stall every
concurrent ``query`` and churn producer sharing that loop.  These tests
pin the fix: during an async run, the snapshot and restore units execute
on a worker thread, never the loop thread; the synchronous drivers keep
running everything on the calling thread.
"""

import asyncio
import threading

from tests.service.test_supervisor import make_supervised


def _record_thread(supervised, method_name, idents):
    """Wrap a bound supervisor method so calls log their thread id."""
    original = getattr(supervised, method_name)

    def wrapper(*args, **kwargs):
        idents.append(threading.get_ident())
        return original(*args, **kwargs)

    setattr(supervised, method_name, wrapper)


class TestAsyncRunOffloadsCheckpointIO:
    def test_snapshot_runs_off_the_event_loop_thread(self):
        supervised = make_supervised(snapshot_interval=2)
        idents = []
        _record_thread(supervised, "_snapshot_once", idents)

        async def scenario():
            await supervised.run(ticks=6)
            return threading.get_ident()

        loop_ident = asyncio.run(scenario())
        assert idents, "expected periodic snapshots during the run"
        assert all(ident != loop_ident for ident in idents), (
            "checkpoint snapshot I/O executed on the event-loop thread"
        )

    def test_watchdog_restore_runs_off_the_event_loop_thread(self):
        supervised = make_supervised(stall_deadline=2, snapshot_interval=2)
        supervised.run_ticks(4)  # persist a warm snapshot to restore from
        supervised.inject_stall(10)
        idents = []
        _record_thread(supervised, "_restore_once", idents)

        async def scenario():
            await supervised.run(ticks=8)
            return threading.get_ident()

        loop_ident = asyncio.run(scenario())
        assert idents, "expected the watchdog to trigger a restore"
        assert all(ident != loop_ident for ident in idents), (
            "checkpoint restore I/O executed on the event-loop thread"
        )

    def test_async_and_sync_drivers_agree_on_bookkeeping(self):
        sync_service = make_supervised(snapshot_interval=2)
        async_service = make_supervised(snapshot_interval=2)
        sync_service.run_ticks(6)
        asyncio.run(async_service.run(ticks=6))
        assert (
            async_service.snapshots_taken == sync_service.snapshots_taken
        )
        assert async_service.stats().tick == sync_service.stats().tick


class TestSyncDriversStayOnCallingThread:
    def test_run_ticks_never_spawns_threads(self):
        supervised = make_supervised(snapshot_interval=2)
        idents = []
        _record_thread(supervised, "_snapshot_once", idents)
        supervised.run_ticks(4)
        assert idents == [threading.get_ident()] * len(idents)
        assert idents, "sync driver should still snapshot"
