"""Async-safety regressions for the supervised service (REP011).

``SupervisedService.run`` used to drive the synchronous :meth:`tick`
directly on the event-loop thread, which put checkpoint file I/O — the
periodic snapshot write and the watchdog's restore read — on the loop.
A slow disk (or an injected outage plus retries) would stall every
concurrent ``query`` and churn producer sharing that loop.  These tests
pin the fix — and its boundary: during an async run, the snapshot and
restore units execute on a worker thread, never the loop thread, while
the state-mutating tick body (churn drain, optimizer slice) stays *on*
the loop thread where it cannot race ``submit``/``query``; the
synchronous drivers keep running everything on the calling thread.
"""

import asyncio
import threading

from tests.service.test_supervisor import make_supervised


def _record_thread(supervised, method_name, idents):
    """Wrap a bound supervisor method so calls log their thread id."""
    original = getattr(supervised, method_name)

    def wrapper(*args, **kwargs):
        idents.append(threading.get_ident())
        return original(*args, **kwargs)

    setattr(supervised, method_name, wrapper)


class TestAsyncRunOffloadsCheckpointIO:
    def test_snapshot_runs_off_the_event_loop_thread(self):
        supervised = make_supervised(snapshot_interval=2)
        idents = []
        _record_thread(supervised, "_snapshot_once", idents)

        async def scenario():
            await supervised.run(ticks=6)
            return threading.get_ident()

        loop_ident = asyncio.run(scenario())
        assert idents, "expected periodic snapshots during the run"
        assert all(ident != loop_ident for ident in idents), (
            "checkpoint snapshot I/O executed on the event-loop thread"
        )

    def test_watchdog_restore_runs_off_the_event_loop_thread(self):
        supervised = make_supervised(stall_deadline=2, snapshot_interval=2)
        supervised.run_ticks(4)  # persist a warm snapshot to restore from
        supervised.inject_stall(10)
        idents = []
        _record_thread(supervised, "_restore_once", idents)

        async def scenario():
            await supervised.run(ticks=8)
            return threading.get_ident()

        loop_ident = asyncio.run(scenario())
        assert idents, "expected the watchdog to trigger a restore"
        assert all(ident != loop_ident for ident in idents), (
            "checkpoint restore I/O executed on the event-loop thread"
        )

    def test_async_and_sync_drivers_agree_on_bookkeeping(self):
        sync_service = make_supervised(snapshot_interval=2)
        async_service = make_supervised(snapshot_interval=2)
        sync_service.run_ticks(6)
        asyncio.run(async_service.run(ticks=6))
        assert (
            async_service.snapshots_taken == sync_service.snapshots_taken
        )
        assert async_service.stats().tick == sync_service.stats().tick


class TestTickBodyStaysOnTheLoopThread:
    """Regression for a supervisor race: ``tick_async`` once ran the
    whole ``_tick_begin`` body (``ChurnQueue.drain``, the optimizer
    slice, the shed-counter reset) in a worker thread.  Those structures
    are shared with :meth:`submit` and :meth:`query` on the event loop,
    and cooperative scheduling is their *only* synchronization — a
    worker-thread ``drain`` can race a concurrent ``offer`` into
    "dictionary changed size during iteration", and a query can observe
    a half-advanced optimizer.  Only the checkpoint I/O units may leave
    the loop thread."""

    def test_tick_body_runs_on_the_event_loop_thread(self):
        supervised = make_supervised(snapshot_interval=2)
        begin_idents = []
        end_idents = []
        _record_thread(supervised, "_tick_begin", begin_idents)
        _record_thread(supervised, "_tick_end", end_idents)

        async def scenario():
            await supervised.run(ticks=6)
            return threading.get_ident()

        loop_ident = asyncio.run(scenario())
        assert begin_idents == [loop_ident] * 6, (
            "the state-mutating tick body left the event-loop thread"
        )
        assert end_idents == [loop_ident] * 6

    def test_churn_drain_runs_on_the_event_loop_thread(self):
        supervised = make_supervised(snapshot_interval=2)
        idents = []
        _record_thread(supervised, "_drain_churn", idents)

        async def scenario():
            await supervised.run(ticks=4)
            return threading.get_ident()

        loop_ident = asyncio.run(scenario())
        assert idents == [loop_ident] * len(idents)
        assert idents, "expected a drain attempt every tick"

    def test_concurrent_producers_interleave_without_loss(self):
        """Producers submitting between ticks (including while the
        offloaded snapshot write is in flight) never corrupt the queue:
        every accepted event is drained into the service."""
        supervised = make_supervised(snapshot_interval=2)
        accepted = []

        async def producer():
            for i in range(12):
                event = supervised.update_task(
                    "t0", critical_time=50.0 + i)
                accepted.append(event)
                await asyncio.sleep(0)

        async def scenario():
            task = asyncio.get_running_loop().create_task(producer())
            await supervised.run(ticks=8)
            await task
            supervised.tick()  # drain any tail submissions

        asyncio.run(scenario())
        assert all(accepted), "no event should be shed on an idle queue"
        assert supervised.queue.depth == 0
        assert supervised.stats().queue_shed == 0


class TestSyncDriversStayOnCallingThread:
    def test_run_ticks_never_spawns_threads(self):
        supervised = make_supervised(snapshot_interval=2)
        idents = []
        _record_thread(supervised, "_snapshot_once", idents)
        supervised.run_ticks(4)
        assert idents == [threading.get_ident()] * len(idents)
        assert idents, "sync driver should still snapshot"
