"""Unit tests for latency-percentile composition (Section 2.1)."""

import pytest

from repro.errors import ModelError
from repro.model.percentile import (
    compose_percentiles,
    path_percentile,
    per_subtask_percentiles,
    subtask_percentile,
)


class TestCompose:
    def test_paper_example(self):
        # Two p-th percentile bounds sum to a p^2/100 percentile bound.
        assert compose_percentiles(90.0, 90.0) == pytest.approx(81.0)

    def test_with_worst_case(self):
        # Composing with a worst-case (100th) bound changes nothing.
        assert compose_percentiles(95.0, 100.0) == pytest.approx(95.0)

    def test_commutative(self):
        assert compose_percentiles(80.0, 95.0) == \
            pytest.approx(compose_percentiles(95.0, 80.0))

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            compose_percentiles(0.0, 50.0)
        with pytest.raises(ModelError):
            compose_percentiles(50.0, 150.0)


class TestPathPercentile:
    def test_single_subtask(self):
        assert path_percentile([97.0]) == pytest.approx(97.0)

    def test_three_equal(self):
        assert path_percentile([90.0] * 3) == pytest.approx(72.9)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            path_percentile([])


class TestSubtaskPercentile:
    def test_paper_formula(self):
        # q = p^(1/n) * 100^((n-1)/n)
        q = subtask_percentile(81.0, 2)
        assert q == pytest.approx(90.0)

    def test_roundtrip_with_path(self):
        for p in (50.0, 90.0, 99.0):
            for n in (1, 2, 3, 5, 8):
                q = subtask_percentile(p, n)
                assert path_percentile([q] * n) == pytest.approx(p)

    def test_worst_case_stays_worst_case(self):
        assert subtask_percentile(100.0, 4) == pytest.approx(100.0)

    def test_monotone_in_path_length(self):
        # Longer paths need higher per-subtask percentiles.
        qs = [subtask_percentile(90.0, n) for n in (1, 2, 4, 8)]
        assert qs == sorted(qs)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelError):
            subtask_percentile(0.0, 2)
        with pytest.raises(ModelError):
            subtask_percentile(90.0, 0)


class TestPerSubtaskPercentiles:
    def test_unequal_paths(self):
        # Section 2.1: separate functions per path length.
        table = per_subtask_percentiles(90.0, [2, 3, 3, 5])
        assert set(table) == {2, 3, 5}
        for n, q in table.items():
            assert path_percentile([q] * n) == pytest.approx(90.0)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            per_subtask_percentiles(90.0, [])
