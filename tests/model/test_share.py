"""Unit tests for share functions (Eq. 10 and generalizations)."""

import math

import pytest

from repro.errors import ShareError
from repro.model.share import CorrectedShare, HyperbolicShare, PowerLawShare


class TestHyperbolicShare:
    def test_paper_formula(self):
        # share = (c + l) / lat
        fn = HyperbolicShare(exec_time=5.0, lag=5.0)
        assert fn.share(35.0) == pytest.approx(10.0 / 35.0)

    def test_inverse_roundtrip(self):
        fn = HyperbolicShare(exec_time=3.0, lag=1.0)
        for lat in (1.0, 7.5, 42.0, 500.0):
            assert fn.latency_for_share(fn.share(lat)) == pytest.approx(lat)

    def test_derivative_negative_and_matches_numeric(self):
        fn = HyperbolicShare(exec_time=4.0, lag=1.0)
        lat, h = 12.0, 1e-6
        numeric = (fn.share(lat + h) - fn.share(lat - h)) / (2 * h)
        assert fn.dshare_dlat(lat) < 0.0
        assert fn.dshare_dlat(lat) == pytest.approx(numeric, rel=1e-5)

    def test_min_latency(self):
        fn = HyperbolicShare(exec_time=4.0, lag=1.0)
        # At full availability the smallest latency equals the cost.
        assert fn.min_latency(1.0) == pytest.approx(5.0)
        assert fn.min_latency(0.5) == pytest.approx(10.0)

    def test_strict_convexity(self):
        fn = HyperbolicShare(exec_time=2.0, lag=1.0)
        a, b = 5.0, 20.0
        midpoint = fn.share((a + b) / 2.0)
        chord = (fn.share(a) + fn.share(b)) / 2.0
        assert midpoint < chord

    def test_rejects_bad_inputs(self):
        with pytest.raises(ShareError):
            HyperbolicShare(exec_time=0.0, lag=1.0)
        with pytest.raises(ShareError):
            HyperbolicShare(exec_time=1.0, lag=-0.5)
        fn = HyperbolicShare(exec_time=1.0, lag=1.0)
        with pytest.raises(ShareError):
            fn.share(0.0)
        with pytest.raises(ShareError):
            fn.latency_for_share(0.0)
        with pytest.raises(ShareError):
            fn.min_latency(-0.1)

    def test_min_latency_infinite_on_blackout(self):
        # Zero availability (a blacked-out resource) achieves no finite
        # latency rather than raising: shocks to zero are legal.
        fn = HyperbolicShare(exec_time=1.0, lag=1.0)
        assert fn.min_latency(0.0) == math.inf
        assert PowerLawShare(cost=2.0, alpha=1.5).min_latency(0.0) == math.inf


class TestPowerLawShare:
    def test_alpha_one_matches_hyperbolic(self):
        power = PowerLawShare(cost=6.0, alpha=1.0)
        hyper = HyperbolicShare(exec_time=5.0, lag=1.0)
        for lat in (2.0, 10.0, 60.0):
            assert power.share(lat) == pytest.approx(hyper.share(lat))

    def test_inverse_roundtrip(self):
        fn = PowerLawShare(cost=4.0, alpha=1.7)
        for lat in (0.5, 3.0, 25.0):
            assert fn.latency_for_share(fn.share(lat)) == pytest.approx(lat)

    def test_derivative_matches_numeric(self):
        fn = PowerLawShare(cost=3.0, alpha=2.0)
        lat, h = 8.0, 1e-6
        numeric = (fn.share(lat + h) - fn.share(lat - h)) / (2 * h)
        assert fn.dshare_dlat(lat) == pytest.approx(numeric, rel=1e-5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ShareError):
            PowerLawShare(cost=1.0, alpha=0.0)


class TestCorrectedShare:
    def test_zero_error_is_identity(self):
        base = HyperbolicShare(exec_time=5.0, lag=5.0)
        corrected = CorrectedShare(base, error=0.0)
        assert corrected.share(35.0) == pytest.approx(base.share(35.0))
        assert corrected.latency_for_share(0.2) == \
            pytest.approx(base.latency_for_share(0.2))

    def test_negative_error_lowers_share(self):
        # Model over-predicts (observed < predicted): the same target
        # latency needs less share after correction.
        base = HyperbolicShare(exec_time=5.0, lag=5.0)
        corrected = CorrectedShare(base, error=-17.5)
        assert corrected.share(35.0) < base.share(35.0)
        assert corrected.share(35.0) == pytest.approx(10.0 / 52.5)

    def test_positive_error_raises_share(self):
        base = HyperbolicShare(exec_time=5.0, lag=5.0)
        corrected = CorrectedShare(base, error=5.0)
        assert corrected.share(35.0) > base.share(35.0)

    def test_inverse_shifts_by_error(self):
        base = HyperbolicShare(exec_time=5.0, lag=5.0)
        corrected = CorrectedShare(base, error=-17.5)
        assert corrected.latency_for_share(0.2) == pytest.approx(50.0 - 17.5)

    def test_inverse_roundtrip(self):
        base = HyperbolicShare(exec_time=3.0, lag=2.0)
        corrected = CorrectedShare(base, error=-4.0)
        for lat in (2.0, 10.0, 80.0):
            share = corrected.share(lat)
            assert corrected.latency_for_share(share) == pytest.approx(lat)

    def test_domain_guard(self):
        base = HyperbolicShare(exec_time=5.0, lag=5.0)
        corrected = CorrectedShare(base, error=10.0)
        # lat - error <= 0 must be rejected, not return nonsense.
        with pytest.raises(ShareError):
            corrected.share(10.0)

    def test_positive_error_shifts_min_latency(self):
        base = HyperbolicShare(exec_time=5.0, lag=5.0)
        assert CorrectedShare(base, error=3.0).min_latency(1.0) == \
            pytest.approx(13.0)
        # Negative error does not lower the floor below the base model.
        assert CorrectedShare(base, error=-3.0).min_latency(1.0) == \
            pytest.approx(10.0)

    def test_set_error(self):
        base = HyperbolicShare(exec_time=5.0, lag=5.0)
        corrected = CorrectedShare(base)
        corrected.set_error(-2.0)
        assert corrected.error == -2.0
