"""Unit tests for subtask graphs (Section 2's DAG model)."""

import pytest

from repro.errors import GraphError
from repro.model.graph import SubtaskGraph


def diamond() -> SubtaskGraph:
    return SubtaskGraph(
        ["a", "b", "c", "d"],
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )


class TestConstruction:
    def test_chain(self):
        g = SubtaskGraph.chain(["x", "y", "z"])
        assert g.root == "x"
        assert g.leaves == ("z",)
        assert g.paths == (("x", "y", "z"),)

    def test_single(self):
        g = SubtaskGraph.single("only")
        assert g.root == "only"
        assert g.leaves == ("only",)
        assert g.paths == (("only",),)

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            SubtaskGraph([], [])

    def test_rejects_cycle(self):
        with pytest.raises(GraphError, match="cycle"):
            SubtaskGraph(["a", "b"], [("a", "b"), ("b", "a")])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            SubtaskGraph(["a"], [("a", "a")])

    def test_rejects_multiple_roots(self):
        with pytest.raises(GraphError, match="unique root"):
            SubtaskGraph(["a", "b", "c"], [("a", "c"), ("b", "c")])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(GraphError, match="unknown subtask"):
            SubtaskGraph(["a"], [("a", "ghost")])

    def test_deduplicates_edges(self):
        g = SubtaskGraph(["a", "b"], [("a", "b"), ("a", "b")])
        assert g.edges == (("a", "b"),)

    def test_unreachable_detected(self):
        # b→c is a separate component from root a … wait, b has no
        # predecessor either, so this trips the unique-root check instead;
        # build one with an extra root-like node feeding nothing reachable.
        with pytest.raises(GraphError):
            SubtaskGraph(["a", "b", "c"], [("b", "c")])


class TestPaths:
    def test_diamond_paths(self):
        g = diamond()
        assert set(g.paths) == {("a", "b", "d"), ("a", "c", "d")}

    def test_path_weights_diamond(self):
        g = diamond()
        weights = g.path_weights()
        assert weights == {"a": 2, "b": 1, "c": 1, "d": 2}

    def test_path_weights_match_enumeration(self):
        g = diamond()
        for node in g.nodes:
            assert g.path_weights()[node] == len(g.paths_through(node))

    def test_paths_through(self):
        g = diamond()
        assert set(g.paths_through("a")) == {0, 1}
        assert len(g.paths_through("b")) == 1

    def test_topological_order_respects_edges(self):
        g = diamond()
        order = g.topological_order()
        position = {n: i for i, n in enumerate(order)}
        for before, after in g.edges:
            assert position[before] < position[after]


class TestCriticalPath:
    def test_chain_latency(self):
        g = SubtaskGraph.chain(["x", "y", "z"])
        lat = {"x": 1.0, "y": 2.0, "z": 3.0}
        path, total = g.critical_path(lat)
        assert path == ("x", "y", "z")
        assert total == pytest.approx(6.0)

    def test_diamond_picks_heavier_branch(self):
        g = diamond()
        lat = {"a": 1.0, "b": 10.0, "c": 2.0, "d": 1.0}
        path, total = g.critical_path(lat)
        assert path == ("a", "b", "d")
        assert total == pytest.approx(12.0)

    def test_critical_path_equals_max_over_paths(self):
        g = diamond()
        lat = {"a": 3.0, "b": 1.5, "c": 4.5, "d": 2.0}
        _, total = g.critical_path(lat)
        assert total == pytest.approx(
            max(g.path_latency(p, lat) for p in g.paths)
        )

    def test_missing_latency_raises(self):
        g = diamond()
        with pytest.raises(GraphError, match="latency missing"):
            g.critical_path({"a": 1.0})

    def test_path_latency_missing_raises(self):
        g = diamond()
        with pytest.raises(GraphError, match="latency missing"):
            g.path_latency(("a", "b", "d"), {"a": 1.0})


class TestQueries:
    def test_successors_predecessors(self):
        g = diamond()
        assert set(g.successors("a")) == {"b", "c"}
        assert set(g.predecessors("d")) == {"b", "c"}
        assert g.predecessors("a") == ()

    def test_contains_and_len(self):
        g = diamond()
        assert "a" in g and "ghost" not in g
        assert len(g) == 4

    def test_unknown_node_raises(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.successors("ghost")
        with pytest.raises(GraphError):
            g.paths_through("ghost")
