"""Unit tests for resource definitions."""

import pytest

from repro.errors import ModelError
from repro.model.resources import Resource, ResourceKind


class TestResource:
    def test_defaults(self):
        r = Resource(name="cpu0")
        assert r.kind is ResourceKind.CPU
        assert r.availability == 1.0
        assert r.lag == 1.0

    def test_link_kind(self):
        r = Resource(name="lnk", kind=ResourceKind.LINK)
        assert r.kind is ResourceKind.LINK

    def test_partial_availability(self):
        r = Resource(name="cpu0", availability=0.9, lag=5.0)
        assert r.availability == 0.9

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            Resource(name="")

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rejects_bad_availability(self, bad):
        with pytest.raises(ModelError):
            Resource(name="r", availability=bad)

    def test_zero_availability_is_a_blackout(self):
        # Legal since capacity shocks may zero a resource out entirely.
        r = Resource(name="r", availability=0.0)
        assert r.availability == 0.0

    def test_rejects_negative_lag(self):
        with pytest.raises(ModelError):
            Resource(name="r", lag=-1.0)

    def test_hashable_and_str(self):
        r = Resource(name="r0")
        assert str(r) == "r0"
        assert {r: 1}[r] == 1

    def test_metadata_not_in_equality(self):
        a = Resource(name="r0", metadata={"rack": 1})
        b = Resource(name="r0", metadata={"rack": 2})
        assert a == b
