"""Unit tests for utility functions (Section 2.1 / Figure 2)."""

import math

import pytest

from repro.errors import UtilityError
from repro.model.utility import (
    ExponentialUtility,
    InelasticUtility,
    LinearUtility,
    LogUtility,
    QuadraticUtility,
    check_concavity,
)


class TestLinearUtility:
    def test_paper_shape(self):
        # Section 5.2: f(lat) = 2*C - lat.
        fn = LinearUtility(critical_time=45.0, k=2.0)
        assert fn.value(0.0) == pytest.approx(90.0)
        assert fn.value(45.0) == pytest.approx(45.0)
        assert fn.derivative(10.0) == -1.0

    def test_prototype_shape(self):
        # Section 6.2: f(lat) = -lat (k = 0).
        fn = LinearUtility(critical_time=105.0, k=0.0)
        assert fn.value(35.0) == pytest.approx(-35.0)
        assert fn.derivative(35.0) == -1.0

    def test_custom_slope(self):
        fn = LinearUtility(critical_time=10.0, k=1.0, slope=2.5)
        assert fn.derivative(1.0) == -2.5
        assert fn.value(4.0) == pytest.approx(10.0 - 10.0)

    def test_non_increasing(self):
        fn = LinearUtility(critical_time=50.0)
        assert fn.value(10.0) > fn.value(20.0) > fn.value(50.0)

    @pytest.mark.parametrize("bad", [-1.0, -0.001])
    def test_rejects_negative_k(self, bad):
        with pytest.raises(UtilityError):
            LinearUtility(critical_time=10.0, k=bad)

    def test_rejects_bad_critical_time(self):
        with pytest.raises(UtilityError):
            LinearUtility(critical_time=0.0)
        with pytest.raises(UtilityError):
            LinearUtility(critical_time=-5.0)

    def test_rejects_nonpositive_slope(self):
        with pytest.raises(UtilityError):
            LinearUtility(critical_time=10.0, slope=0.0)

    def test_rejects_negative_latency(self):
        fn = LinearUtility(critical_time=10.0)
        with pytest.raises(UtilityError):
            fn.value(-1.0)

    def test_is_elastic(self):
        assert LinearUtility(critical_time=10.0).is_elastic()


class TestLogUtility:
    def test_zero_at_critical_time(self):
        fn = LogUtility(critical_time=50.0)
        assert fn.value(50.0) == pytest.approx(0.0)

    def test_positive_below_critical_time(self):
        fn = LogUtility(critical_time=50.0, softness=25.0)
        assert fn.value(25.0) == pytest.approx(math.log(2.0))

    def test_derivative_matches_numeric(self):
        fn = LogUtility(critical_time=50.0, scale=3.0)
        lat, h = 30.0, 1e-6
        numeric = (fn.value(lat + h) - fn.value(lat - h)) / (2 * h)
        assert fn.derivative(lat) == pytest.approx(numeric, rel=1e-5)

    def test_linear_extension_beyond_soft_deadline(self):
        # Beyond C + softness the function continues linearly (finite,
        # concave, differentiable) so numeric solvers can roam.
        fn = LogUtility(critical_time=50.0, softness=5.0)
        assert fn.value(60.0) < fn.value(55.0) < fn.value(50.0)
        assert fn.derivative(60.0) == pytest.approx(fn.derivative(70.0))
        with pytest.raises(UtilityError):
            fn.value(-1.0)

    def test_non_increasing(self):
        fn = LogUtility(critical_time=50.0)
        assert fn.value(10.0) > fn.value(30.0) > fn.value(50.0)

    def test_concave(self):
        fn = LogUtility(critical_time=50.0)
        assert check_concavity(fn, 0.1, 50.0)


class TestQuadraticUtility:
    def test_default_calibration_zero_at_deadline(self):
        fn = QuadraticUtility(critical_time=10.0)
        assert fn.value(10.0) == pytest.approx(0.0)
        assert fn.value(0.0) == pytest.approx(fn.u_max)

    def test_derivative_steepens(self):
        fn = QuadraticUtility(critical_time=10.0)
        assert abs(fn.derivative(8.0)) > abs(fn.derivative(2.0))

    def test_concave(self):
        fn = QuadraticUtility(critical_time=10.0)
        assert check_concavity(fn, 0.0, 10.0)

    def test_rejects_negative_curvature(self):
        with pytest.raises(UtilityError):
            QuadraticUtility(critical_time=10.0, a=-1.0)


class TestExponentialUtility:
    def test_decay(self):
        fn = ExponentialUtility(critical_time=30.0, u_max=1.0, tau=10.0)
        assert fn.value(0.0) == pytest.approx(1.0)
        assert fn.value(10.0) == pytest.approx(math.exp(-1.0))

    def test_not_concave(self):
        # exp decay is convex; the checker must say so (strict mode rejects).
        fn = ExponentialUtility(critical_time=30.0)
        assert not check_concavity(fn, 0.1, 30.0)


class TestInelasticUtility:
    def test_step_shape(self):
        fn = InelasticUtility(critical_time=20.0, u_max=5.0)
        assert fn.value(19.9) == 5.0
        assert fn.value(20.0) == 5.0
        assert fn.value(20.1) == 0.0

    def test_zero_derivative(self):
        fn = InelasticUtility(critical_time=20.0)
        assert fn.derivative(5.0) == 0.0

    def test_not_elastic(self):
        assert not InelasticUtility(critical_time=20.0).is_elastic()


class TestConcavityChecker:
    def test_rejects_bad_interval(self):
        fn = LinearUtility(critical_time=10.0)
        with pytest.raises(UtilityError):
            check_concavity(fn, 5.0, 5.0)

    def test_linear_is_concave(self):
        assert check_concavity(LinearUtility(critical_time=10.0), 0.1, 10.0)
