"""Unit tests for triggering events (arrival processes)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.events import BurstyEvent, PeriodicEvent, PoissonEvent


class TestPeriodicEvent:
    def test_arrivals(self):
        ev = PeriodicEvent(period=100.0)
        assert ev.arrivals(350.0) == [0.0, 100.0, 200.0, 300.0]

    def test_phase(self):
        ev = PeriodicEvent(period=100.0, phase=30.0)
        assert ev.arrivals(250.0) == [30.0, 130.0, 230.0]

    def test_horizon_before_phase(self):
        ev = PeriodicEvent(period=10.0, phase=50.0)
        assert ev.arrivals(20.0) == []

    def test_mean_rate(self):
        assert PeriodicEvent(period=25.0).mean_rate() == pytest.approx(0.04)

    def test_stream_matches_arrivals(self):
        ev = PeriodicEvent(period=100.0, phase=10.0)
        stream = ev.stream()
        streamed = [next(stream) for _ in range(4)]
        assert streamed == ev.arrivals(350.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ModelError):
            PeriodicEvent(period=0.0)
        with pytest.raises(ModelError):
            PeriodicEvent(period=1.0, phase=-1.0)


class TestPoissonEvent:
    def test_mean_rate(self):
        assert PoissonEvent(rate=0.04).mean_rate() == pytest.approx(0.04)

    def test_arrivals_require_rng(self):
        with pytest.raises(ModelError):
            PoissonEvent(rate=1.0).arrivals(10.0)
        with pytest.raises(ModelError):
            PoissonEvent(rate=1.0).stream()

    def test_empirical_rate(self):
        rng = np.random.default_rng(0)
        ev = PoissonEvent(rate=0.5)
        arrivals = ev.arrivals(20000.0, rng)
        assert len(arrivals) == pytest.approx(10000, rel=0.05)

    def test_sorted_and_within_horizon(self):
        rng = np.random.default_rng(1)
        arrivals = PoissonEvent(rate=1.0).arrivals(100.0, rng)
        assert arrivals == sorted(arrivals)
        assert all(0.0 < t < 100.0 for t in arrivals)

    def test_stream_is_incremental(self):
        rng = np.random.default_rng(2)
        stream = PoissonEvent(rate=1.0).stream(rng)
        values = [next(stream) for _ in range(100)]
        assert values == sorted(values)
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rejects_bad_rate(self):
        with pytest.raises(ModelError):
            PoissonEvent(rate=0.0)


class TestBurstyEvent:
    def test_mean_rate_duty_cycle(self):
        ev = BurstyEvent(burst_rate=2.0, mean_on=10.0, mean_off=30.0)
        assert ev.mean_rate() == pytest.approx(0.5)

    def test_empirical_rate(self):
        rng = np.random.default_rng(3)
        ev = BurstyEvent(burst_rate=1.0, mean_on=50.0, mean_off=50.0)
        arrivals = ev.arrivals(100000.0, rng)
        assert len(arrivals) == pytest.approx(50000, rel=0.1)

    def test_burstiness_exceeds_poisson(self):
        # The variance of per-window counts should exceed Poisson's
        # (index of dispersion > 1).
        rng = np.random.default_rng(4)
        ev = BurstyEvent(burst_rate=5.0, mean_on=20.0, mean_off=80.0)
        arrivals = np.array(ev.arrivals(50000.0, rng))
        counts, _ = np.histogram(arrivals, bins=np.arange(0, 50001, 100))
        dispersion = counts.var() / max(counts.mean(), 1e-9)
        assert dispersion > 1.5

    def test_sorted(self):
        rng = np.random.default_rng(5)
        ev = BurstyEvent(burst_rate=2.0, mean_on=10.0, mean_off=10.0)
        arrivals = ev.arrivals(1000.0, rng)
        assert arrivals == sorted(arrivals)

    def test_stream_sorted(self):
        rng = np.random.default_rng(6)
        stream = BurstyEvent(burst_rate=2.0, mean_on=10.0,
                             mean_off=10.0).stream(rng)
        values = [next(stream) for _ in range(200)]
        assert values == sorted(values)

    def test_rejects_bad_params(self):
        with pytest.raises(ModelError):
            BurstyEvent(burst_rate=0.0, mean_on=1.0, mean_off=1.0)
        with pytest.raises(ModelError):
            BurstyEvent(burst_rate=1.0, mean_on=0.0, mean_off=1.0)
        with pytest.raises(ModelError):
            BurstyEvent(burst_rate=1.0, mean_on=1.0, mean_off=1.0).arrivals(10.0)
