"""Tests for workload (de)serialization."""

import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.errors import ModelError
from repro.model.serialize import (
    taskset_from_dict,
    taskset_from_json,
    taskset_to_dict,
    taskset_to_json,
)
from repro.model.share import PowerLawShare
from repro.model.task import Subtask, Task, TaskSet
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource
from repro.model.utility import (
    ExponentialUtility,
    InelasticUtility,
    LogUtility,
    QuadraticUtility,
)
from repro.workloads.paper import base_workload, prototype_workload


def assert_equivalent(a: TaskSet, b: TaskSet) -> None:
    assert {t.name for t in a.tasks} == {t.name for t in b.tasks}
    assert set(a.resources) == set(b.resources)
    for rname in a.resources:
        ra, rb = a.resources[rname], b.resources[rname]
        assert (ra.kind, ra.availability, ra.lag) == \
            (rb.kind, rb.availability, rb.lag)
    for task_a in a.tasks:
        task_b = b.task(task_a.name)
        assert task_a.subtask_names == task_b.subtask_names
        assert task_a.graph.edges == task_b.graph.edges
        assert task_a.critical_time == task_b.critical_time
        assert task_a.variant == task_b.variant
        assert task_a.weights == task_b.weights
        for name in task_a.subtask_names:
            sa, sb = task_a.subtask(name), task_b.subtask(name)
            assert (sa.resource, sa.exec_time, sa.percentile) == \
                (sb.resource, sb.exec_time, sb.percentile)


class TestRoundTrip:
    def test_base_workload(self):
        original = base_workload()
        restored = taskset_from_dict(taskset_to_dict(original))
        assert_equivalent(original, restored)

    def test_prototype_workload(self):
        original = prototype_workload()
        restored = taskset_from_json(taskset_to_json(original))
        assert_equivalent(original, restored)

    def test_optimization_identical_after_roundtrip(self):
        original = base_workload()
        restored = taskset_from_json(taskset_to_json(original))
        r1 = LLAOptimizer(original, LLAConfig(max_iterations=200)).run()
        r2 = LLAOptimizer(restored, LLAConfig(max_iterations=200)).run()
        assert r1.latencies == pytest.approx(r2.latencies)

    @pytest.mark.parametrize("utility_factory", [
        lambda C: LogUtility(C),
        lambda C: QuadraticUtility(C),
        lambda C: ExponentialUtility(C),
        lambda C: InelasticUtility(C, u_max=3.0),
    ])
    def test_all_utility_families(self, utility_factory):
        task = Task(
            "t",
            [Subtask("s", "r0", 2.0)],
            SubtaskGraph.single("s"),
            critical_time=30.0,
            utility=utility_factory(30.0),
        )
        ts = TaskSet([task], [Resource("r0")])
        restored = taskset_from_dict(taskset_to_dict(ts))
        orig_u = ts.tasks[0].utility
        rest_u = restored.tasks[0].utility
        assert type(orig_u) is type(rest_u)
        for lat in (1.0, 10.0, 29.0):
            assert orig_u.value(lat) == pytest.approx(rest_u.value(lat))


class TestCustomShareFunctions:
    def test_flagged_and_replaced_by_default_model(self):
        task = Task(
            "t",
            [Subtask("s", "r0", 2.0,
                     share_function=PowerLawShare(cost=4.0, alpha=2.0))],
            SubtaskGraph.single("s"),
            critical_time=30.0,
            utility=LogUtility(30.0),
        )
        ts = TaskSet([task], [Resource("r0", lag=1.0)])
        data = taskset_to_dict(ts)
        assert data["custom_share_functions_dropped"] == ["s"]
        restored = taskset_from_dict(data)
        # The restored model is the paper's default.
        assert restored.share_function("s").share(6.0) == \
            pytest.approx(0.5)


class TestErrors:
    def test_unknown_format_version(self):
        data = taskset_to_dict(base_workload())
        data["format_version"] = 99
        with pytest.raises(ModelError, match="format version"):
            taskset_from_dict(data)

    def test_invalid_json(self):
        with pytest.raises(ModelError, match="invalid workload JSON"):
            taskset_from_json("{not json")

    def test_unknown_utility_type(self):
        data = taskset_to_dict(base_workload())
        data["tasks"][0]["utility"] = {"type": "mystery"}
        with pytest.raises(ModelError, match="unknown utility"):
            taskset_from_dict(data)

    def test_unknown_trigger_type(self):
        data = taskset_to_dict(base_workload())
        data["tasks"][0]["trigger"] = {"type": "cron"}
        with pytest.raises(ModelError, match="unknown trigger"):
            taskset_from_dict(data)
