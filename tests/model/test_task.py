"""Unit tests for tasks and task sets (Sections 2–3 structure rules)."""

import pytest

from repro.errors import ModelError
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource
from repro.model.share import PowerLawShare
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import LinearUtility


def simple_task(variant="path-weighted", name="t") -> Task:
    names = ["a", "b", "c", "d"]
    edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    subtasks = [
        Subtask(name=n, resource=f"r{i}", exec_time=2.0)
        for i, n in enumerate(names)
    ]
    return Task(
        name=name,
        subtasks=subtasks,
        graph=SubtaskGraph(names, edges),
        critical_time=40.0,
        utility=LinearUtility(40.0),
        variant=variant,
    )


def resources(n=4):
    return [Resource(name=f"r{i}", availability=1.0, lag=1.0)
            for i in range(n)]


class TestSubtask:
    def test_validation(self):
        with pytest.raises(ModelError):
            Subtask(name="", resource="r0", exec_time=1.0)
        with pytest.raises(ModelError):
            Subtask(name="s", resource="", exec_time=1.0)
        with pytest.raises(ModelError):
            Subtask(name="s", resource="r0", exec_time=0.0)
        with pytest.raises(ModelError):
            Subtask(name="s", resource="r0", exec_time=1.0, percentile=0.0)
        with pytest.raises(ModelError):
            Subtask(name="s", resource="r0", exec_time=1.0, percentile=101.0)

    def test_worst_case_default_percentile(self):
        sub = Subtask(name="s", resource="r0", exec_time=1.0)
        assert sub.percentile == 100.0


class TestTask:
    def test_path_weighted_weights(self):
        task = simple_task("path-weighted")
        assert task.weight("a") == 2.0
        assert task.weight("b") == 1.0
        assert task.weight("d") == 2.0

    def test_sum_weights(self):
        task = simple_task("sum")
        assert all(task.weight(n) == 1.0 for n in task.subtask_names)

    def test_aggregated_latency(self):
        task = simple_task("path-weighted")
        lat = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        assert task.aggregated_latency(lat) == pytest.approx(
            2 * 1.0 + 2.0 + 3.0 + 2 * 4.0
        )

    def test_utility_gradient_chain_rule(self):
        task = simple_task("path-weighted")
        lat = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        grad = task.utility_gradient(lat)
        # Linear utility with slope 1: gradient = -w_s.
        assert grad["a"] == pytest.approx(-2.0)
        assert grad["b"] == pytest.approx(-1.0)

    def test_meets_critical_time(self):
        task = simple_task()
        ok = {"a": 5.0, "b": 5.0, "c": 5.0, "d": 5.0}
        late = {"a": 20.0, "b": 20.0, "c": 5.0, "d": 20.0}
        assert task.meets_critical_time(ok)
        assert not task.meets_critical_time(late)

    def test_rejects_unknown_variant(self):
        with pytest.raises(ModelError, match="variant"):
            simple_task(variant="nonsense")

    def test_rejects_graph_mismatch(self):
        subtasks = [Subtask(name="a", resource="r0", exec_time=1.0)]
        graph = SubtaskGraph.chain(["a", "b"])
        with pytest.raises(ModelError, match="mismatch"):
            Task("t", subtasks, graph, 10.0, LinearUtility(10.0))

    def test_rejects_duplicate_subtask_names(self):
        subtasks = [
            Subtask(name="a", resource="r0", exec_time=1.0),
            Subtask(name="a", resource="r1", exec_time=1.0),
        ]
        with pytest.raises(ModelError, match="duplicate"):
            Task("t", subtasks, SubtaskGraph.single("a"), 10.0,
                 LinearUtility(10.0))

    def test_unknown_subtask_lookup(self):
        task = simple_task()
        with pytest.raises(ModelError):
            task.subtask("ghost")
        with pytest.raises(ModelError):
            task.weight("ghost")


class TestTaskSet:
    def test_basic_construction(self):
        ts = TaskSet([simple_task()], resources())
        assert len(ts) == 1
        assert len(ts.all_subtasks) == 4

    def test_rejects_shared_resource_within_task(self):
        names = ["a", "b"]
        subtasks = [
            Subtask(name="a", resource="r0", exec_time=1.0),
            Subtask(name="b", resource="r0", exec_time=1.0),
        ]
        task = Task("t", subtasks, SubtaskGraph.chain(names), 10.0,
                    LinearUtility(10.0))
        with pytest.raises(ModelError, match="two subtasks on resource"):
            TaskSet([task], resources(1))
        # ... unless explicitly allowed.
        ts = TaskSet([task], resources(1), allow_shared_resources=True)
        assert len(ts.subtasks_on("r0")) == 2

    def test_rejects_unknown_resource(self):
        task = simple_task()
        with pytest.raises(ModelError, match="unknown resource"):
            TaskSet([task], resources(2))

    def test_rejects_duplicate_task_names(self):
        with pytest.raises(ModelError, match="duplicate task names"):
            TaskSet([simple_task(name="t"), simple_task(name="t")],
                    resources())

    def test_rejects_cross_task_subtask_collision(self):
        with pytest.raises(ModelError, match="multiple tasks"):
            TaskSet([simple_task(name="t1"), simple_task(name="t2")],
                    resources())

    def test_owner_and_resource_indexes(self):
        ts = TaskSet([simple_task()], resources())
        assert ts.owner_of("a").name == "t"
        on_r0 = ts.subtasks_on("r0")
        assert len(on_r0) == 1 and on_r0[0][1].name == "a"

    def test_default_share_function_uses_resource_lag(self):
        ts = TaskSet([simple_task()], resources())
        fn = ts.share_function("a")
        # exec 2.0 + lag 1.0
        assert fn.share(6.0) == pytest.approx(0.5)

    def test_custom_share_function_preserved(self):
        custom = PowerLawShare(cost=4.0, alpha=2.0)
        names = ["a"]
        task = Task(
            "t",
            [Subtask(name="a", resource="r0", exec_time=1.0,
                     share_function=custom)],
            SubtaskGraph.single("a"),
            10.0,
            LinearUtility(10.0),
        )
        ts = TaskSet([task], resources(1))
        assert ts.share_function("a") is custom

    def test_total_utility_sums_tasks(self):
        t1, t2 = simple_task(name="t1"), simple_task(name="t2")
        # Rename t2 subtasks to avoid collision.
        names = ["e", "f", "g", "h"]
        edges = [("e", "f"), ("e", "g"), ("f", "h"), ("g", "h")]
        t2 = Task(
            "t2",
            [Subtask(name=n, resource=f"r{i}", exec_time=2.0)
             for i, n in enumerate(names)],
            SubtaskGraph(names, edges),
            40.0,
            LinearUtility(40.0),
        )
        ts = TaskSet([t1, t2], resources())
        lat = {n: 5.0 for n in ts.subtask_names}
        assert ts.total_utility(lat) == pytest.approx(
            t1.utility_value(lat) + t2.utility_value(lat)
        )

    def test_resource_load(self):
        ts = TaskSet([simple_task()], resources())
        lat = {n: 6.0 for n in ts.subtask_names}
        assert ts.resource_load("r0", lat) == pytest.approx(0.5)

    def test_constraint_violations_reported(self):
        ts = TaskSet([simple_task()], resources())
        # Tiny latencies -> shares explode -> resource violations.
        tight = {n: 1.0 for n in ts.subtask_names}
        problems = ts.constraint_violations(tight)
        assert any("overloaded" in p for p in problems)
        # Huge latencies -> path violations.
        slow = {n: 50.0 for n in ts.subtask_names}
        problems = ts.constraint_violations(slow)
        assert any("critical time" in p for p in problems)

    def test_is_feasible(self):
        ts = TaskSet([simple_task()], resources())
        good = {n: 12.0 for n in ts.subtask_names}
        assert ts.is_feasible(good)

    def test_set_share_function_validates_name(self):
        ts = TaskSet([simple_task()], resources())
        with pytest.raises(ModelError):
            ts.set_share_function("ghost", PowerLawShare(cost=1.0))
