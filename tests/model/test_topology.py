"""Tests for the network-topology deployment layer."""

import pytest

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.errors import ModelError
from repro.model.events import PeriodicEvent
from repro.model.resources import ResourceKind
from repro.model.topology import ComputeStage, NetworkTopology
from repro.model.utility import LinearUtility


def line3() -> NetworkTopology:
    return NetworkTopology.line(["a", "b", "c"])


class TestConstruction:
    def test_line(self):
        topo = line3()
        assert topo.graph.number_of_nodes() == 3
        assert topo.graph.number_of_edges() == 2

    def test_star(self):
        topo = NetworkTopology.star("hub", ["l1", "l2", "l3"])
        assert topo.graph.number_of_edges() == 3
        assert topo.route("l1", "l2") == [("l1", "hub"), ("hub", "l2")]

    def test_duplicate_node_rejected(self):
        topo = line3()
        with pytest.raises(ModelError):
            topo.add_node("a")

    def test_duplicate_link_rejected(self):
        topo = line3()
        with pytest.raises(ModelError):
            topo.add_link("a", "b")

    def test_link_to_unknown_node_rejected(self):
        topo = line3()
        with pytest.raises(ModelError):
            topo.add_link("a", "ghost")

    def test_no_route(self):
        topo = NetworkTopology()
        topo.add_node("x")
        topo.add_node("y")
        with pytest.raises(ModelError):
            topo.route("x", "y")


class TestResources:
    def test_one_resource_per_node_and_link(self):
        topo = line3()
        resources = topo.resources()
        names = {r.name for r in resources}
        assert names == {"cpu:a", "cpu:b", "cpu:c",
                         "link:a-b", "link:b-c"}
        kinds = {r.name: r.kind for r in resources}
        assert kinds["cpu:a"] is ResourceKind.CPU
        assert kinds["link:a-b"] is ResourceKind.LINK

    def test_link_name_order_independent(self):
        assert NetworkTopology.link_resource_name("z", "a") == \
            NetworkTopology.link_resource_name("a", "z")


class TestDeployment:
    def test_pipeline_generates_link_subtasks(self):
        topo = line3()
        task = topo.deploy_pipeline(
            "flow",
            [ComputeStage("src", "a", exec_time=2.0, transfer_time=1.0),
             ComputeStage("dst", "c", exec_time=3.0)],
            critical_time=60.0,
            utility=LinearUtility(60.0),
            trigger=PeriodicEvent(100.0),
        )
        # a -> c crosses two links: 2 compute + 2 transfer subtasks.
        assert len(task.subtasks) == 4
        resources = [s.resource for s in task.subtasks]
        assert resources == ["cpu:a", "link:a-b", "link:b-c", "cpu:c"]
        # Chain precedence in deployment order.
        assert len(task.graph.paths) == 1

    def test_colocated_stages_rejected(self):
        # Two stages on the same node would need the same CPU twice —
        # rejected by the paper's one-resource-per-task rule, with a
        # message telling the user to restructure.
        topo = line3()
        with pytest.raises(ModelError, match="may not visit the same"):
            topo.deploy_pipeline(
                "local",
                [ComputeStage("one", "a", exec_time=1.0),
                 ComputeStage("two", "a", exec_time=1.0)],
                critical_time=60.0,
                utility=LinearUtility(60.0),
            )

    def test_unknown_node_rejected(self):
        topo = line3()
        with pytest.raises(ModelError):
            topo.deploy_pipeline(
                "bad",
                [ComputeStage("s", "ghost", exec_time=1.0)],
                critical_time=10.0,
                utility=LinearUtility(10.0),
            )

    def test_empty_pipeline_rejected(self):
        topo = line3()
        with pytest.raises(ModelError):
            topo.deploy_pipeline("empty", [], 10.0, LinearUtility(10.0))

    def test_build_taskset_requires_deployments(self):
        with pytest.raises(ModelError):
            line3().build_taskset()


class TestEndToEnd:
    def test_shared_link_contention_optimized(self):
        """Two pipelines crossing the same physical link: LLA must split
        the link's bandwidth between them."""
        topo = NetworkTopology.star("hub", ["s1", "s2", "sink"])
        for i, src in enumerate(("s1", "s2")):
            topo.deploy_pipeline(
                f"flow{i}",
                [ComputeStage("produce", src, exec_time=2.0,
                              transfer_time=3.0),
                 ComputeStage("consume", "sink", exec_time=2.0)],
                critical_time=50.0,
                utility=LinearUtility(50.0),
                trigger=PeriodicEvent(100.0),
            )
        ts = topo.build_taskset()
        # Both flows traverse link hub-sink.
        shared = ts.subtasks_on("link:hub-sink")
        assert len(shared) == 2

        result = LLAOptimizer(ts, LLAConfig(max_iterations=1000)).run()
        assert ts.is_feasible(result.latencies, tol=1e-2)
        load = ts.resource_load("link:hub-sink", result.latencies)
        assert load == pytest.approx(1.0, abs=0.02)   # saturated & split
