"""Tests for canonical task-set fingerprints."""

from repro.model.fingerprint import taskset_fingerprint
from repro.model.share import CorrectedShare
from repro.workloads.paper import base_workload
from tests.conftest import make_chain_taskset


class TestDeterminism:
    def test_equal_construction_equal_fingerprint(self):
        assert taskset_fingerprint(make_chain_taskset()) == \
            taskset_fingerprint(make_chain_taskset())

    def test_stable_across_calls(self):
        ts = base_workload()
        assert taskset_fingerprint(ts) == taskset_fingerprint(ts)

    def test_is_hex_sha256(self):
        fp = taskset_fingerprint(make_chain_taskset())
        assert len(fp) == 64
        int(fp, 16)


class TestSensitivity:
    """Anything that changes the optimization problem must change the
    fingerprint — checkpoints and cached structures keyed on it are only
    interchangeable under exact problem equality."""

    def test_availability(self):
        shocked = make_chain_taskset()
        shocked.set_availability("r0", 0.5)
        assert taskset_fingerprint(shocked) != \
            taskset_fingerprint(make_chain_taskset())

    def test_critical_time(self):
        assert taskset_fingerprint(make_chain_taskset(critical_time=31.0)) \
            != taskset_fingerprint(make_chain_taskset())

    def test_exec_time(self):
        assert taskset_fingerprint(make_chain_taskset(exec_time=2.5)) != \
            taskset_fingerprint(make_chain_taskset())

    def test_utility_parameters(self):
        assert taskset_fingerprint(make_chain_taskset(k=3.0)) != \
            taskset_fingerprint(make_chain_taskset())

    def test_membership(self):
        assert taskset_fingerprint(make_chain_taskset(n_subtasks=2)) != \
            taskset_fingerprint(make_chain_taskset(n_subtasks=3))

    def test_share_function_retuning(self):
        """Online error correction retunes CorrectedShare in place; the
        retuned problem must not reuse the old problem's dual state."""
        ts = make_chain_taskset()
        base = ts.share_function("s0")
        corrected = CorrectedShare(base, error=0.0)
        ts.set_share_function("s0", corrected)
        before = taskset_fingerprint(ts)
        corrected.set_error(-0.25)
        assert taskset_fingerprint(ts) != before
