"""Smoke tests for the example scripts.

Every example must import cleanly (catching API drift), and the quick
ones are executed end to end.  The long-running examples are exercised
through the same library paths by the experiment benches, so running
their mains here would only duplicate minutes of work.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def test_examples_discovered():
    assert len(ALL_EXAMPLES) >= 6


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports(name):
    module = importlib.import_module(name)
    assert callable(getattr(module, "main", None)), (
        f"example {name} must expose a main()"
    )


def test_quickstart_runs(capsys):
    module = importlib.import_module("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "converged: True" in out
    assert "TASK T1" in out
    assert "critical path" in out
