"""Shared fixtures: canonical task sets used across the test suite."""

import pytest

from repro.model.events import PeriodicEvent
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import LinearUtility
from repro.workloads.paper import base_workload, prototype_workload


@pytest.fixture
def base_ts() -> TaskSet:
    """The paper's three-task Table 1 workload."""
    return base_workload()


@pytest.fixture
def proto_ts() -> TaskSet:
    """The paper's Section 6 prototype workload."""
    return prototype_workload()


def make_chain_taskset(
    n_subtasks: int = 3,
    exec_time: float = 2.0,
    critical_time: float = 30.0,
    availability: float = 1.0,
    lag: float = 1.0,
    period: float = 50.0,
    variant: str = "path-weighted",
    k: float = 2.0,
) -> TaskSet:
    """A single chain task on dedicated resources — the smallest useful
    workload for unit tests."""
    names = [f"s{i}" for i in range(n_subtasks)]
    subtasks = [
        Subtask(name=names[i], resource=f"r{i}", exec_time=exec_time)
        for i in range(n_subtasks)
    ]
    resources = [
        Resource(name=f"r{i}", availability=availability, lag=lag)
        for i in range(n_subtasks)
    ]
    task = Task(
        name="chain",
        subtasks=subtasks,
        graph=SubtaskGraph.chain(names),
        critical_time=critical_time,
        utility=LinearUtility(critical_time, k=k),
        variant=variant,
        trigger=PeriodicEvent(period),
    )
    return TaskSet([task], resources)


@pytest.fixture
def chain_ts() -> TaskSet:
    return make_chain_taskset()


def make_diamond_taskset(critical_time: float = 40.0) -> TaskSet:
    """One diamond-shaped task (root → two branches → join)."""
    names = ["root", "left", "right", "join"]
    edges = [("root", "left"), ("root", "right"),
             ("left", "join"), ("right", "join")]
    subtasks = [
        Subtask(name=n, resource=f"r_{n}", exec_time=2.0 + i)
        for i, n in enumerate(names)
    ]
    resources = [Resource(name=f"r_{n}", availability=1.0, lag=1.0)
                 for n in names]
    task = Task(
        name="diamond",
        subtasks=subtasks,
        graph=SubtaskGraph(names, edges),
        critical_time=critical_time,
        utility=LinearUtility(critical_time),
        trigger=PeriodicEvent(100.0),
    )
    return TaskSet([task], resources)


@pytest.fixture
def diamond_ts() -> TaskSet:
    return make_diamond_taskset()
