"""Program trading: the paper's motivating application, end to end.

Section 1 motivates LLA with a program-trading system: market data must be
received, analyzed and turned into orders, with bandwidth and CPU both
constrained and shared between feed handling and strategy analysis.

This example models that system:

* **tick-to-trade** (elastic, tight deadline): market data arrives on a
  feed link, is normalized on the feed CPU, analyzed by the strategy CPU,
  and an order goes out on the order link.  Every millisecond of latency
  costs money — a steep linear utility.
* **risk-check** (elastic, medium deadline): positions stream to the risk
  CPU and alerts fan out to two consumers.
* **analytics** (elastic, loose deadline): a bulk model-refresh pipeline
  that should soak up whatever capacity is left — work-conserving surplus
  use, exactly the behaviour Section 1 asks for.

After optimizing, the example *executes* the allocation on the
discrete-event simulator with bursty market-data arrivals and reports the
observed end-to-end latency percentiles against each deadline.
"""

from repro.core import LLAConfig, LLAOptimizer
from repro.model import (
    BurstyEvent,
    LinearUtility,
    PeriodicEvent,
    Resource,
    ResourceKind,
    Subtask,
    SubtaskGraph,
    Task,
    TaskSet,
)
from repro.sim import SimulatedSystem


def build_taskset() -> TaskSet:
    resources = [
        Resource("feed-link", ResourceKind.LINK, availability=0.95, lag=0.5),
        Resource("feed-cpu", ResourceKind.CPU, availability=0.9, lag=1.0),
        Resource("strategy-cpu", ResourceKind.CPU, availability=0.9, lag=1.0),
        Resource("order-link", ResourceKind.LINK, availability=0.95, lag=0.5),
        Resource("risk-cpu", ResourceKind.CPU, availability=0.9, lag=1.0),
        Resource("alert-link", ResourceKind.LINK, availability=0.95, lag=0.5),
    ]

    # Tick-to-trade: feed-link -> feed-cpu -> strategy-cpu -> order-link.
    t2t_names = ["t2t_recv", "t2t_norm", "t2t_strat", "t2t_send"]
    tick_to_trade = Task(
        name="tick-to-trade",
        subtasks=[
            Subtask("t2t_recv", "feed-link", exec_time=0.8),
            Subtask("t2t_norm", "feed-cpu", exec_time=1.5),
            Subtask("t2t_strat", "strategy-cpu", exec_time=2.5),
            Subtask("t2t_send", "order-link", exec_time=0.7),
        ],
        graph=SubtaskGraph.chain(t2t_names),
        critical_time=25.0,
        # Steep slope: every ms below the deadline is worth 4x baseline.
        utility=LinearUtility(25.0, k=2.0, slope=4.0),
        variant="path-weighted",
        trigger=BurstyEvent(burst_rate=0.08, mean_on=200.0, mean_off=300.0),
    )

    # Risk check: positions -> risk-cpu -> alerts to two consumers.
    risk = Task(
        name="risk-check",
        subtasks=[
            Subtask("risk_feed", "feed-link", exec_time=0.6),
            Subtask("risk_calc", "risk-cpu", exec_time=4.0),
            Subtask("risk_alert", "alert-link", exec_time=0.9),
            Subtask("risk_order_block", "order-link", exec_time=0.5),
        ],
        graph=SubtaskGraph(
            ["risk_feed", "risk_calc", "risk_alert", "risk_order_block"],
            [("risk_feed", "risk_calc"),
             ("risk_calc", "risk_alert"),
             ("risk_calc", "risk_order_block")],
        ),
        critical_time=60.0,
        utility=LinearUtility(60.0, k=2.0, slope=2.0),
        variant="path-weighted",
        trigger=PeriodicEvent(40.0),
    )

    # Analytics: bulk refresh, loose deadline, baseline importance.
    ana_names = ["ana_pull", "ana_feature", "ana_model"]
    analytics = Task(
        name="analytics",
        subtasks=[
            Subtask("ana_pull", "alert-link", exec_time=2.0),
            Subtask("ana_feature", "feed-cpu", exec_time=5.0),
            Subtask("ana_model", "strategy-cpu", exec_time=8.0),
        ],
        graph=SubtaskGraph.chain(ana_names),
        critical_time=400.0,
        utility=LinearUtility(400.0, k=2.0, slope=1.0),
        variant="path-weighted",
        trigger=PeriodicEvent(100.0),
    )

    return TaskSet([tick_to_trade, risk, analytics], resources)


def main() -> None:
    taskset = build_taskset()
    print(f"workload: {taskset}")

    result = LLAOptimizer(taskset, LLAConfig(max_iterations=2000)).run()
    print(f"LLA converged: {result.converged} "
          f"({result.iterations} iterations, utility {result.utility:.1f})")
    print()
    print("optimized latency budget per subtask (ms):")
    for task in taskset.tasks:
        budgets = ", ".join(
            f"{name}={result.latencies[name]:.1f}"
            for name in task.subtask_names
        )
        _, crit = task.critical_path(result.latencies)
        print(f"  {task.name:14s} [{budgets}]  "
              f"critical path {crit:.1f}/{task.critical_time:.0f}")

    # Enact the shares on the simulator and measure reality.
    shares = {
        name: taskset.share_function(name).share(lat)
        for name, lat in result.latencies.items()
    }
    print()
    print("enacted shares:")
    for rname in taskset.resources:
        row = ", ".join(
            f"{sub.name}={shares[sub.name]:.3f}"
            for _t, sub in taskset.subtasks_on(rname)
        )
        print(f"  {rname:13s} {row}")

    system = SimulatedSystem(taskset, shares, model="gps", seed=2026)
    system.run_for(60_000.0)   # one simulated minute

    print()
    print("observed end-to-end latency (60 s of simulated trading):")
    for task in taskset.tasks:
        p50 = system.recorder.jobset_percentile(task.name, 50)
        p99 = system.recorder.jobset_percentile(task.name, 99)
        miss = system.recorder.jobset_miss_rate(task.name, task.critical_time)
        print(f"  {task.name:14s} p50={p50:7.2f} ms  p99={p99:7.2f} ms  "
              f"deadline misses: {100 * miss:.2f}%")
    print()
    print("CPU/link utilization:",
          {k: round(v, 2) for k, v in system.utilizations().items()})


if __name__ == "__main__":
    main()
