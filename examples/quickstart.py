"""Quickstart: optimize the paper's Table 1 workload with LLA.

Builds the three-task workload of Section 5.1, runs the Lagrangian Latency
Assignment optimizer with the paper's best configuration (adaptive step
sizes, path-weighted utility), and prints the converged latency assignment
next to the paper's own numbers.

Run with::

    python examples/quickstart.py
"""

from repro import LLAConfig, LLAOptimizer, base_workload
from repro.analysis import format_table1
from repro.workloads import TABLE1_LATENCIES


def main() -> None:
    # 1. The workload: 3 tasks / 21 subtasks over 8 resources, every
    #    resource close to congestion (the paper's hardest regime).
    taskset = base_workload()
    print(f"workload: {taskset}")

    # 2. Run LLA until convergence.
    optimizer = LLAOptimizer(taskset, LLAConfig(max_iterations=1500))
    result = optimizer.run()
    print(f"converged: {result.converged} after {result.iterations} iterations")
    print(f"total utility: {result.utility:.2f}")
    print()

    # 3. The optimized latencies, Table 1 style, with the paper's values
    #    for comparison.
    print(format_table1(taskset, result.latencies,
                        paper_latencies=TABLE1_LATENCIES))

    # 4. The two constraint families at the optimum: resources saturated,
    #    critical paths pinned just under the deadlines.
    print("resource loads (B_r = 1.0):")
    for rname, load in sorted(taskset.resource_loads(result.latencies).items()):
        print(f"  {rname}: {load:.4f}")
    print()
    for task in taskset.tasks:
        path, latency = task.critical_path(result.latencies)
        print(f"  {task.name}: critical path {'→'.join(path)} = "
              f"{latency:.2f} ms (deadline {task.critical_time:.0f} ms)")


if __name__ == "__main__":
    main()
