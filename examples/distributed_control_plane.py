"""Running LLA as a distributed protocol under control-plane faults.

Section 4 presents LLA as a *distributed* algorithm: per-task controllers
and per-resource price agents exchanging prices and latencies.  This
example runs that protocol on a simulated control network and demonstrates
the properties a real deployment cares about:

1. an ideal network reproduces the centralized optimizer bit-for-bit;
2. message loss, delay and jitter only slow convergence — prices move on
   stale information, which dual gradient methods tolerate;
3. a temporary partition (a controller cut off from one resource) heals:
   the system re-converges once messages flow again.
"""

from repro.core import LLAConfig, LLAOptimizer
from repro.core.stepsize import FixedStepSize
from repro.distributed import DistributedConfig, DistributedLLARuntime
from repro.workloads import base_workload


def main() -> None:
    # 1. Exact equivalence under an ideal bus.
    central = LLAOptimizer(
        base_workload(),
        LLAConfig(step_policy=FixedStepSize(1.0), max_iterations=200,
                  stop_on_convergence=False),
    ).run()
    ideal = DistributedLLARuntime(
        base_workload(), DistributedConfig(rounds=200, adaptive=False)
    ).run()
    drift = max(
        abs(central.latencies[n] - ideal.latencies[n])
        for n in central.latencies
    )
    print("1) ideal bus vs in-process optimizer:")
    print(f"   max latency difference after 200 rounds: {drift:.2e} ms\n")

    # 2. A lossy, laggy control network.
    print("2) faulty control network (10% loss, 2-round delay, jitter 2):")
    ts = base_workload()
    runtime = DistributedLLARuntime(
        ts,
        DistributedConfig(rounds=1500, loss_probability=0.10,
                          delay=2, jitter=2, seed=11),
    )
    result = runtime.run()
    print(f"   messages sent {runtime.bus.sent}, dropped {runtime.bus.dropped}")
    print(f"   feasible: {ts.is_feasible(result.latencies, tol=1e-2)}, "
          f"utility {result.utility:.2f}")
    for task in ts.tasks:
        _, crit = task.critical_path(result.latencies)
        print(f"   {task.name}: critical path {crit:.2f}/{task.critical_time:.0f} ms")
    print()

    # 3. Partition and heal.
    print("3) partition controller:T1 <-> resource:r0 for 300 rounds, then heal:")
    ts = base_workload()
    runtime = DistributedLLARuntime(ts, DistributedConfig(rounds=1))
    runtime.bus.partition("controller:T1", "resource:r0")
    for _ in range(300):
        runtime.step()
    partitioned = runtime._snapshot()
    print(f"   during partition: max load "
          f"{max(partitioned.resource_loads.values()):.3f} "
          f"(r0 price stale at controller T1)")
    runtime.bus.heal("controller:T1", "resource:r0")
    for _ in range(1500):
        runtime.step()
    healed = runtime._snapshot()
    print(f"   after healing  : max load "
          f"{max(healed.resource_loads.values()):.3f}, "
          f"feasible {ts.is_feasible(healed.latencies, tol=1e-2)}")


if __name__ == "__main__":
    main()
