"""Using LLA as a schedulability test (Section 5.4).

LLA doubles as an online admission gate: run the optimizer against a
candidate workload, and read the verdict off the convergence behaviour —
utilities converge and constraints are met (schedulable), or the iteration
diverges with grossly violated constraints (not schedulable).

This example sweeps workload pressure: the paper's base workload is cloned
1–4× without relaxing the deadlines, and each variant is classified.  The
3-task original is schedulable; every denser variant is not, with the
analyzer reporting *which* constraints break and by how much.
"""

from repro.analysis import SchedulabilityAnalyzer
from repro.workloads import scaled_workload


def main() -> None:
    analyzer = SchedulabilityAnalyzer(iterations=800)
    print("Sweeping workload density at fixed (paper Table 1) deadlines:\n")
    for copies in (1, 2, 3, 4):
        taskset = scaled_workload(copies, critical_time_factor=1.0)
        report = analyzer.analyze(taskset)
        print(f"{len(taskset.tasks):2d} tasks: {report.summary()}")
        if not report.schedulable:
            worst_resource = max(
                report.resource_load_ratios.items(), key=lambda kv: kv[1]
            )
            print(f"          worst resource: {worst_resource[0]} at "
                  f"{worst_resource[1]:.2f}x availability")
        print()

    print("The same 6-task workload becomes schedulable once the deadlines "
          "are relaxed 6x:")
    taskset = scaled_workload(2, critical_time_factor=6.0)
    report = analyzer.analyze(taskset)
    print(f" 6 tasks (6x deadlines): {report.summary()}")


if __name__ == "__main__":
    main()
