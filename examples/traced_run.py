"""Telemetry walkthrough: trace an LLA run, then replay it offline.

Runs the Table 1 workload with a :class:`~repro.telemetry.Telemetry`
context attached, so the optimizer emits a JSONL event trace and fills a
metrics registry while it works.  Then demonstrates the other half of
the layer: loading the trace back from disk — no optimizer required —
and recovering the exact same convergence summary the live run would
report.

Run with::

    python examples/traced_run.py
"""

import tempfile
from pathlib import Path

from repro import LLAConfig, LLAOptimizer, base_workload
from repro.analysis import summarize_trace
from repro.telemetry import (
    Telemetry,
    event_counts,
    read_trace,
    summarize_trace_file,
)


def main() -> None:
    trace_path = Path(tempfile.mkdtemp()) / "run.jsonl"

    # 1. A traced run: metrics on, events streamed to a JSONL file.
    telemetry = Telemetry.to_file(trace_path)
    optimizer = LLAOptimizer(
        base_workload(),
        LLAConfig(max_iterations=1500, warm_start=True),
        telemetry=telemetry,
    )
    result = optimizer.run()
    telemetry.close()
    print(f"converged: {result.converged} after {result.iterations} "
          f"iterations, utility {result.utility:.2f}")
    print(f"trace written to {trace_path}")
    print()

    # 2. The registry accumulated profiling data alongside the trace.
    snapshot = telemetry.registry.snapshot()
    iter_timer = snapshot["lla.iteration_seconds"]
    print(f"iterations timed: {iter_timer['count']}, "
          f"mean {1e6 * iter_timer['mean']:.1f} us, "
          f"p99 {1e6 * iter_timer['p99']:.1f} us")
    print()

    # 3. Replay: the file alone reproduces the live run's summary.
    events = read_trace(trace_path)
    print("event counts:")
    for kind, count in sorted(event_counts(events).items()):
        print(f"  {kind:>18s}: {count}")
    print()

    replayed = summarize_trace_file(trace_path)
    live = summarize_trace(result.history)
    print(f"replayed summary == live summary: {replayed == live}")
    print(f"  settling iteration: {replayed.settling}")
    print(f"  final utility:      {replayed.final_utility:.2f}")


if __name__ == "__main__":
    main()
