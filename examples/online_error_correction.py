"""Online model-error correction on a live system (Section 6).

A compact rerun of the paper's prototype experiment: four tasks over three
share-scheduled CPUs, the optimizer holding shares derived from the
worst-case model until error correction is switched on, at which point it
discovers the model's pessimism and re-allocates — the fast tasks descend
to their minimum rate share (0.2) and the slow tasks absorb the surplus
(0.25), the Figure 8 trajectory.
"""

from repro.core import LLAConfig
from repro.sim.closedloop import ClosedLoopRuntime
from repro.workloads import prototype_workload
from repro.workloads.paper import PROTOTYPE_FAST_MIN_SHARE


def main() -> None:
    taskset = prototype_workload()
    runtime = ClosedLoopRuntime(
        taskset,
        window=2000.0,           # 2 s sampling windows
        model="gps",
        seed=7,
        optimizer_config=LLAConfig(max_iterations=3000),
    )

    print("phase A: pure worst-case model (no correction)")
    for _ in range(5):
        record = runtime.run_epoch()
        print(f"  t={record.time / 1000.0:5.1f}s  "
              f"fast share {record.shares['fast1_s0']:.3f}  "
              f"slow share {record.shares['slow1_s0']:.3f}")

    print("\nphase B: error correction enabled (the paper's t=277 moment)")
    runtime.enable_correction()
    for _ in range(18):
        record = runtime.run_epoch()
        print(f"  t={record.time / 1000.0:5.1f}s  "
              f"fast share {record.shares['fast1_s0']:.3f}  "
              f"slow share {record.shares['slow1_s0']:.3f}  "
              f"smoothed error {record.smoothed_errors['fast1_s0']:+.1f} ms")

    final = runtime.history[-1]
    print(f"\nfast tasks ended at {final.shares['fast1_s0']:.3f} "
          f"(minimum rate share = {PROTOTYPE_FAST_MIN_SHARE}); "
          f"slow tasks at {final.shares['slow1_s0']:.3f} "
          "(paper: 0.20 / 0.25)")


if __name__ == "__main__":
    main()
