"""Chaos engineering against the distributed control plane.

`distributed_control_plane.py` shows LLA tolerating a *degraded*
network — loss, delay, jitter, a partition.  This example goes further:
parts of the control plane *fail outright* under a scripted
:class:`~repro.distributed.faults.FaultPlan`, and the runtime's recovery
machinery (checkpoints, the staleness detector, graceful degradation)
carries the system through.

1. a resource price agent crashes mid-run and warm-restarts from its
   checkpoint; the controllers degrade onto their last feasible
   assignment while its prices are stale, and utility recovers to
   within 1% of the fault-free trajectory;
2. warm vs cold restart: resuming from a checkpoint recovers several
   times faster than re-initializing from scratch;
3. a compound scenario — partition, blackout, duplication + reordering,
   capacity shock — that the protocol still converges through, bitwise
   reproducibly.
"""

from repro.distributed import (
    CapacityShock,
    CrashWindow,
    DistributedConfig,
    DistributedLLARuntime,
    DuplicationWindow,
    FaultPlan,
    LossBurst,
    PartitionWindow,
    ReorderWindow,
)
from repro.experiments.resilience import run_crash_recovery
from repro.workloads import base_workload


def main() -> None:
    # 1. Crash + warm restart, measured against the fault-free twin.
    print("1) crash resource:r0 at round 400 for 50 rounds, warm restart:")
    report = run_crash_recovery(warm=True)
    print(f"   {report.summary()}")
    print(f"   safe while degraded: {report.degradation_safe()}, "
          f"recovered: {report.recovered()}\n")

    # 2. Warm vs cold restart.
    print("2) warm vs cold restart recovery time:")
    cold = run_crash_recovery(warm=False)
    print(f"   warm: {report.recovery_time} rounds   "
          f"cold: {cold.recovery_time} rounds\n")

    # 3. A compound chaos scenario, scripted and reproducible.
    print("3) compound scenario (partition + blackout + duplication/"
          "reordering + capacity shock):")
    plan = FaultPlan(
        crashes=(CrashWindow("resource:r1", at=300, restart_at=340),),
        partitions=(PartitionWindow("controller:T2", "resource:r4",
                                    start=100, end=200),),
        loss_bursts=(LossBurst(start=450, end=470, probability=1.0),),
        duplications=(DuplicationWindow(start=500, end=560,
                                        probability=0.5),),
        reorders=(ReorderWindow(start=500, end=560),),
        capacity_shocks=(CapacityShock("r0", at=600, factor=0.7,
                                       restore_at=800),),
    )
    ts = base_workload()
    runtime = DistributedLLARuntime(
        ts,
        DistributedConfig(rounds=1500, seed=17, jitter=1, fault_plan=plan,
                          staleness_limit=10, checkpoint_interval=25,
                          message_ttl=20),
    )
    result = runtime.run()
    bus = runtime.bus
    print(f"   messages: sent {bus.sent}, dropped {bus.dropped}, "
          f"duplicated {bus.duplicated}, deduplicated {bus.deduplicated}, "
          f"expired {bus.expired}")
    print(f"   feasible after chaos: "
          f"{ts.is_feasible(result.latencies, tol=1e-2)}, "
          f"utility {result.utility:.2f}")
    for task in ts.tasks:
        _, crit = task.critical_path(result.latencies)
        print(f"   {task.name}: critical path {crit:.2f}/"
              f"{task.critical_time:.0f} ms")


if __name__ == "__main__":
    main()
