"""Patient monitoring: percentile-based latency SLAs (Section 2.1).

The paper's Section 1 lists medical alerting and patient monitoring among
its motivating applications, and Section 2.1 introduces per-percentile
latency accounting: one application may define utility over the 99th
percentile of its latencies while another uses the median, "depending on
the nature of the application or its SLA".

This example exercises that machinery:

* **vitals-alert**: a cardiac-alarm pipeline whose SLA is on the **99th
  percentile** — the tail matters, a missed alarm is the failure mode;
* **dashboard**: a ward-dashboard refresh whose SLA is on the **median** —
  typical freshness matters, occasional stragglers do not.

The per-subtask percentiles needed to honour each task-level percentile
across its path are derived with the paper's composition formula
(``p^(1/n) × 100^((n-1)/n)``), the workload is optimized with LLA, run on
the simulator under Poisson arrivals, and the *empirical* task percentiles
are checked against the SLAs.
"""

from repro.core import LLAConfig, LLAOptimizer
from repro.model import (
    LinearUtility,
    PoissonEvent,
    Resource,
    ResourceKind,
    Subtask,
    SubtaskGraph,
    Task,
    TaskSet,
    subtask_percentile,
)
from repro.sim import SimulatedSystem

#: Task-level percentile SLAs.
ALERT_PERCENTILE = 99.0
DASHBOARD_PERCENTILE = 50.0


def build_taskset() -> TaskSet:
    resources = [
        Resource("sensor-link", ResourceKind.LINK, availability=0.95, lag=0.5),
        Resource("ingest-cpu", ResourceKind.CPU, availability=0.9, lag=1.0),
        Resource("analysis-cpu", ResourceKind.CPU, availability=0.9, lag=1.0),
        Resource("notify-link", ResourceKind.LINK, availability=0.95, lag=0.5),
    ]

    def chain_task(name, stages, critical_time, slope, rate, percentile):
        names = [f"{name}_{s}" for s, _r, _c in stages]
        per_sub = subtask_percentile(percentile, len(stages))
        subtasks = [
            Subtask(f"{name}_{s}", r, exec_time=c, percentile=per_sub)
            for s, r, c in stages
        ]
        return Task(
            name=name,
            subtasks=subtasks,
            graph=SubtaskGraph.chain(names),
            critical_time=critical_time,
            utility=LinearUtility(critical_time, k=2.0, slope=slope),
            trigger=PoissonEvent(rate),
        )

    vitals = chain_task(
        "vitals-alert",
        [("recv", "sensor-link", 0.6),
         ("detect", "ingest-cpu", 2.0),
         ("classify", "analysis-cpu", 3.0),
         ("notify", "notify-link", 0.8)],
        critical_time=50.0,
        slope=5.0,                       # alarms are the important task
        rate=0.02,                       # 20 alarms/second equivalent
        percentile=ALERT_PERCENTILE,
    )
    dashboard = chain_task(
        "dashboard",
        [("pull", "sensor-link", 1.5),
         ("aggregate", "ingest-cpu", 4.0),
         ("render", "analysis-cpu", 5.0),
         ("push", "notify-link", 1.2)],
        critical_time=250.0,
        slope=1.0,
        rate=0.01,
        percentile=DASHBOARD_PERCENTILE,
    )
    return TaskSet([vitals, dashboard], resources)


def main() -> None:
    taskset = build_taskset()
    print(f"workload: {taskset}")
    for task in taskset.tasks:
        per_sub = task.subtasks[0].percentile
        target = ALERT_PERCENTILE if task.name == "vitals-alert" \
            else DASHBOARD_PERCENTILE
        print(f"  {task.name}: task SLA at p{target:.0f} over "
              f"{len(task.subtasks)} stages -> per-subtask p{per_sub:.2f}")

    result = LLAOptimizer(taskset, LLAConfig(max_iterations=2000)).run()
    print(f"\nLLA converged: {result.converged} "
          f"(utility {result.utility:.1f})")

    shares = {
        name: taskset.share_function(name).share(lat)
        for name, lat in result.latencies.items()
    }
    system = SimulatedSystem(taskset, shares, model="gps", seed=77)
    system.run_for(120_000.0)   # two simulated minutes

    print("\nempirical task-level percentiles vs SLA:")
    for task, target in ((taskset.task("vitals-alert"), ALERT_PERCENTILE),
                         (taskset.task("dashboard"), DASHBOARD_PERCENTILE)):
        observed = system.recorder.jobset_percentile(task.name, target)
        verdict = "OK" if observed <= task.critical_time else "MISS"
        print(f"  {task.name:13s} p{target:.0f} = {observed:7.2f} ms "
              f"(deadline {task.critical_time:.0f} ms) [{verdict}]")

    print("\nper-stage p99 vs the composed per-subtask budget "
          "(vitals-alert):")
    task = taskset.task("vitals-alert")
    per_sub_p = task.subtasks[0].percentile
    for name in task.subtask_names:
        observed = system.recorder.job_percentile(name, per_sub_p)
        budget = result.latencies[name]
        print(f"  {name:22s} p{per_sub_p:.2f} = {observed:6.2f} ms "
              f"(budget {budget:.2f} ms)")


if __name__ == "__main__":
    main()
