"""Edge deployment: network topologies + online admission control.

Combines two library layers the other examples use separately:

* :class:`~repro.model.topology.NetworkTopology` deploys sensing pipelines
  across an edge site — sensors on leaf nodes, a gateway hub, a backhaul
  to the core — generating one bandwidth subtask per traversed physical
  link (the paper's "communication is modeled as subtasks which consume
  network resources");
* :class:`~repro.analysis.admission.AdmissionController` gates pipeline
  onboarding with the LLA schedulability test (Section 5.4): new
  pipelines are admitted until the shared gateway→core backhaul cannot
  carry another flow at its deadline.
"""

from repro.analysis.admission import AdmissionController
from repro.analysis.schedulability import SchedulabilityAnalyzer
from repro.core.optimizer import LLAConfig
from repro.model.events import PeriodicEvent
from repro.model.topology import ComputeStage, NetworkTopology
from repro.model.utility import LinearUtility


def build_site() -> NetworkTopology:
    """Six sensor nodes → gateway → core, thin backhaul."""
    topo = NetworkTopology(link_availability=0.9, link_lag=0.5,
                           cpu_availability=0.9, cpu_lag=1.0)
    for node in ("core", "gateway", "cam0", "cam1", "cam2",
                 "cam3", "cam4", "cam5"):
        topo.add_node(node)
    for cam in ("cam0", "cam1", "cam2", "cam3", "cam4", "cam5"):
        topo.add_link(cam, "gateway")
    # The contended resource: one backhaul for everything.
    topo.add_link("gateway", "core", availability=0.85)
    return topo


def pipeline(topo: NetworkTopology, index: int):
    """One camera-analytics pipeline: detect on the camera, fuse on the
    gateway, archive in the core."""
    return topo.deploy_pipeline(
        f"cam{index}-analytics",
        [
            ComputeStage("detect", f"cam{index}", exec_time=3.0,
                         transfer_time=2.5),
            ComputeStage("fuse", "gateway", exec_time=2.0,
                         transfer_time=4.0),
            ComputeStage("archive", "core", exec_time=1.5),
        ],
        critical_time=70.0,
        utility=LinearUtility(70.0, k=2.0),
        trigger=PeriodicEvent(100.0),
    )


def main() -> None:
    topo = build_site()
    # Build the candidate tasks (deployment validates routing and the
    # one-resource-per-task rule).
    candidates = [pipeline(topo, i) for i in range(6)]
    resources = topo.resources()

    print("edge site:", ", ".join(sorted(r.name for r in resources)))
    print()

    controller = AdmissionController(
        resources,
        analyzer=SchedulabilityAnalyzer(iterations=600),
        optimizer_config=LLAConfig(max_iterations=1200),
    )
    for task in candidates:
        decision = controller.offer(task)
        verdict = "ADMITTED" if decision.admitted else "REJECTED"
        print(f"{task.name}: {verdict}")
        if not decision.admitted:
            print(f"   reason: {decision.reason[:110]}...")
    print()
    print(f"admission rate: {controller.admission_rate():.0%}")

    taskset = controller.taskset
    if taskset is not None and controller.latencies:
        load = taskset.resource_load("link:core-gateway",
                                     controller.latencies)
        print(f"backhaul load with the admitted set: {load:.3f} "
              f"(availability 0.85)")
        for task in taskset.tasks:
            _, crit = task.critical_path(controller.latencies)
            print(f"  {task.name}: end-to-end {crit:.1f} / "
                  f"{task.critical_time:.0f} ms")


if __name__ == "__main__":
    main()
