"""Benchmark: computational scalability of one LLA iteration.

Section 6.4 claims the optimizer's overhead is small; this bench measures
how the per-iteration cost grows with workload size on random provisioned
workloads (10 → 40 → 80 subtasks).  The iteration is a per-task loop of
closed-form per-subtask solves plus per-resource sums, so the cost must
grow roughly linearly in the subtask count — far from the quadratic-or-
worse growth a centralized re-solve would show.
"""

import time

import pytest

import _report
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.workloads.generator import GeneratorConfig, random_workload

_BENCH = _report.bench_name(__file__)


def _mean_iteration_cost(n_tasks: int, n_resources: int,
                         iterations: int = 300,
                         backend: str = "scalar") -> float:
    taskset = random_workload(
        GeneratorConfig(
            n_tasks=n_tasks, n_resources=n_resources,
            min_subtasks=4, max_subtasks=5,
        ),
        seed=123,
    )
    optimizer = LLAOptimizer(
        taskset, LLAConfig(record_history=False, backend=backend)
    )
    start = time.perf_counter()
    for _ in range(iterations):
        optimizer.step()
    elapsed = time.perf_counter() - start
    return elapsed / iterations, len(taskset.all_subtasks)


@pytest.mark.benchmark(group="scaling")
def test_iteration_cost_scales_linearly(benchmark):
    def run():
        return [
            _mean_iteration_cost(2, 6),
            _mean_iteration_cost(8, 12),
            _mean_iteration_cost(16, 24),
        ]

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    costs = [c for c, _n in points]
    sizes = [n for _c, n in points]
    # Cost per subtask must stay roughly flat: the largest workload's
    # per-subtask cost within 3x of the smallest's (sub-quadratic growth).
    per_subtask = [c / n for c, n in points]
    assert max(per_subtask) <= 3.0 * min(per_subtask), (
        f"per-subtask iteration cost not flat: {per_subtask}"
    )
    print()
    for (cost, n) in points:
        _report.record_value(
            _BENCH, f"iterations_per_sec.{n}_subtasks", 1.0 / cost
        )
        print(f"  {n:3d} subtasks: {1e6 * cost:7.1f} us/iteration "
              f"({1e6 * cost / n:.2f} us/subtask)")


@pytest.mark.benchmark(group="scaling")
def test_vectorized_iteration_cost(benchmark):
    """Same sweep through the batched kernel — its per-subtask cost should
    *fall* with size as the python-loop overhead amortizes (see
    ``bench_vectorized`` for the head-to-head speedup gate)."""
    def run():
        return [
            _mean_iteration_cost(2, 6, backend="vectorized"),
            _mean_iteration_cost(8, 12, backend="vectorized"),
            _mean_iteration_cost(16, 24, backend="vectorized"),
        ]

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for (cost, n) in points:
        _report.record_value(
            _BENCH, f"iterations_per_sec.vectorized.{n}_subtasks", 1.0 / cost
        )
        print(f"  {n:3d} subtasks: {1e6 * cost:7.1f} us/iteration "
              f"({1e6 * cost / n:.2f} us/subtask)")
