"""Benchmark: LLA vs oracle vs slicing across random workload families.

Quantifies §7's qualitative comparison: on provisioned random workloads,
LLA must track the centralized oracle within a small gap while the
capacity-blind slicing heuristics leave utility on the table.
"""

import pytest

from repro.analysis.comparison import sweep_random_workloads
from repro.workloads.generator import GeneratorConfig


@pytest.mark.benchmark(group="baseline-sweep")
def test_sweep_provisioned_workloads(benchmark):
    report = benchmark.pedantic(sweep_random_workloads, rounds=1, iterations=1)

    lla = report.stats["lla"]
    oracle = report.stats["centralized"]
    assert lla.feasibility_rate == 1.0
    assert report.lla_matches_oracle(tol=2.0), report.lla_oracle_gaps
    # Optimization buys utility over the best slicing heuristic on
    # average (the margin is workload-dependent; it must not be negative).
    assert report.mean_optimization_margin() >= -0.5

    print()
    for name, stats in report.stats.items():
        print(f"  {name:22s} mean utility {stats.mean_utility:10.2f}  "
              f"feasible {stats.feasibility_rate:.0%}")
    print("  LLA-oracle gaps: "
          + ", ".join(f"{g:+.2f}" for g in report.lla_oracle_gaps))
    print("  mean optimization margin over best slicing: "
          f"{report.mean_optimization_margin():.2f}")


@pytest.mark.benchmark(group="baseline-sweep")
def test_sweep_tight_workloads(benchmark):
    """Near-saturation (provisioning 0.95): slicing starts violating
    capacity while LLA stays feasible."""
    def run():
        return sweep_random_workloads(
            seeds=range(4),
            config=GeneratorConfig(
                n_tasks=5, n_resources=6, max_subtasks=5,
                provisioning=0.95,
            ),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.stats["lla"].feasibility_rate == 1.0
    slicing_rates = [
        report.stats[name].feasibility_rate
        for name in ("even-slicing", "proportional-slicing", "bst-slicing")
    ]
    assert min(slicing_rates) <= report.stats["lla"].feasibility_rate
    print()
    for name, stats in report.stats.items():
        print(f"  {name:22s} feasible {stats.feasibility_rate:.0%}  "
              f"mean utility {stats.mean_utility:10.2f}")
