"""Benchmark + reproduction assertions for Figure 6 (task-count scaling).

Regenerates the 3/6/12-task utility series and asserts the paper's claims:

* all three workloads converge to feasible allocations;
* the converged utility grows linearly with the task count (R² ≥ 0.99);
* the convergence speed does not depend on the task count (the slowest
  workload settles within a small constant factor of the fastest, far
  below proportional growth).
"""

import pytest

from repro.experiments.fig6 import run_fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_scalability(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    for n, point in result.points.items():
        assert point.feasible, f"{n}-task workload should converge feasibly"

    assert result.utility_linearity() >= 0.99, (
        f"utility should scale linearly with task count "
        f"(R^2={result.utility_linearity():.4f})"
    )

    settles = result.settling_iterations()
    assert all(s is not None for s in settles.values()), \
        f"every workload should settle within the budget: {settles}"
    spread = max(settles.values()) - min(settles.values())
    assert spread <= 50, (
        f"convergence speed should not depend on task count "
        f"(settling iterations {settles})"
    )

    print()
    for n, point in sorted(result.points.items()):
        print(f"  {n:2d} tasks: final {point.final_utility:10.2f} "
              f"settles at {point.settling_iteration()}")
    print(f"  linearity R^2 = {result.utility_linearity():.4f}")
