"""Benchmark + reproduction assertions for Figure 6 (task-count scaling).

Drives the registered ``fig6`` spec through the harness — the same code
path as ``repro experiment fig6`` — and asserts its claim checks:

* all three workloads converge to feasible allocations;
* the converged utility grows linearly with the task count (R² ≥ 0.99);
* the convergence speed does not depend on the task count (the slowest
  workload settles within a small constant factor of the fastest, far
  below proportional growth).
"""

import pytest

import _report


@pytest.mark.benchmark(group="fig6")
def test_fig6_scalability(benchmark):
    run = _report.run_spec(benchmark, "fig6")
    _report.assert_claims(run)

    payload = run.payload
    print()
    for n, point in sorted(payload["points"].items(),
                           key=lambda kv: int(kv[0])):
        print(f"  {int(n):2d} tasks: final {point['final_utility']:10.2f} "
              f"settles at {point['settling_iteration']}")
    print(f"  linearity R^2 = {payload['linearity_r2']:.4f}")
