"""Benchmark: the hardened service under the scripted overload schedule.

Runs the registered ``overload`` experiment (quick budget) inside the
benchmark timer — the exact code path ``repro experiment overload``
uses — and asserts its claims: availability through storm + stall +
outage, brownout hysteresis, bounded churn backpressure, visible
supervision telemetry, and deterministic replay.  The measured values
land in ``BENCH_overload.json`` so ``repro bench-diff`` can gate
regressions against the committed baseline.
"""

import pytest

import _report

_BENCH = "overload"


@pytest.mark.benchmark(group="service")
def test_overload_chaos_claims(benchmark):
    run = _report.run_spec(benchmark, "overload", quick=True)
    _report.assert_claims(run)

    availability = run.check("availability_under_chaos").measured
    queue = run.check("queue_bounded").measured
    supervision = run.check("supervision_visible").measured
    _report.record_value(_BENCH, "scenario.availability",
                         availability["availability"])
    _report.record_value(_BENCH, "scenario.queue_max_depth",
                         queue["queue_max_depth"])
    _report.record_value(_BENCH, "scenario.supervisor_restarts",
                         supervision["supervisor_restarts"])
    print()
    print(f"  availability {availability['availability']:.4f}, "
          f"queue depth <= {queue['queue_max_depth']:.0f}, "
          f"{supervision['supervisor_restarts']:.0f} supervisor restarts")
