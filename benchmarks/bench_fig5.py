"""Benchmark + reproduction assertions for Figure 5 (step sizes).

Regenerates the four utility-vs-iteration series (γ = 0.1 / 1 / 10 and
adaptive) and asserts the paper's qualitative shape:

* γ = 10 oscillates with high amplitude;
* γ = 0.1 is far slower than γ = 1 (the paper needs >1000 iterations);
* adaptive γ has the smallest residual oscillation and converges to the
  best value.
"""

import pytest

import _report
from repro.experiments.fig5 import run_fig5

_BENCH = _report.bench_name(__file__)


@pytest.mark.benchmark(group="fig5")
def test_fig5_step_sizes(benchmark):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    osc10 = result.series["gamma=10"].tail_oscillation()
    osc1 = result.series["gamma=1"].tail_oscillation()
    osc_adaptive = result.series["adaptive"].tail_oscillation()

    assert osc10 > 5.0 * osc1, (
        f"gamma=10 should oscillate much harder than gamma=1 "
        f"({osc10:.2f} vs {osc1:.2f})"
    )
    assert result.distance_to_reference("gamma=0.1") > \
        result.distance_to_reference("gamma=1"), \
        "gamma=0.1 should lag behind gamma=1 at the end of the budget"
    assert osc_adaptive <= osc1, \
        "adaptive gamma should end at least as stable as gamma=1"
    assert result.ordering_correct()

    print()
    for label, series in result.series.items():
        _report.record_value(
            _BENCH, f"final_utility.{label}", series.utilities[-1]
        )
        _report.record_value(
            _BENCH, f"oscillation.{label}", series.tail_oscillation()
        )
        print(f"  {label:>10s}: final {series.utilities[-1]:9.2f} "
              f"oscillation {series.tail_oscillation():8.2f}")
