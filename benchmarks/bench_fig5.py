"""Benchmark + reproduction assertions for Figure 5 (step sizes).

Drives the registered ``fig5`` spec through the harness — the same code
path as ``repro experiment fig5`` — and asserts its claim checks:

* γ = 10 oscillates with high amplitude;
* γ = 0.1 is far slower than γ = 1 (the paper needs >1000 iterations);
* adaptive γ has the smallest residual oscillation and converges to the
  best value.
"""

import pytest

import _report

_BENCH = _report.bench_name(__file__)


@pytest.mark.benchmark(group="fig5")
def test_fig5_step_sizes(benchmark):
    run = _report.run_spec(benchmark, "fig5")
    _report.assert_claims(run)

    print()
    for label, series in run.payload["series"].items():
        _report.record_value(
            _BENCH, f"final_utility.{label}", series["final_utility"]
        )
        _report.record_value(
            _BENCH, f"oscillation.{label}", series["tail_oscillation"]
        )
        print(f"  {label:>10s}: final {series['final_utility']:9.2f} "
              f"oscillation {series['tail_oscillation']:8.2f}")
