"""Benchmark + assertions for the percentile-composition validation (ours).

Drives the registered ``percentiles`` spec through the harness — the
same code path as ``repro experiment percentiles``: Section 2.1's formula
q = p^(1/n) x 100^((n-1)/n) must yield per-stage budgets whose end-to-end
compliance reaches the task-level target — on a simulated pipeline with
variable demand and Poisson arrivals, for p in {50, 90, 99}.
"""

import pytest

import _report


@pytest.mark.benchmark(group="percentiles")
def test_percentile_composition_conservative(benchmark):
    run = _report.run_spec(benchmark, "percentiles")
    _report.assert_claims(run)

    print()
    for point in run.payload["points"]:
        print(f"  p{point['target']:.0f}: end-to-end compliance "
              f"{100 * point['path_compliance']:.2f}%")
