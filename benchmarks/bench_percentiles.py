"""Benchmark + assertions for the percentile-composition validation (ours).

Section 2.1's formula q = p^(1/n) x 100^((n-1)/n) must yield per-stage
budgets whose end-to-end compliance reaches the task-level target — on a
simulated pipeline with variable demand and Poisson arrivals, for p in
{50, 90, 99}.
"""

import pytest

from repro.experiments.percentiles import run_percentiles


@pytest.mark.benchmark(group="percentiles")
def test_percentile_composition_conservative(benchmark):
    result = benchmark.pedantic(run_percentiles, rounds=1, iterations=1)
    for point in result.points:
        assert point.composition_conservative(), (
            f"target p{point.target}: end-to-end compliance "
            f"{point.path_compliance:.4f} below target"
        )
        # The per-stage percentile grows with the target.
    per_stage = [p.per_subtask_percentile for p in result.points]
    assert per_stage == sorted(per_stage)
    print()
    for point in result.points:
        print(f"  p{point.target:.0f}: end-to-end compliance "
              f"{100 * point.path_compliance:.2f}%")
