"""Benchmark: warm-start price initialization (ours).

Measures the convergence speedup from initializing resource prices at
their locally-estimable equilibrium values (see
:mod:`repro.core.warmstart`) instead of a flat 1.0:

* on the saturated base workload the estimate ignores the active path
  prices, so it is a head start, not the answer;
* on the overprovisioned Figure 6 workloads it must not hurt.
"""

import pytest

import _report
from repro.analysis.trace import settling_iteration
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.workloads.paper import base_workload, scaled_workload

_BENCH = _report.bench_name(__file__)


def _settle(warm: bool, taskset_factory, iterations=2500):
    taskset = taskset_factory()
    config = LLAConfig(max_iterations=iterations, warm_start=warm,
                       stop_on_convergence=False)
    result = LLAOptimizer(taskset, config).run()
    settle = settling_iteration(result.utility_trace(), band=1.0)
    return result, settle


@pytest.mark.benchmark(group="warmstart")
def test_warm_start_on_saturated_workload(benchmark):
    def run():
        return _settle(True, base_workload), _settle(False, base_workload)

    (warm, warm_settle), (cold, cold_settle) = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    # Same optimum either way.
    assert warm.utility == pytest.approx(cold.utility, abs=1.0)
    # Warm start settles no later than cold (usually much earlier).
    if warm_settle is not None and cold_settle is not None:
        assert warm_settle <= cold_settle + 50
    _report.record_value(_BENCH, "final_utility.warm_saturated", warm.utility)
    _report.record_value(_BENCH, "final_utility.cold_saturated", cold.utility)
    if warm_settle is not None:
        _report.record_value(_BENCH, "settling.warm_saturated", warm_settle)
    if cold_settle is not None:
        _report.record_value(_BENCH, "settling.cold_saturated", cold_settle)
    print()
    print(f"  saturated: warm settles at {warm_settle}, "
          f"cold at {cold_settle}")


@pytest.mark.benchmark(group="warmstart")
def test_warm_start_on_overprovisioned_workload(benchmark):
    def factory():
        return scaled_workload(2, critical_time_factor=20.0)

    def run():
        return _settle(True, factory, 800), _settle(False, factory, 800)

    (warm, warm_settle), (cold, cold_settle) = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    assert warm.utility == pytest.approx(cold.utility, rel=0.01)
    print()
    print(f"  overprovisioned: warm settles at {warm_settle}, "
          f"cold at {cold_settle}")
