"""Benchmark-session hooks: telemetry-backed machine-readable results.

Every test in ``bench_*.py`` gets a wall-clock timer recorded into its
module's registry; when the test used the pytest-benchmark fixture, the
calibrated statistics (mean seconds per round, ops/sec) are recorded too.
At session end the per-module registries are written out as
``BENCH_<name>.json`` next to the bench files (see ``_report.py``).
"""

from __future__ import annotations

import time

import pytest

import _report


def _bench_module(item) -> str:
    return _report.bench_name(str(item.fspath))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    started = time.perf_counter()
    yield
    elapsed = time.perf_counter() - started
    _report.registry_for(_bench_module(item)).timer(
        f"{item.name}.wall_seconds", "end-to-end test wall time"
    ).observe(elapsed)


def pytest_runtest_teardown(item, nextitem):
    fixture = getattr(item, "funcargs", {}).get("benchmark")
    stats_holder = getattr(fixture, "stats", None)
    stats = getattr(stats_holder, "stats", None)
    if stats is None:
        return
    registry = _report.registry_for(_bench_module(item))
    mean = getattr(stats, "mean", None)
    if mean:
        registry.gauge(
            f"{item.name}.mean_seconds", "mean seconds per benchmark round"
        ).set(mean)
        registry.gauge(
            f"{item.name}.ops_per_sec", "benchmark rounds per second"
        ).set(1.0 / mean)
    rounds = getattr(stats, "rounds", None) or len(getattr(stats, "data", ()))
    if rounds:
        registry.gauge(f"{item.name}.rounds", "measured rounds").set(rounds)


def pytest_sessionfinish(session, exitstatus):
    written = _report.write_reports()
    if written:
        print("\nbenchmark reports written:")
        for path in written:
            print(f"  {path}")
