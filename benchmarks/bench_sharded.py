"""Benchmark: sharded vs single-engine LLA iteration throughput.

The sharded optimizer (:mod:`repro.core.sharding`) partitions a compiled
:class:`~repro.core.structure.TaskSetStructure` by resource-connectivity
components and runs one vectorized engine per shard in a process pool
with shared-memory result arrays.  On a partition-separable workload the
shards never exchange state, so the iterates stay bitwise-identical to
the unsharded engine while the per-iteration work divides across cores.

This bench is the sharding acceptance gate: on the 10k-subtask
separable workload, four process shards must sustain at least 1.8x the
single-engine iteration throughput.  Results land in
``BENCH_sharded.json`` as ``iterations_per_sec.shards_<s>.<n>_subtasks``
gauges plus ``speedup.shards_<s>.<n>_subtasks`` and a
``utility_match.<n>_subtasks`` parity bit, so both the scaling curve
and the correctness invariant are diffable across PRs
(``baselines/BENCH_sharded.json``).

``-k smoke`` selects a seconds-scale subset suitable for CI.
"""

import time

import pytest

import _report
from repro.core.optimizer import LLAConfig
from repro.core.sharding import ShardedEngine
from repro.workloads.generator import GeneratorConfig, random_workload

_BENCH = _report.bench_name(__file__)

#: (n_tasks, n_resources); every task has exactly 4 subtasks, so the
#: subtask counts are 1_000 and 10_000.  ``partitions=4`` keeps the
#: resource graph 4-way separable — the shard planner finds at least
#: 4 components, so every shard count up to 4 splits cleanly.
_SIZES = ((250, 400), (2500, 2000))
_SHARDS = (1, 2, 4)
_TARGET_SPEEDUP = 1.8


def _taskset(n_tasks: int, n_resources: int):
    return random_workload(
        GeneratorConfig(
            n_tasks=n_tasks, n_resources=n_resources,
            min_subtasks=4, max_subtasks=4, partitions=4,
        ),
        seed=7,
    )


def _engine(taskset, shards: int) -> ShardedEngine:
    config = LLAConfig(
        backend="vectorized", shards=shards,
        shard_mode="processes" if shards > 1 else "serial",
        record_history=False, stop_on_convergence=False,
    )
    return ShardedEngine(taskset, config, config.build_step_policy(taskset))


def _measure(taskset, shards: int, iterations: int):
    """(iterations/sec, final utility) for one shard count."""
    with _engine(taskset, shards) as engine:
        engine.iterate(10)  # warm-up: allocation caches, worker spin-up
        start = time.perf_counter()
        engine.iterate(iterations)
        elapsed = time.perf_counter() - start
        utility = engine.step().utility
    return iterations / elapsed, utility


def _scaling_curve(n_tasks: int, n_resources: int, iterations: int) -> float:
    taskset = _taskset(n_tasks, n_resources)
    n_subtasks = len(taskset.subtask_names)
    rates = {}
    utilities = {}
    for shards in _SHARDS:
        rate, utility = _measure(taskset, shards, iterations)
        rates[shards] = rate
        utilities[shards] = utility
        _report.record_value(
            _BENCH, f"iterations_per_sec.shards_{shards}.{n_subtasks}_subtasks",
            rate,
        )
    for shards in _SHARDS:
        _report.record_value(
            _BENCH, f"speedup.shards_{shards}.{n_subtasks}_subtasks",
            rates[shards] / rates[1],
        )
    # Shards on a separable workload are an execution detail, not a
    # different algorithm: after the same number of iterations (one extra
    # synchronizing step each) every shard count must report the same
    # utility to the last bit.
    match = all(utilities[s] == utilities[1] for s in _SHARDS)
    _report.record_value(
        _BENCH, f"utility_match.{n_subtasks}_subtasks", 1.0 if match else 0.0
    )
    assert match, (
        f"sharded utilities diverged on the {n_subtasks}-subtask workload: "
        f"{utilities!r}"
    )
    speedup = rates[4] / rates[1]
    print(f"  {n_subtasks:6d} subtasks: " + ", ".join(
        f"{s} shard(s) {rates[s]:8.1f} it/s" for s in _SHARDS
    ) + f"; 4-shard speedup {speedup:.2f}x")
    return speedup


@pytest.mark.benchmark(group="sharded")
def test_sharded_scaling(benchmark):
    def run():
        print()
        return [
            _scaling_curve(n_tasks, n_resources, iterations=300)
            for n_tasks, n_resources in _SIZES
        ]

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    # The acceptance bar applies to the largest (10k-subtask) workload,
    # where the per-shard numpy work dominates the pool round-trips.
    assert speedups[-1] >= _TARGET_SPEEDUP, (
        f"4 process shards only {speedups[-1]:.2f}x the single engine on "
        f"the 10k-subtask workload (target {_TARGET_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="sharded")
def test_sharded_smoke(benchmark):
    """CI-sized variant: 1k subtasks, loose bar — proves the pool spins
    up, iterates, stays bit-identical and emits its report metrics."""
    def run():
        print()
        return _scaling_curve(*_SIZES[0], iterations=60)

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert speedup > 0.0
