"""Benchmark + reproduction assertions for Table 1.

Regenerates the paper's Table 1 rows (converged per-subtask latencies,
critical paths) and asserts the paper's quantitative claims:

* convergence on the base workload;
* every critical path within 1% below its critical time;
* every resource within 1% of full availability (the workload saturates);
* per-subtask latencies in the same range as the paper's (the exact values
  depend on the reconstructed Figure 4 topology).
"""

import pytest

from repro.experiments.table1 import run_table1
from repro.workloads.paper import TABLE1_LATENCIES


@pytest.mark.benchmark(group="table1")
def test_table1_reproduction(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    assert result.converged, "LLA must converge on the base workload"

    # Critical paths: within 1% below the critical time, never above.
    for task, margin in result.critical_path_margins().items():
        assert -1e-4 <= margin <= 0.01, (
            f"task {task}: critical-path margin {margin:.4f} outside the "
            "paper's <1% band"
        )

    # Resource saturation: the workload was built to be close to congestion.
    for resource, load in result.resource_loads.items():
        assert 0.99 <= load <= 1.01, (
            f"resource {resource}: load {load:.4f} not near saturation"
        )

    # Latency scale: same range as the paper's Table 1 (min/max within 2x).
    ours = result.latencies
    for subtask, paper_lat in TABLE1_LATENCIES.items():
        assert 0.4 * paper_lat <= ours[subtask] <= 2.5 * paper_lat, (
            f"{subtask}: latency {ours[subtask]:.2f} far from the paper's "
            f"{paper_lat:.2f}"
        )

    print()
    print(result.render())
    print(f"utility={result.utility:.3f} iterations={result.iterations}")
