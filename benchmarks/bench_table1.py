"""Benchmark + reproduction assertions for Table 1.

Drives the registered ``table1`` :class:`~repro.harness.ExperimentSpec`
through the harness — the same code path as ``repro experiment table1``
— and asserts its claim checks:

* convergence on the base workload;
* every critical path within 1% below its critical time;
* every resource within 1% of full availability (the workload saturates);
* per-subtask latencies in the same range as the paper's (the exact values
  depend on the reconstructed Figure 4 topology).
"""

import pytest

import _report


@pytest.mark.benchmark(group="table1")
def test_table1_reproduction(benchmark):
    run = _report.run_spec(benchmark, "table1")
    _report.assert_claims(run)

    payload = run.payload
    print()
    print(run.summary())
    for subtask, latency in sorted(payload["latencies"].items()):
        paper = payload["paper_latencies"][subtask]
        print(f"  {subtask}: {latency:6.2f} ms (paper {paper:5.2f})")
    print(f"utility={payload['utility']:.3f} "
          f"iterations={payload['iterations']}")
