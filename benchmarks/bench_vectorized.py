"""Benchmark: scalar vs vectorized LLA iteration throughput.

The vectorized backend (:mod:`repro.core.vectorized`) exists purely for
speed — its iterates are bitwise-identical to the scalar loops — so this
bench is its acceptance gate: on the 100-task scaling workload the batched
kernel must sustain at least 5× the scalar backend's iterations/second.
Results land in ``BENCH_vectorized.json`` as
``iterations_per_sec.<backend>.<n>_tasks`` gauges plus a
``speedup.<n>_tasks`` gauge per size, so the speedup trajectory is
diffable across PRs.

``-k smoke`` selects a seconds-scale subset suitable for CI.
"""

import time

import pytest

import _report
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.workloads.generator import GeneratorConfig, random_workload

_BENCH = _report.bench_name(__file__)

#: (n_tasks, n_resources) grid; the largest is the ISSUE's acceptance size.
_SIZES = ((10, 15), (40, 60), (100, 150))
_TARGET_SPEEDUP = 5.0


def _taskset(n_tasks: int, n_resources: int):
    return random_workload(
        GeneratorConfig(
            n_tasks=n_tasks, n_resources=n_resources,
            min_subtasks=4, max_subtasks=5,
        ),
        seed=123,
    )


def _iterations_per_sec(taskset, backend: str, iterations: int) -> float:
    optimizer = LLAOptimizer(
        taskset,
        LLAConfig(record_history=False, stop_on_convergence=False,
                  max_iterations=10 * iterations + 10, backend=backend),
    )
    for _ in range(5):  # warm-up: first steps pay allocation caches
        optimizer.step()
    start = time.perf_counter()
    for _ in range(iterations):
        optimizer.step()
    return iterations / (time.perf_counter() - start)


def _compare(n_tasks: int, n_resources: int, scalar_iters: int,
             vector_iters: int) -> float:
    taskset = _taskset(n_tasks, n_resources)
    scalar = _iterations_per_sec(taskset, "scalar", scalar_iters)
    vector = _iterations_per_sec(taskset, "vectorized", vector_iters)
    speedup = vector / scalar
    for backend, rate in (("scalar", scalar), ("vectorized", vector)):
        _report.record_value(
            _BENCH, f"iterations_per_sec.{backend}.{n_tasks}_tasks", rate
        )
    _report.record_value(_BENCH, f"speedup.{n_tasks}_tasks", speedup)
    print(f"  {n_tasks:3d} tasks: scalar {scalar:8.1f} it/s, "
          f"vectorized {vector:8.1f} it/s, speedup {speedup:.1f}x")
    return speedup


@pytest.mark.benchmark(group="vectorized")
def test_vectorized_speedup(benchmark):
    def run():
        print()
        return [
            _compare(n_tasks, n_resources, scalar_iters=60, vector_iters=400)
            for n_tasks, n_resources in _SIZES
        ]

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    # The acceptance bar applies to the largest (100-task) workload, where
    # python-loop overhead dominates the scalar backend.
    assert speedups[-1] >= _TARGET_SPEEDUP, (
        f"vectorized backend only {speedups[-1]:.1f}x scalar on the "
        f"100-task workload (target {_TARGET_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="vectorized")
def test_vectorized_smoke(benchmark):
    """CI-sized variant: tiny workload, loose bar — just proves the kernel
    runs end-to-end and emits its report metrics."""
    def run():
        print()
        return _compare(10, 15, scalar_iters=30, vector_iters=100)

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert speedup > 0.0
