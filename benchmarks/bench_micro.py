"""Microbenchmarks: per-component timing of the reproduction's hot paths.

These are true statistical benchmarks (many rounds), complementing the
one-shot experiment benches: LLA iteration latency, the closed-form
allocation step, price updates, simulator event throughput and a
distributed round.  They quantify the "low computation overhead" claim of
Section 6.4 — the optimizer step must be microseconds-scale per subtask.
"""

import pytest

import _report
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.distributed import DistributedConfig, DistributedLLARuntime
from repro.sim import SimulatedSystem
from repro.workloads.paper import base_workload, prototype_workload, scaled_workload

_BENCH = _report.bench_name(__file__)


@pytest.mark.benchmark(group="micro")
def test_lla_iteration_base(benchmark):
    """One full LLA iteration on the 3-task / 21-subtask workload."""
    taskset = base_workload()
    optimizer = LLAOptimizer(taskset, LLAConfig(record_history=False))
    benchmark(optimizer.step)


@pytest.mark.benchmark(group="micro")
def test_lla_iteration_12_tasks(benchmark):
    """One full LLA iteration on the 12-task / 84-subtask workload."""
    taskset = scaled_workload(4)
    optimizer = LLAOptimizer(taskset, LLAConfig(record_history=False))
    benchmark(optimizer.step)


@pytest.mark.benchmark(group="micro")
def test_latency_allocation(benchmark):
    """The closed-form per-task allocation (the controller's inner step)."""
    taskset = base_workload()
    optimizer = LLAOptimizer(taskset, LLAConfig(record_history=False))
    optimizer.run(50)
    allocator = optimizer.allocators["T2"]
    prices = optimizer.resource_prices.prices
    path_prices = optimizer.path_prices["T2"].prices
    benchmark(allocator.allocate, prices, path_prices)


@pytest.mark.benchmark(group="micro")
def test_distributed_round(benchmark):
    """One protocol round of the message-passing runtime."""
    runtime = DistributedLLARuntime(
        base_workload(), DistributedConfig(record_history=False)
    )
    benchmark(runtime.step)


@pytest.mark.benchmark(group="micro")
def test_simulator_throughput_gps(benchmark):
    """One second of simulated prototype workload on the fluid model
    (≈300 jobs across three CPUs)."""
    taskset = prototype_workload()
    shares = {name: 0.2 for name in taskset.subtask_names}

    def run_one_second():
        system = SimulatedSystem(taskset, shares, model="gps", seed=3)
        system.run_for(1000.0)
        return system.recorder.jobs_recorded

    jobs = benchmark(run_one_second)
    _report.record_value(_BENCH, "gps_jobs_per_simulated_second", jobs)
    assert jobs > 250


@pytest.mark.benchmark(group="micro")
def test_simulator_throughput_quantum(benchmark):
    """One second of simulated prototype workload on the quantum model."""
    taskset = prototype_workload()
    shares = {name: 0.2 for name in taskset.subtask_names}

    def run_one_second():
        system = SimulatedSystem(taskset, shares, model="quantum", seed=3)
        system.run_for(1000.0)
        return system.recorder.jobs_recorded

    jobs = benchmark(run_one_second)
    _report.record_value(_BENCH, "quantum_jobs_per_simulated_second", jobs)
    assert jobs > 250
