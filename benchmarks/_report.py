"""Machine-readable benchmark results, built on the telemetry registry.

Each ``bench_<name>.py`` module gets its own
:class:`~repro.telemetry.MetricsRegistry`; the conftest hooks record a
wall-clock timer per test plus the pytest-benchmark statistics
(mean seconds, ops/sec) when available, and bench modules record
domain results (final utility, throughput) explicitly via
:func:`record_value`.  At session end every module registry is dumped to
``BENCH_<name>.json`` so the repo's performance trajectory is diffable
from one PR to the next.

The output directory defaults to the directory holding this file and can
be overridden with the ``BENCH_RESULTS_DIR`` environment variable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

from repro.telemetry import MetricsRegistry

_registries: Dict[str, MetricsRegistry] = {}


def bench_name(module_file: str) -> str:
    """``.../bench_micro.py`` → ``micro``."""
    stem = Path(module_file).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def registry_for(name: str) -> MetricsRegistry:
    """Get-or-create the per-bench-module registry."""
    registry = _registries.get(name)
    if registry is None:
        registry = _registries[name] = MetricsRegistry()
    return registry


def record_value(name: str, metric: str, value: float) -> None:
    """Record one scalar result (a gauge) for bench module ``name``."""
    registry_for(name).gauge(metric).set(value)


def run_spec(benchmark, name: str, overrides=None, **flags):
    """Run a registered :class:`~repro.harness.ExperimentSpec` inside the
    benchmark timer — the exact code path ``repro experiment NAME`` uses.

    Every measured value the claim checks report is recorded into the
    experiment's bench registry, so the BENCH_*.json artifacts carry the
    same numbers as the RunResult envelope.
    """
    from repro import harness

    harness.load_all()
    run = benchmark.pedantic(
        lambda: harness.execute(name, overrides, **flags),
        rounds=1, iterations=1,
    )
    record_run(run)
    return run


def record_run(run) -> None:
    """Record a RunResult's measured check values as gauges."""
    registry = registry_for(run.experiment)
    for check in run.checks:
        for key, value in check.measured.items():
            try:
                registry.gauge(f"{check.name}.{key}").set(float(value))
            except (TypeError, ValueError):
                continue


def assert_claims(run, *names) -> None:
    """Assert the named claim checks passed (all evaluated checks when no
    names are given); failures carry the measured values."""
    checks = [run.check(n) for n in names] if names else run.checks
    failed = [c for c in checks if c.status == "fail"]
    assert not failed, (
        f"{run.experiment}: failed claims: "
        + "; ".join(f"{c.name} (measured {dict(c.measured)})"
                    for c in failed)
    )


def results_dir() -> Path:
    return Path(os.environ.get("BENCH_RESULTS_DIR",
                               Path(__file__).resolve().parent))


def write_reports() -> list:
    """Dump every module registry to ``BENCH_<name>.json``; returns paths."""
    out_dir = results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, registry in sorted(_registries.items()):
        if not len(registry):
            continue
        payload = {
            "bench": name,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "metrics": registry.snapshot(),
        }
        path = out_dir / f"BENCH_{name}.json"
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(str(path))
    return written
