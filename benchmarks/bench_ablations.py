"""Benchmarks for the ablation sweeps (design choices, not in the paper).

* utility variant (sum vs path-weighted) — both must converge feasibly;
* adaptive-γ cap — the stability/speed trade-off on the saturated workload;
* γ_p/γ_r ratio — steering the infeasible divergence ray;
* LLA vs baselines — LLA must dominate every slicing heuristic and match
  the centralized oracle within 1%;
* distributed message loss — convergence must survive 20% loss.
"""

import pytest

from repro.experiments.ablations import (
    ablate_baselines,
    ablate_gamma_ratio,
    ablate_max_gamma,
    ablate_message_loss,
    ablate_utility_variant,
)


@pytest.mark.benchmark(group="ablations")
def test_utility_variant(benchmark):
    outcomes = benchmark.pedantic(ablate_utility_variant, rounds=1, iterations=1)
    by_label = {o.label: o for o in outcomes}
    for label in ("sum", "path-weighted"):
        assert by_label[label].feasible, f"{label} variant must converge"
    print()
    for o in outcomes:
        print(f"  {o.label:14s} utility={o.utility:9.2f} "
              f"converged={o.converged}")


@pytest.mark.benchmark(group="ablations")
def test_max_gamma_sweep(benchmark):
    outcomes = benchmark.pedantic(ablate_max_gamma, rounds=1, iterations=1)
    by_label = {o.label: o for o in outcomes}
    # Moderate caps are stable; unbounded doubling is not (on this topology).
    assert by_label["max_gamma=8"].feasible
    assert by_label["max_gamma=8"].extra["tail_oscillation"] < 0.1
    assert by_label["max_gamma=1e+06"].extra["tail_oscillation"] > 10.0
    print()
    for o in outcomes:
        print(f"  {o.label:16s} oscillation={o.extra['tail_oscillation']:8.3f} "
              f"feasible={o.feasible}")


@pytest.mark.benchmark(group="ablations")
def test_gamma_ratio_ray(benchmark):
    outcomes = benchmark.pedantic(ablate_gamma_ratio, rounds=1, iterations=1)
    ratios = [o.extra["max_crit_path_ratio"] for o in outcomes]
    loads = [o.extra["max_load"] for o in outcomes]
    # Shrinking gamma_p moves violation from resources into paths.
    assert ratios == sorted(ratios), "critical-path overrun should grow"
    assert loads == sorted(loads, reverse=True), "overload should shrink"
    assert ratios[-1] > 1.7, "smallest gamma_p should reach the paper's band"
    print()
    for o in outcomes:
        print(f"  {o.label:24s} crit-ratio={o.extra['max_crit_path_ratio']:.2f} "
              f"load={o.extra['max_load']:.2f}")


@pytest.mark.benchmark(group="ablations")
def test_baseline_comparison(benchmark):
    scores = benchmark.pedantic(ablate_baselines, rounds=1, iterations=1)
    lla = scores["lla"].utility
    oracle = scores["centralized"].utility
    assert abs(lla - oracle) <= 0.01 * max(abs(oracle), 1.0) + 0.5, (
        f"LLA ({lla:.2f}) should match the centralized optimum ({oracle:.2f})"
    )
    for name in ("even-slicing", "proportional-slicing", "bst-slicing"):
        assert scores[name].utility < lla, (
            f"{name} should not beat LLA on the saturated workload"
        )
        assert not scores[name].feasible, (
            f"{name} ignores capacity and should violate it here"
        )
    print()
    for name, score in scores.items():
        print(f"  {name:22s} utility={score.utility:9.2f} "
              f"feasible={score.feasible} max_load={score.max_load:.3f}")


@pytest.mark.benchmark(group="ablations")
def test_message_loss(benchmark):
    outcomes = benchmark.pedantic(ablate_message_loss, rounds=1, iterations=1)
    for o in outcomes:
        assert o.feasible, f"runtime should converge under {o.label}"
    utilities = [o.utility for o in outcomes]
    assert max(utilities) - min(utilities) < 1.0, (
        "loss should not change the converged utility materially"
    )
    print()
    for o in outcomes:
        print(f"  {o.label:10s} utility={o.utility:9.2f} "
              f"dropped={o.extra['messages_dropped']:.0f}")


@pytest.mark.benchmark(group="ablations")
def test_share_exponent(benchmark):
    """LLA converges for any strictly convex power-law share model
    (alpha = 1 is the paper's Eq. 10)."""
    from repro.experiments.ablations import ablate_share_exponent

    outcomes = benchmark.pedantic(ablate_share_exponent, rounds=1,
                                  iterations=1)
    for o in outcomes:
        assert o.converged, o.label
        assert o.feasible, o.label
        assert o.extra["max_load"] == pytest.approx(1.0, abs=0.01)
    print()
    for o in outcomes:
        print(f"  {o.label:12s} max_load={o.extra['max_load']:.3f}")


@pytest.mark.benchmark(group="ablations")
def test_correction_percentile(benchmark):
    """Lower observation percentiles make the error correction more
    aggressive (more negative error); the fast tasks' rate-share floor
    holds at every percentile."""
    from repro.experiments.ablations import ablate_correction_percentile
    from repro.workloads.paper import PROTOTYPE_FAST_MIN_SHARE

    outcomes = benchmark.pedantic(ablate_correction_percentile, rounds=1,
                                  iterations=1)
    errors = [o.extra["fast_error"] for o in outcomes]
    assert errors[0] <= errors[-1] + 1e-6, (
        "p50 should be at least as aggressive as p99"
    )
    for o in outcomes:
        assert o.extra["fast_share"] >= PROTOTYPE_FAST_MIN_SHARE - 1e-6
    print()
    for o in outcomes:
        print(f"  {o.label:16s} fast={o.extra['fast_share']:.3f} "
              f"slow={o.extra['slow_share']:.3f} "
              f"error={o.extra['fast_error']:+.1f} ms")
