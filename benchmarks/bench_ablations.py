"""Benchmarks for the ablation sweeps (design choices, not in the paper).

Drives the registered ``ablations`` spec through the harness — the same
code path as ``repro experiment ablations`` — and asserts its claim
checks:

* utility variant (sum vs path-weighted) — both must converge feasibly;
* adaptive-γ cap — a capped γ is stable at saturation, unbounded is not;
* γ_p/γ_r ratio — steering the infeasible divergence ray;
* LLA vs baselines — LLA must dominate every slicing heuristic and match
  the centralized oracle within 1%;
* distributed message loss — convergence must survive 20% loss;
* share exponent — LLA converges for any strictly convex power law;
* correction percentile — lower percentiles correct more aggressively.
"""

import pytest

import _report


@pytest.mark.benchmark(group="ablations")
def test_ablation_sweeps(benchmark):
    run = _report.run_spec(benchmark, "ablations")
    _report.assert_claims(run)

    payload = run.payload
    print()
    print("  utility variants:")
    for o in payload["utility_variants"]:
        print(f"    {o['label']:14s} utility={o['utility']:9.2f} "
              f"converged={o['converged']}")
    print("  gamma caps:")
    for o in payload["gamma_caps"]:
        print(f"    {o['label']:16s} "
              f"oscillation={o['extra']['tail_oscillation']:8.3f} "
              f"feasible={o['feasible']}")
    print("  gamma rays:")
    for o in payload["gamma_rays"]:
        print(f"    {o['label']:24s} "
              f"crit-ratio={o['extra']['max_crit_path_ratio']:.2f} "
              f"load={o['extra']['max_load']:.2f}")
    print("  baselines:")
    for name, score in payload["baselines"].items():
        print(f"    {name:22s} utility={score['utility']:9.2f} "
              f"feasible={score['feasible']} "
              f"max_load={score['max_load']:.3f}")
    print("  message loss:")
    for o in payload["message_loss"]:
        print(f"    {o['label']:10s} utility={o['utility']:9.2f} "
              f"dropped={o['extra']['messages_dropped']:.0f}")
    print("  share exponents:")
    for o in payload["share_exponents"]:
        print(f"    {o['label']:12s} max_load={o['extra']['max_load']:.3f}")
    print("  correction percentiles:")
    for o in payload["correction_percentiles"]:
        print(f"    {o['label']:16s} fast={o['extra']['fast_share']:.3f} "
              f"slow={o['extra']['slow_share']:.3f} "
              f"error={o['extra']['fast_error']:+.1f} ms")
