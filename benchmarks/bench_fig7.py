"""Benchmark + reproduction assertions for Figure 7 (schedulability test).

Regenerates the 100-iteration run on the unschedulable six-task workload
and asserts the paper's verdict: LLA does not converge to a feasible
operating point and the constraints are grossly violated.

The violation split between the two constraint families depends on the
divergence ray (see the fig7 driver's docstring): under equal step sizes
our topology overloads the resources ≈2.1×; under ``γ_p = γ_r/500`` the
run lands in the paper's regime with critical paths up to ≈2.2× the
critical times (paper: 1.75–2.41×).  Both configurations are asserted.
The schedulable base workload is also run as the control: the same
analyzer must classify it SCHEDULABLE.
"""

import pytest

from repro.analysis.schedulability import SchedulabilityAnalyzer
from repro.experiments.fig7 import run_fig7
from repro.workloads.paper import base_workload


@pytest.mark.benchmark(group="fig7")
def test_fig7_unschedulable_equal_gamma(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    assert not result.feasible, "the workload must not reach feasibility"
    assert result.violates_constraints()
    # Equal-gamma ray on our topology: resources absorb the violation.
    assert result.max_load_ratio > 1.5, (
        f"expected gross resource overload, got {result.max_load_ratio:.2f}x"
    )
    print()
    print(f"  equal-gamma ray: max load ratio {result.max_load_ratio:.2f}x, "
          f"max critical-path ratio {result.max_critical_path_ratio:.2f}x")


@pytest.mark.benchmark(group="fig7")
def test_fig7_unschedulable_paper_ray(benchmark):
    result = benchmark.pedantic(
        run_fig7, rounds=1, iterations=1,
        kwargs={"iterations": 300, "path_gamma_divisor": 500.0},
    )

    assert not result.feasible
    # The paper's regime: critical paths well above the critical times.
    assert result.max_critical_path_ratio > 1.5, (
        f"expected the paper's path-violated regime, got "
        f"{result.max_critical_path_ratio:.2f}x (paper: 1.75-2.41x)"
    )
    print()
    print("  paper ray: critical-path ratios "
          + ", ".join(f"{t}={r:.2f}x" for t, r in
                      sorted(result.critical_path_ratios.items())))


@pytest.mark.benchmark(group="fig7")
def test_fig7_schedulable_control(benchmark):
    analyzer = SchedulabilityAnalyzer()
    report = benchmark.pedantic(
        analyzer.analyze, args=(base_workload(),), rounds=1, iterations=1
    )
    assert report.schedulable, report.summary()
    print()
    print("  control: " + report.summary())
