"""Benchmark + reproduction assertions for Figure 7 (schedulability test).

Drives the registered ``fig7`` spec through the harness — the same code
path as ``repro experiment fig7`` — and asserts its claim checks on
both divergence rays (see the fig7 driver's docstring): under equal step
sizes our topology overloads the resources ≈2.1×; under ``γ_p = γ_r/500``
the run lands in the paper's regime with critical paths up to ≈2.2× the
critical times (paper: 1.75–2.41×).  The schedulable base workload is
also run as the control: the same analyzer must classify it SCHEDULABLE.
"""

import pytest

import _report
from repro.analysis.schedulability import SchedulabilityAnalyzer
from repro.workloads.paper import base_workload


@pytest.mark.benchmark(group="fig7")
def test_fig7_unschedulable_equal_gamma(benchmark):
    run = _report.run_spec(benchmark, "fig7")
    _report.assert_claims(run)

    payload = run.payload
    # Equal-gamma ray on our topology: resources absorb the violation.
    assert payload["max_load_ratio"] > 1.5, (
        f"expected gross resource overload, got "
        f"{payload['max_load_ratio']:.2f}x"
    )
    print()
    print(f"  equal-gamma ray: max load ratio "
          f"{payload['max_load_ratio']:.2f}x, max critical-path ratio "
          f"{payload['max_critical_path_ratio']:.2f}x")


@pytest.mark.benchmark(group="fig7")
def test_fig7_unschedulable_paper_ray(benchmark):
    run = _report.run_spec(
        benchmark, "fig7",
        {"iterations": 300, "path_gamma_divisor": 500.0},
    )
    _report.assert_claims(run)

    payload = run.payload
    # The paper's regime: critical paths well above the critical times.
    assert payload["max_critical_path_ratio"] > 1.5, (
        f"expected the paper's path-violated regime, got "
        f"{payload['max_critical_path_ratio']:.2f}x (paper: 1.75-2.41x)"
    )
    print()
    print("  paper ray: critical-path ratios "
          + ", ".join(f"{t}={r:.2f}x" for t, r in
                      sorted(payload["critical_path_ratios"].items())))


@pytest.mark.benchmark(group="fig7")
def test_fig7_schedulable_control(benchmark):
    analyzer = SchedulabilityAnalyzer()
    report = benchmark.pedantic(
        analyzer.analyze, args=(base_workload(),), rounds=1, iterations=1
    )
    assert report.schedulable, report.summary()
    print()
    print("  control: " + report.summary())
