"""Benchmark: the always-on allocation service (ours).

Two claims the service exists to make true:

* **query decoupling** — allocation queries answer from the current
  iterate in microseconds, independent of convergence (the optimizer can
  keep iterating underneath);
* **warm churn restarts** — after a churn burst, re-convergence from
  surviving live prices takes at most half the rounds of a cold restart
  (measured exactly as the churn experiment measures it: settling into
  ±1% of the epoch-final utility).
"""

import time

import pytest

import _report
from repro.experiments.churn import run_churn
from repro.service import AllocationService, ServiceConfig
from repro.workloads.paper import scaled_workload

_BENCH = _report.bench_name(__file__)


@pytest.mark.benchmark(group="service")
def test_steady_state_query_latency(benchmark):
    taskset = scaled_workload(4)
    service = AllocationService(
        list(taskset.resources.values()), config=ServiceConfig()
    )
    tasks = list(taskset.tasks)
    for task in tasks:
        assert service.register(task).admitted
    service.run_to_convergence()
    assert service.converged

    queries = 2000

    def run():
        for i in range(queries):
            service.query(tasks[i % len(tasks)].name)

    started = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started

    qps = queries / elapsed
    _report.record_value(_BENCH, "query.per_second", qps)
    _report.record_value(_BENCH, "query.mean_micros",
                         elapsed / queries * 1e6)
    # The iterate answered every query feasibly.
    view = service.query(tasks[0].name)
    assert view.meets_critical_time
    print()
    print(f"  {qps:,.0f} queries/s "
          f"({elapsed / queries * 1e6:.1f} us mean)")


@pytest.mark.benchmark(group="service")
def test_warm_reconvergence_halves_cold(benchmark):
    report = benchmark.pedantic(
        lambda: run_churn(cycles=1), rounds=1, iterations=1
    )
    _report.record_value(_BENCH, "reconvergence.warm_mean_rounds",
                         report.warm_mean)
    _report.record_value(_BENCH, "reconvergence.cold_mean_rounds",
                         report.cold_mean)
    _report.record_value(_BENCH, "reconvergence.ratio",
                         report.reconvergence_ratio)
    _report.record_value(_BENCH, "cache.hits", report.cache_hits)
    _report.record_value(_BENCH, "cache.hit_rate", report.cache_hit_rate)
    # The acceptance bar: warm re-convergence after a churn burst in at
    # most 50% of the cold-restart rounds.
    assert report.reconvergence_ratio <= 0.5
    assert report.feasibility_violations == 0
    assert report.probe_rejected
    print()
    print(f"  warm {report.warm_mean:.0f} vs cold {report.cold_mean:.0f} "
          f"rounds (ratio {report.reconvergence_ratio:.2f})")
