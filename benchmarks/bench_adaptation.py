"""Benchmark + assertions for the adaptation experiments (ours).

The paper's Section 1 claim — LLA "adjusts to both workload and resource
variations" — as a measurable experiment:

* degrade one resource 30% mid-run → LLA re-converges feasibly at lower
  utility, and recovers the exact baseline utility when capacity returns;
* add a task to the running system → the warm continuation reaches the
  cold-start optimum.
"""

import pytest

from repro.experiments.adaptation import (
    run_resource_variation,
    run_workload_variation,
)


@pytest.mark.benchmark(group="adaptation")
def test_resource_variation(benchmark):
    result = benchmark.pedantic(run_resource_variation, rounds=1, iterations=1)
    assert result.baseline.feasible
    assert result.degradation_absorbed(), (
        f"degraded phase: feasible={result.degraded.feasible}, "
        f"utility {result.degraded.utility:.2f} vs baseline "
        f"{result.baseline.utility:.2f}"
    )
    assert result.recovery_complete(), (
        f"recovered utility {result.recovered.utility:.2f} vs baseline "
        f"{result.baseline.utility:.2f}"
    )
    print()
    for phase in result.phases:
        print(f"  {phase.label:10s} utility {phase.utility:8.2f} "
              f"feasible {phase.feasible}")


@pytest.mark.benchmark(group="adaptation")
def test_workload_variation(benchmark):
    result = benchmark.pedantic(run_workload_variation, rounds=1, iterations=1)
    assert result.newcomer_absorbed()
    assert result.matches_cold_start(), (
        f"warm {result.after.utility:.2f} vs cold {result.cold_utility:.2f}"
    )
    print()
    print(f"  incumbent {result.before.utility:.2f} -> with newcomer "
          f"{result.after.utility:.2f} (cold reference "
          f"{result.cold_utility:.2f})")


@pytest.mark.benchmark(group="adaptation")
def test_undetected_interference(benchmark):
    """Error correction detects interference the model cannot see, raises
    the threatened tasks' shares, and beats frozen shares on tail latency."""
    from repro.experiments.adaptation import run_undetected_interference

    result = benchmark.pedantic(run_undetected_interference,
                                rounds=1, iterations=1)
    assert result.correction_reacted()
    assert result.adaptation_helps()
    assert result.fast_p99_adaptive < 0.5 * result.fast_p99_frozen
    print()
    print(f"  fast share {result.fast_share_before:.3f} -> "
          f"{result.fast_share_during:.3f}; error "
          f"{result.fast_error_before:+.1f} -> "
          f"{result.fast_error_during:+.1f} ms")
    print(f"  fast p99: adaptive {result.fast_p99_adaptive:.1f} ms vs "
          f"frozen {result.fast_p99_frozen:.1f} ms")
