"""Benchmark + assertions for the adaptation experiments (ours).

Drives the registered ``adaptation`` and ``interference`` specs through
the harness — the same code path as ``repro experiment adaptation`` —
and asserts their claim checks:

* degrade one resource 30% mid-run → LLA re-converges feasibly at lower
  utility, and recovers the exact baseline utility when capacity returns;
* add a task to the running system → the warm continuation reaches the
  cold-start optimum;
* inject simulator-side interference the model cannot see → the error
  correction reacts, and adaptive shares beat frozen shares on tail
  latency.
"""

import pytest

import _report


@pytest.mark.benchmark(group="adaptation")
def test_adaptation_variations(benchmark):
    run = _report.run_spec(benchmark, "adaptation")
    _report.assert_claims(run)

    payload = run.payload
    print()
    for phase in payload["resource_phases"]:
        print(f"  {phase['label']:10s} utility {phase['utility']:8.2f} "
              f"feasible {phase['feasible']}")
    workload = payload["workload"]
    print(f"  incumbent {workload['incumbent_utility']:.2f} -> "
          f"with newcomer {workload['warm_utility']:.2f} "
          f"(cold reference {workload['cold_utility']:.2f})")


@pytest.mark.benchmark(group="adaptation")
def test_undetected_interference(benchmark):
    """Error correction detects interference the model cannot see, raises
    the threatened tasks' shares, and beats frozen shares on tail latency."""
    run = _report.run_spec(benchmark, "interference")
    _report.assert_claims(run)

    payload = run.payload
    print()
    print(f"  fast share {payload['fast_share_before']:.3f} -> "
          f"{payload['fast_share_during']:.3f}; error "
          f"{payload['fast_error_before']:+.1f} -> "
          f"{payload['fast_error_during']:+.1f} ms")
    print(f"  fast p99: adaptive {payload['fast_p99_adaptive']:.1f} ms vs "
          f"frozen {payload['fast_p99_frozen']:.1f} ms")
