"""Benchmark + reproduction assertions for Figure 8 (error correction).

Drives the registered ``fig8`` spec through the harness — the same code
path as ``repro experiment fig8`` — and asserts its claim checks:

* before correction the fast subtasks hold more than their minimum rate
  share (model-driven over-allocation);
* after correction the fast subtasks descend to exactly their minimum
  rate share (0.2) and the slow subtasks absorb the surplus (0.25);
* the reallocation has the paper's sign pattern (fast −, slow +; the
  paper reports −23% / +32%, our model gives −30% / +52% from a different
  pre-correction split);
* the error mean stabilizes once the shares converge.
"""

import pytest

import _report


@pytest.mark.benchmark(group="fig8")
def test_fig8_error_correction(benchmark):
    run = _report.run_spec(benchmark, "fig8")
    _report.assert_claims(run)

    payload = run.payload
    print()
    print(f"  fast: {payload['fast_share_before']:.3f} -> "
          f"{payload['fast_share_after']:.3f} "
          f"({payload['fast_change_percent']:+.0f}%) "
          f"[paper: 0.26 -> 0.20, -23%]")
    print(f"  slow: {payload['slow_share_before']:.3f} -> "
          f"{payload['slow_share_after']:.3f} "
          f"({payload['slow_change_percent']:+.0f}%) "
          f"[paper: 0.19 -> 0.25, +32%]")


@pytest.mark.benchmark(group="fig8")
def test_fig8_quantum_scheduler(benchmark):
    """The same experiment on the surplus-fair quantum scheduler: the
    correction behaviour must be model-independent."""
    run = _report.run_spec(
        benchmark, "fig8", {"model": "quantum", "epochs_after": 22},
    )
    _report.assert_claims(
        run, "overallocated_before_correction", "slow_gains_surplus",
    )
    payload = run.payload
    # The quantum scheduler's endpoint is slightly coarser: 0.02 band.
    assert payload["fast_share_after"] == pytest.approx(0.20, abs=0.02)
    print()
    print(f"  quantum: fast {payload['fast_share_before']:.3f} -> "
          f"{payload['fast_share_after']:.3f}, "
          f"slow {payload['slow_share_before']:.3f} -> "
          f"{payload['slow_share_after']:.3f}")


@pytest.mark.benchmark(group="fig8")
def test_fig8_fully_distributed(benchmark):
    """The complete architecture: message-passing controllers and resource
    agents (5% control-message loss) driving the live simulator with
    online error correction — the Figure 8 endpoint must still hold."""
    from repro.experiments.fig8 import run_fig8_distributed

    final = benchmark.pedantic(run_fig8_distributed, rounds=1, iterations=1)
    assert final.shares["fast1_s0"] == pytest.approx(0.20, abs=0.01)
    assert final.shares["slow1_s0"] == pytest.approx(0.25, abs=0.01)
    print()
    print(f"  distributed endpoint: fast {final.shares['fast1_s0']:.3f}, "
          f"slow {final.shares['slow1_s0']:.3f} "
          f"(error {final.smoothed_errors['fast1_s0']:+.1f} ms)")
