"""Benchmark + reproduction assertions for Figure 8 (error correction).

Regenerates the prototype experiment on the simulated substrate and
asserts the paper's claims:

* before correction the fast subtasks hold more than their minimum rate
  share (model-driven over-allocation);
* after correction the fast subtasks descend to exactly their minimum
  rate share (0.2) and the slow subtasks absorb the surplus (0.25);
* the reallocation has the paper's sign pattern (fast −, slow +; the
  paper reports −23% / +32%, our model gives −30% / +52% from a different
  pre-correction split);
* the error mean stabilizes once the shares converge.
"""

import pytest

from repro.experiments.fig8 import run_fig8
from repro.workloads.paper import PROTOTYPE_FAST_MIN_SHARE


@pytest.mark.benchmark(group="fig8")
def test_fig8_error_correction(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    assert result.fast_share_before > PROTOTYPE_FAST_MIN_SHARE + 0.05, (
        "before correction the model should over-allocate the fast tasks"
    )
    assert result.fast_reaches_min_share(), (
        f"fast share should descend to 0.2, got {result.fast_share_after:.3f}"
    )
    assert result.slow_gains_surplus()
    assert abs(result.slow_share_after - 0.25) <= 0.01, (
        f"slow share should rise to ~0.25, got {result.slow_share_after:.3f}"
    )
    assert result.fast_change_percent < -15.0
    assert result.slow_change_percent > 20.0
    assert result.error_mean_stabilizes()

    print()
    print(f"  fast: {result.fast_share_before:.3f} -> "
          f"{result.fast_share_after:.3f} ({result.fast_change_percent:+.0f}%) "
          f"[paper: 0.26 -> 0.20, -23%]")
    print(f"  slow: {result.slow_share_before:.3f} -> "
          f"{result.slow_share_after:.3f} ({result.slow_change_percent:+.0f}%) "
          f"[paper: 0.19 -> 0.25, +32%]")


@pytest.mark.benchmark(group="fig8")
def test_fig8_quantum_scheduler(benchmark):
    """The same experiment on the surplus-fair quantum scheduler: the
    correction behaviour must be model-independent."""
    result = benchmark.pedantic(
        run_fig8, rounds=1, iterations=1,
        kwargs={"model": "quantum", "epochs_after": 22},
    )
    assert result.fast_reaches_min_share(tol=0.02)
    assert result.slow_gains_surplus()
    print()
    print(f"  quantum: fast {result.fast_share_before:.3f} -> "
          f"{result.fast_share_after:.3f}, slow {result.slow_share_before:.3f} "
          f"-> {result.slow_share_after:.3f}")


@pytest.mark.benchmark(group="fig8")
def test_fig8_fully_distributed(benchmark):
    """The complete architecture: message-passing controllers and resource
    agents (5% control-message loss) driving the live simulator with
    online error correction — the Figure 8 endpoint must still hold."""
    from repro.distributed import DistributedClosedLoop, DistributedConfig
    from repro.workloads.paper import prototype_workload

    def run():
        loop = DistributedClosedLoop(
            prototype_workload(), window=2000.0, rounds_per_epoch=400,
            seed=7,
            runtime_config=DistributedConfig(
                record_history=False, loss_probability=0.05, seed=3
            ),
        )
        loop.run_epochs(4)
        loop.enable_correction()
        loop.run_epochs(22)
        return loop.history[-1]

    final = benchmark.pedantic(run, rounds=1, iterations=1)
    assert final.shares["fast1_s0"] == pytest.approx(0.20, abs=0.01)
    assert final.shares["slow1_s0"] == pytest.approx(0.25, abs=0.01)
    print()
    print(f"  distributed endpoint: fast {final.shares['fast1_s0']:.3f}, "
          f"slow {final.shares['slow1_s0']:.3f} "
          f"(error {final.smoothed_errors['fast1_s0']:+.1f} ms)")
