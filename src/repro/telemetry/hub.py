"""The :class:`Telemetry` facade: one registry + one tracer per context.

Every instrumented component (optimizer, bus, runtime, simulator) takes an
optional ``telemetry`` argument.  ``None`` means :data:`NULL_TELEMETRY` — a
permanently disabled instance whose every operation is a no-op — so the
instrumentation can stay unconditional in the code while costing a single
``enabled`` check per hot-path call site.

Typical usage::

    from repro.telemetry import Telemetry

    telemetry = Telemetry.to_file("run.jsonl")   # tracer → JSONL, metrics on
    result = LLAOptimizer(taskset, config, telemetry=telemetry).run()
    telemetry.close()                            # flush the sink
    print(telemetry.registry.snapshot())
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.metrics import MetricsRegistry, default_registry
from repro.telemetry.spans import SpanTracker
from repro.telemetry.tracing import JsonlFileSink, Tracer, TraceSink

__all__ = ["Telemetry", "NULL_TELEMETRY", "get_telemetry", "set_telemetry"]


class Telemetry:
    """A metrics registry and an event tracer traveling together."""

    __slots__ = ("registry", "tracer", "_spans")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._spans: Optional[SpanTracker] = None

    @property
    def spans(self) -> SpanTracker:
        """The span tracker bound to this context's tracer (lazy; one
        per telemetry so span ids stay process-deterministic)."""
        if self._spans is None:
            self._spans = SpanTracker(self.tracer)
        return self._spans

    @property
    def enabled(self) -> bool:
        """True when either metrics collection or tracing is live."""
        return self.registry.enabled or self.tracer.enabled

    # -- constructors -------------------------------------------------------------

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A fresh, fully inert instance (enable later if wanted)."""
        return cls(MetricsRegistry(enabled=False), Tracer())

    @classmethod
    def to_file(cls, path: str,
                registry: Optional[MetricsRegistry] = None,
                clock: Optional[Callable[[], float]] = None) -> "Telemetry":
        """Metrics on, tracing into a JSONL file at ``path``.

        ``clock`` injects the event-timestamp source (deterministic runs
        pass their virtual clock; default is wall time)."""
        return cls(registry, Tracer([JsonlFileSink(path)], clock=clock))

    @classmethod
    def in_memory(cls,
                  clock: Optional[Callable[[], float]] = None) -> "Telemetry":
        """Metrics on, tracing into an in-memory sink (tests)."""
        from repro.telemetry.tracing import InMemorySink
        return cls(MetricsRegistry(), Tracer([InMemorySink()], clock=clock))

    # -- lifecycle ----------------------------------------------------------------

    def add_sink(self, sink: TraceSink) -> TraceSink:
        return self.tracer.add_sink(sink)

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Install the trace-timestamp source (see :class:`Tracer`)."""
        self.tracer.set_clock(clock)

    def close(self) -> None:
        """Flush and close every trace sink."""
        self.tracer.close()


#: Shared inert instance used when a component gets ``telemetry=None``.
#: Do not attach sinks or enable its registry — allocate a real
#: :class:`Telemetry` instead.
NULL_TELEMETRY = Telemetry(MetricsRegistry(enabled=False), Tracer())

_process_telemetry: Optional[Telemetry] = None


def get_telemetry() -> Telemetry:
    """The process-global telemetry (wraps the default metrics registry)."""
    global _process_telemetry
    if _process_telemetry is None:
        _process_telemetry = Telemetry(default_registry(), Tracer())
    return _process_telemetry


def set_telemetry(telemetry: Telemetry) -> Optional[Telemetry]:
    """Replace the process-global telemetry; returns the previous one."""
    global _process_telemetry
    previous = _process_telemetry
    _process_telemetry = telemetry
    return previous
