"""Prometheus text exposition for a :class:`MetricsRegistry`.

Renders the registry (or a previously captured ``snapshot()`` dict, e.g.
the ``metrics_snapshot`` event at the end of a trace) in the Prometheus
text format, so the ops console and ``repro stats --prometheus`` can feed
standard scrapers and dashboards without a client-library dependency.

Mapping rules:

* metric names are sanitized (``.``/``-`` → ``_``; any other
  non-alphanumeric also ``_``);
* counters get a ``_total``-free pass-through (repo names already end in
  ``_total`` where appropriate) with ``# TYPE ... counter``;
* gauges expose their value with ``# TYPE ... gauge``;
* histograms and timers become a summary: ``_count``, ``_sum``,
  ``_min``/``_max``/``_mean`` gauges and ``{quantile="..."}`` sample
  lines for p50/p90/p99 (omitted while empty), plus ``_dropped`` when
  the retained window evicted samples.

Output is sorted by metric name and ends with a newline, matching the
exposition-format grammar.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["render_prometheus", "render_prometheus_snapshot"]

#: snapshot ``type`` values rendered as summaries (quantile lines).
_SUMMARY_TYPES = frozenset({"histogram", "timer"})

_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _sanitize(name: str) -> str:
    """A metric name legal in the exposition format."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _format_value(value: Any) -> Optional[str]:
    """Prometheus float rendering; ``None`` for absent/non-numeric."""
    if value is None or isinstance(value, bool):
        return None
    try:
        number = float(value)
    except (TypeError, ValueError):
        return None
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return f"{number:g}"


def _render_scalar(lines: List[str], name: str, kind: str,
                   snap: Mapping[str, Any]) -> None:
    value = _format_value(snap.get("value"))
    if value is None:
        return
    lines.append(f"# TYPE {name} {kind}")
    lines.append(f"{name} {value}")


def _render_summary(lines: List[str], name: str,
                    snap: Mapping[str, Any]) -> None:
    lines.append(f"# TYPE {name} summary")
    for quantile, key in _QUANTILES:
        value = _format_value(snap.get(key))
        if value is not None:
            lines.append(f'{name}{{quantile="{quantile}"}} {value}')
    count = _format_value(snap.get("count"))
    total = _format_value(snap.get("sum"))
    lines.append(f"{name}_count {count if count is not None else 0}")
    lines.append(f"{name}_sum {total if total is not None else 0}")
    for stat in ("min", "max", "mean"):
        value = _format_value(snap.get(stat))
        if value is not None:
            lines.append(f"{name}_{stat} {value}")
    dropped = snap.get("dropped")
    if isinstance(dropped, (int, float)) and dropped:
        lines.append(f"{name}_dropped {_format_value(dropped)}")


def render_prometheus_snapshot(
    snapshot: Mapping[str, Mapping[str, Any]],
) -> str:
    """Exposition text from a ``MetricsRegistry.snapshot()``-shaped dict.

    Unknown metric ``type`` values fall back to gauge rendering when they
    carry a numeric ``value`` and are skipped otherwise, so traces from
    newer writers degrade gracefully instead of failing the render.
    """
    lines: List[str] = []
    for raw_name in sorted(snapshot):
        snap = snapshot[raw_name]
        if not isinstance(snap, Mapping):
            continue
        name = _sanitize(raw_name)
        kind = str(snap.get("type", "gauge"))
        if kind in _SUMMARY_TYPES:
            _render_summary(lines, name, snap)
        elif kind == "counter":
            _render_scalar(lines, name, "counter", snap)
        else:
            _render_scalar(lines, name, "gauge", snap)
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Exposition text for every metric currently in ``registry``."""
    snapshot: Dict[str, Dict[str, object]] = registry.snapshot()
    return render_prometheus_snapshot(snapshot)
