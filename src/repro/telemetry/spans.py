"""Causal spans: follow one decision across agents, the bus and rounds.

PR 1's flat events record *that* things happened; spans record *why* and
*downstream of what*.  A :class:`SpanContext` is three identifiers —
``trace_id`` (one causal tree, usually one run), ``span_id`` (this
operation) and ``parent_id`` (the operation that caused it) — threaded
through :class:`~repro.distributed.messages.Envelope` so a price update
can be followed resource agent → bus → task controller → assignment
change.

Identifiers are allocated from plain counters (never random), and span
timestamps come from the tracer's injected clock, so two identical runs
emit byte-identical span streams and a replayed trace reconstructs the
exact spans the live run produced (asserted by tests).

Two lifetime APIs, policed by statan rule REP010:

* :meth:`SpanTracker.start_span` returns a :class:`Span` context manager
  — the default for operations that open and close in one scope
  (``with tracker.start_span("act") as span: ...``);
* :meth:`SpanTracker.open_span` / :meth:`SpanTracker.end_span` manage
  explicitly split lifetimes (a message span opens at ``send`` and closes
  rounds later at delivery) — the caller owns the close.

On-trace encoding: ``span_start`` events carry ``trace_id``/``span_id``/
``parent_id``/``name`` plus caller attributes; ``span_end`` events carry
``span_id``/``trace_id``/``status`` plus end attributes.
:func:`spans_from_trace` reassembles them and :func:`critical_path`
extracts the causal chain that finished last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import TelemetryError
from repro.telemetry.tracing import TraceEvent, Tracer

__all__ = [
    "SpanContext",
    "Span",
    "SpanTracker",
    "SpanRecord",
    "spans_from_trace",
    "critical_path",
    "format_critical_path",
]

#: Keys the span encoding reserves in event data; caller attributes may
#: not shadow them.
_RESERVED = frozenset({"trace_id", "span_id", "parent_id", "name", "status"})


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of one span (immutable, JSON-safe)."""

    trace_id: int
    span_id: int
    parent_id: Optional[int] = None

    def child_of(self) -> "SpanContext":
        """Alias clarity helper: a context to be used as a parent."""
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


class Span:
    """A live span handle: ``with`` support plus an explicit :meth:`end`.

    Ending twice raises — a double close means two owners believe they
    control the span's lifetime, which corrupts the trace tree.
    """

    __slots__ = ("context", "name", "_tracker", "_ended")

    def __init__(self, context: SpanContext, name: str,
                 tracker: "SpanTracker") -> None:
        self.context = context
        self.name = name
        self._tracker = tracker
        self._ended = False

    @property
    def ended(self) -> bool:
        return self._ended

    def end(self, status: str = "ok", **attrs: Any) -> None:
        if self._ended:
            raise TelemetryError(
                f"span {self.name!r} (id {self.context.span_id}) ended twice"
            )
        self._ended = True
        self._tracker.end_span(self.context, status=status, **attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if not self._ended:
            self.end(status="error" if exc_type is not None else "ok")


class SpanTracker:
    """Allocates span identities and emits their start/end events.

    One tracker travels with one :class:`~repro.telemetry.Telemetry`
    (via ``telemetry.spans``).  With the tracer disabled the tracker
    still hands out contexts — propagation code stays unconditional —
    but emits nothing; well-behaved hot paths gate on
    ``tracer.enabled`` before opening spans at all.
    """

    __slots__ = ("_tracer", "_next_trace", "_next_span")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._next_trace = 0
        self._next_span = 0

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @property
    def enabled(self) -> bool:
        return self._tracer.enabled

    def _allocate(self, parent: Optional[SpanContext]) -> SpanContext:
        self._next_span += 1
        if parent is None:
            self._next_trace += 1
            return SpanContext(trace_id=self._next_trace,
                               span_id=self._next_span, parent_id=None)
        return SpanContext(trace_id=parent.trace_id,
                           span_id=self._next_span,
                           parent_id=parent.span_id)

    # -- explicit lifetime (split open/close, e.g. a message in flight) ----------

    def open_span(self, name: str, parent: Optional[SpanContext] = None,
                  **attrs: Any) -> SpanContext:
        """Open a span whose close happens elsewhere (``end_span``)."""
        if _RESERVED & attrs.keys():
            raise TelemetryError(
                f"span attrs may not shadow {sorted(_RESERVED & attrs.keys())}"
            )
        context = self._allocate(parent)
        self._tracer.emit(
            "span_start", trace_id=context.trace_id,
            span_id=context.span_id, parent_id=context.parent_id,
            name=name, **attrs,
        )
        return context

    def end_span(self, context: SpanContext, status: str = "ok",
                 **attrs: Any) -> None:
        """Close a span previously opened with :meth:`open_span`."""
        if _RESERVED & attrs.keys():
            raise TelemetryError(
                f"span attrs may not shadow {sorted(_RESERVED & attrs.keys())}"
            )
        self._tracer.emit(
            "span_end", trace_id=context.trace_id,
            span_id=context.span_id, status=status, **attrs,
        )

    # -- scoped lifetime (the REP010-checked default) ----------------------------

    def start_span(self, name: str, parent: Optional[SpanContext] = None,
                   **attrs: Any) -> Span:
        """Open a span intended to close in the same scope.

        Use as a context manager (``with tracker.start_span(...)``) or
        call :meth:`Span.end` explicitly; statan rule REP010 flags call
        sites that do neither.
        """
        return Span(self.open_span(name, parent=parent, **attrs), name, self)


@dataclass
class SpanRecord:
    """One reassembled span from a recorded trace."""

    context: SpanContext
    name: str
    start_ts: float
    end_ts: Optional[float] = None
    status: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.end_ts is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end_ts is None:
            return None
        return self.end_ts - self.start_ts

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (CLI reports, diff artifacts)."""
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "name": self.name,
            "start_ts": self.start_ts,
            "end_ts": self.end_ts,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


def spans_from_trace(events: Iterable[TraceEvent]) -> List[SpanRecord]:
    """Reassemble spans from a stream of trace events.

    Returns every started span in start order; spans whose ``span_end``
    never arrived (a message still in flight at run end) come back with
    ``end_ts=None``.  A ``span_end`` without a matching start raises —
    that trace is corrupt, not merely truncated.
    """
    by_id: Dict[int, SpanRecord] = {}
    order: List[SpanRecord] = []
    for event in events:
        if event.kind == "span_start":
            data = dict(event.data)
            try:
                context = SpanContext(
                    trace_id=int(data.pop("trace_id")),
                    span_id=int(data.pop("span_id")),
                    parent_id=(
                        None if data.get("parent_id") is None
                        else int(data.pop("parent_id"))
                    ),
                )
                name = str(data.pop("name"))
            except KeyError as exc:
                raise TelemetryError(
                    f"span_start missing field {exc}"
                ) from exc
            data.pop("parent_id", None)
            record = SpanRecord(context=context, name=name,
                                start_ts=event.ts, attrs=data)
            if context.span_id in by_id:
                raise TelemetryError(
                    f"duplicate span_start for span {context.span_id}"
                )
            by_id[context.span_id] = record
            order.append(record)
        elif event.kind == "span_end":
            data = dict(event.data)
            span_id = int(data.pop("span_id", -1))
            record_or_none = by_id.get(span_id)
            if record_or_none is None:
                raise TelemetryError(
                    f"span_end for unknown span {span_id}"
                )
            if record_or_none.end_ts is not None:
                raise TelemetryError(
                    f"span {span_id} ended twice in trace"
                )
            record_or_none.end_ts = event.ts
            record_or_none.status = str(data.pop("status", "ok"))
            data.pop("trace_id", None)
            record_or_none.attrs.update(data)
    return order


def critical_path(spans: Sequence[SpanRecord]) -> List[SpanRecord]:
    """The causal chain ending at the last-finishing completed span.

    Picks the completed span with the greatest ``end_ts`` (ties broken
    by allocation order, i.e. span id) and walks its parent links to the
    root; the result is root-first.  Under the runtimes' virtual clocks
    many spans share timestamps, so the tie-break selects the most
    recently *created* causal chain — the longest price→message→act
    dependency path still live at the end of the run.
    """
    completed = [s for s in spans if s.complete]
    if not completed:
        return []
    def _order(span: SpanRecord) -> "tuple[float, int]":
        return (span.end_ts if span.end_ts is not None else 0.0,
                span.context.span_id)

    leaf = max(completed, key=_order)
    by_id = {s.context.span_id: s for s in spans}
    chain: List[SpanRecord] = []
    cursor: Optional[SpanRecord] = leaf
    seen = set()
    while cursor is not None:
        if cursor.context.span_id in seen:
            raise TelemetryError(
                f"span parent cycle at span {cursor.context.span_id}"
            )
        seen.add(cursor.context.span_id)
        chain.append(cursor)
        parent_id = cursor.context.parent_id
        cursor = by_id.get(parent_id) if parent_id is not None else None
    chain.reverse()
    return chain


def format_critical_path(chain: Sequence[SpanRecord]) -> str:
    """Human-readable one-line-per-hop rendering of a critical path.

    Flat (depth as a numbered column, not indentation): causal chains in
    a distributed run grow one hop per message per round, so a nested
    layout would walk off the right edge of any terminal within a few
    dozen rounds.
    """
    if not chain:
        return "(no completed spans)"
    lines = []
    for depth, span in enumerate(chain):
        label = span.name
        agent = span.attrs.get("agent") or span.attrs.get("payload")
        if agent:
            label = f"{label}[{agent}]"
        duration = span.duration
        stamp = "" if duration is None else f"  ({duration:g})"
        end = "open" if span.end_ts is None else f"{span.end_ts:g}"
        lines.append(f"{depth:>4}  {label}  "
                     f"@{span.start_ts:g}..{end}{stamp}")
    return "\n".join(lines)
