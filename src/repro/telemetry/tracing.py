"""Structured event tracing with pluggable sinks.

A :class:`Tracer` turns instrumentation points into :class:`TraceEvent`
records and fans them out to sinks.  The tracer with no sinks is a no-op
(one attribute check per call site), so instrumented code never needs a
"tracing on?" branch of its own.

Event kinds emitted by the instrumented layers (see
``docs/OBSERVABILITY.md`` for the full schema):

========================  =====================================================
kind                      emitted by
========================  =====================================================
``run_started``           optimizer / distributed runtime / closed loop
``iteration``             one per LLA iteration or protocol round
``price_update``          resource-price movement within an iteration
``congestion_flip``       the congested resource/path set changed
``convergence``           the convergence detector fired
``run_finished``          end of a run (converged flag, final utility)
``correction_applied``    §6.3 model-error correction installed
``message_sent``          bus accepted an envelope
``message_dropped``       bus dropped a message (loss or partition)
``message_delayed``       bus queued a message beyond the current round
``partition`` / ``heal``  bus link state changes
``epoch``                 one closed-loop control epoch
``metrics_snapshot``      registry dump at the end of a traced run
========================  =====================================================

The on-disk format is JSONL: one ``{"kind": ..., "ts": ..., "data": {...}}``
object per line, readable back with :func:`read_trace`.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Union

from repro.errors import TelemetryError

__all__ = [
    "SCHEMA_VERSION",
    "TraceEvent",
    "TraceSink",
    "InMemorySink",
    "JsonlFileSink",
    "LoggingSink",
    "Tracer",
    "read_trace",
    "iter_trace",
]

#: Current on-disk trace-event schema.  Version 1 added the explicit
#: ``schema`` field and the ``span_start``/``span_end`` causal-span
#: encoding; events without a ``schema`` key parse as version 0 (the
#: PR 1 format, which version-1 readers still understand).
SCHEMA_VERSION = 1


@dataclass
class TraceEvent:
    """One structured occurrence: a kind, a wall-clock stamp and a payload."""

    kind: str
    ts: float
    data: Dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_json(self) -> str:
        return json.dumps(
            {"kind": self.kind, "ts": self.ts, "schema": self.schema,
             "data": self.data},
            default=_jsonable,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"malformed trace line: {exc}") from exc
        if not isinstance(raw, dict) or "kind" not in raw:
            raise TelemetryError(f"not a trace event: {line[:80]!r}")
        try:
            schema = int(raw.get("schema", 0))
        except (TypeError, ValueError) as exc:
            raise TelemetryError(
                f"non-integer trace schema {raw.get('schema')!r}"
            ) from exc
        return cls(
            kind=str(raw["kind"]),
            ts=float(raw.get("ts", 0.0)),
            data=dict(raw.get("data") or {}),
            schema=schema,
        )


def _jsonable(value: Any) -> Any:
    """Last-resort JSON encoder: dataclasses, numpy scalars, then str."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    return str(value)


class TraceSink:
    """Receives emitted events.  Subclasses override :meth:`emit`."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class InMemorySink(TraceSink):
    """Collects events in a list (tests, interactive inspection)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.kind == kind]

    def clear(self) -> None:
        self.events.clear()


class JsonlFileSink(TraceSink):
    """Appends one JSON object per event to a file.

    Accepts a path (opened/owned by the sink) or an open text handle
    (borrowed; ``close()`` only flushes it).
    """

    def __init__(self, target: Union[str, "os.PathLike[str]", IO[str]],
                 mode: str = "w") -> None:
        if isinstance(target, (str, os.PathLike)):
            self._handle: IO[str] = open(target, mode)
            self._owns_handle = True
            self.path: Optional[str] = os.fspath(target)
        else:
            self._handle = target
            self._owns_handle = False
            self.path = getattr(target, "name", None)
        self._closed = False

    def emit(self, event: TraceEvent) -> None:
        if self._closed:
            raise TelemetryError(
                f"emit on closed JSONL sink {self.path!r}"
            )
        self._handle.write(event.to_json() + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
        self._closed = True


class LoggingSink(TraceSink):
    """Bridges events into stdlib :mod:`logging`."""

    def __init__(self, logger: Optional[logging.Logger] = None,
                 level: int = logging.DEBUG) -> None:
        self.logger = logger or logging.getLogger("repro.telemetry")
        self.level = level

    def emit(self, event: TraceEvent) -> None:
        if self.logger.isEnabledFor(self.level):
            self.logger.log(
                self.level, "%s %s", event.kind,
                json.dumps(event.data, default=_jsonable, sort_keys=True),
            )


class Tracer:
    """Fans events out to zero or more sinks.

    With no sinks attached, :attr:`enabled` is ``False`` and ``emit`` is
    never called by well-behaved instrumentation (and is a cheap early
    return if it is).

    The event timestamp source is injectable: interactive traces default
    to wall time, while deterministic contexts (the simulator, the
    distributed runtime, trace-replay tests) install their virtual clock
    via ``clock=``/:meth:`set_clock` so two identical runs produce
    byte-identical trace files.
    """

    def __init__(self, sinks: Iterable[TraceSink] = (),
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._sinks: List[TraceSink] = list(sinks)
        # Deterministic runs inject a virtual clock; interactive traces
        # keep the documented wall-time default.
        self._clock_injected = clock is not None
        if clock is None:
            clock = time.time  # statan: disable=REP002 -- wall default for interactive traces
        self._clock: Callable[[], float] = clock

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    @property
    def clock_injected(self) -> bool:
        """True once a caller has installed an explicit clock."""
        return self._clock_injected

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Install the timestamp source for subsequently emitted events."""
        self._clock = clock
        self._clock_injected = True

    @property
    def sinks(self) -> List[TraceSink]:
        return list(self._sinks)

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)

    def emit(self, kind: str, **data: Any) -> Optional[TraceEvent]:
        """Build and dispatch one event; returns it (``None`` when off)."""
        if not self._sinks:
            return None
        event = TraceEvent(kind=kind, ts=self._clock(), data=data)
        for sink in self._sinks:
            sink.emit(event)
        return event

    def close(self) -> None:
        """Close every sink and detach them."""
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()


def iter_trace(path: str) -> Iterable[TraceEvent]:
    """Stream events from a JSONL trace file (blank lines skipped)."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield TraceEvent.from_json(line)


def read_trace(path: str) -> List[TraceEvent]:
    """Load a whole JSONL trace file into memory."""
    return list(iter_trace(path))
