"""Trace replay: JSONL events back into optimizer-native structures.

``iteration`` events carry a complete, JSON-safe encoding of the
:class:`~repro.core.state.IterationRecord` the run observed, so a trace
file on disk can be replayed into the exact same
:class:`~repro.analysis.trace.TraceSummary` the in-process history would
produce — the property the ``repro trace`` CLI command and the round-trip
tests rely on.

Encoding notes: :class:`~repro.core.state.PathKey` tuples become
``[task, index]`` JSON arrays (as dict keys they appear flattened into a
``[task, index, value]`` triple list), and every float passes through
``repr``-exact JSON so values survive the round trip bit-for-bit.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, Iterable, List, Sequence, TYPE_CHECKING

from repro.core.state import IterationRecord, PathKey
from repro.errors import TelemetryError
from repro.telemetry.tracing import SCHEMA_VERSION, TraceEvent, read_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.trace import TraceSummary

__all__ = [
    "SUPPORTED_SCHEMAS",
    "encode_record",
    "decode_record",
    "supported_events",
    "records_from_trace",
    "records_from_trace_file",
    "recorder_drops_from_trace",
    "summarize_trace_file",
    "event_counts",
]

logger = logging.getLogger(__name__)

#: Schema versions this reader understands: 0 is the PR 1 format (no
#: ``schema`` key on disk), the current version adds spans.
SUPPORTED_SCHEMAS = frozenset({0, SCHEMA_VERSION})


def supported_events(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    """Drop events with an unknown schema version — loudly.

    A future (or corrupt) schema version must not silently misparse into
    wrong diagnostics; unknown-version events are skipped and counted in
    one warning so truncation is visible in logs and CLI output.
    """
    kept: List[TraceEvent] = []
    skipped: Dict[int, int] = {}
    for event in events:
        if event.schema in SUPPORTED_SCHEMAS:
            kept.append(event)
        else:
            skipped[event.schema] = skipped.get(event.schema, 0) + 1
    if skipped:
        detail = ", ".join(
            f"{count} events of schema {version}"
            for version, count in sorted(skipped.items())
        )
        logger.warning(
            "skipping %d trace events with unsupported schema versions "
            "(%s); this reader supports %s",
            sum(skipped.values()), detail, sorted(SUPPORTED_SCHEMAS),
        )
    return kept


def encode_record(record: IterationRecord) -> Dict[str, Any]:
    """JSON-safe dict encoding of one iteration record."""
    return {
        "iteration": int(record.iteration),
        "utility": float(record.utility),
        "latencies": {k: float(v) for k, v in record.latencies.items()},
        "resource_prices": {
            k: float(v) for k, v in record.resource_prices.items()
        },
        "path_prices": [
            [key.task, int(key.index), float(price)]
            for key, price in record.path_prices.items()
        ],
        "resource_loads": {
            k: float(v) for k, v in record.resource_loads.items()
        },
        "congested_resources": list(record.congested_resources),
        "congested_paths": [
            [key.task, int(key.index)] for key in record.congested_paths
        ],
        "critical_paths": {
            k: float(v) for k, v in record.critical_paths.items()
        },
    }


def decode_record(data: Dict[str, Any]) -> IterationRecord:
    """Inverse of :func:`encode_record`."""
    try:
        return IterationRecord(
            iteration=int(data["iteration"]),
            utility=float(data["utility"]),
            latencies=dict(data["latencies"]),
            resource_prices=dict(data["resource_prices"]),
            path_prices={
                PathKey(task, int(index)): price
                for task, index, price in data["path_prices"]
            },
            resource_loads=dict(data["resource_loads"]),
            congested_resources=tuple(data["congested_resources"]),
            congested_paths=tuple(
                PathKey(task, int(index))
                for task, index in data["congested_paths"]
            ),
            critical_paths=dict(data["critical_paths"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TelemetryError(f"malformed iteration event: {exc}") from exc


def records_from_trace(
    events: Iterable[TraceEvent],
) -> List[IterationRecord]:
    """Rebuild the iteration history carried by a stream of events.

    Events with an unsupported schema version are skipped (with a
    counted warning) rather than misparsed.
    """
    return [
        decode_record(event.data)
        for event in supported_events(events)
        if event.kind == "iteration"
    ]


def records_from_trace_file(path: str) -> List[IterationRecord]:
    return records_from_trace(read_trace(path))


#: Metric names that count samples evicted from a bounded recorder
#: window — evictions mean percentile estimates cover a truncated tail.
_RECORDER_DROP_METRICS = (
    "sim.recorder.jobs_dropped_total",
    "sim.recorder.jobsets_dropped_total",
)


def recorder_drops_from_trace(events: Sequence[TraceEvent]) -> int:
    """Total latency-recorder ring-buffer evictions recorded in the
    trace's final ``metrics_snapshot`` (0 when the run had none)."""
    snapshots = [ev for ev in events if ev.kind == "metrics_snapshot"]
    if not snapshots:
        return 0
    metrics = snapshots[-1].data.get("metrics") or {}
    total = 0
    for name in _RECORDER_DROP_METRICS:
        snap = metrics.get(name)
        if isinstance(snap, dict):
            try:
                total += int(float(snap.get("value", 0)))
            except (TypeError, ValueError):
                continue
    return total


def summarize_trace_file(path: str, band: float = 0.5) -> "TraceSummary":
    """Replay a JSONL trace file into a :class:`TraceSummary`.

    Raises :class:`~repro.errors.TelemetryError` when the file holds no
    ``iteration`` events (nothing to summarize).  Recorder ring-buffer
    evictions found in the final metrics snapshot are surfaced on the
    summary so truncated percentile estimates are flagged.
    """
    # Imported lazily: repro.analysis pulls in the optimizer, which itself
    # imports repro.telemetry (instrumentation) — eager import would cycle.
    from repro.analysis.trace import summarize_trace

    events = supported_events(read_trace(path))
    records = records_from_trace(events)
    if not records:
        raise TelemetryError(f"no iteration events in trace {path!r}")
    return summarize_trace(records, band=band,
                           dropped_samples=recorder_drops_from_trace(events))


def event_counts(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """``{kind: count}`` over a trace, sorted by kind."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return dict(sorted(counts.items()))
