"""Trace replay: JSONL events back into optimizer-native structures.

``iteration`` events carry a complete, JSON-safe encoding of the
:class:`~repro.core.state.IterationRecord` the run observed, so a trace
file on disk can be replayed into the exact same
:class:`~repro.analysis.trace.TraceSummary` the in-process history would
produce — the property the ``repro trace`` CLI command and the round-trip
tests rely on.

Encoding notes: :class:`~repro.core.state.PathKey` tuples become
``[task, index]`` JSON arrays (as dict keys they appear flattened into a
``[task, index, value]`` triple list), and every float passes through
``repr``-exact JSON so values survive the round trip bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, TYPE_CHECKING

from repro.core.state import IterationRecord, PathKey
from repro.errors import TelemetryError
from repro.telemetry.tracing import TraceEvent, read_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.trace import TraceSummary

__all__ = [
    "encode_record",
    "decode_record",
    "records_from_trace",
    "records_from_trace_file",
    "summarize_trace_file",
    "event_counts",
]


def encode_record(record: IterationRecord) -> Dict[str, Any]:
    """JSON-safe dict encoding of one iteration record."""
    return {
        "iteration": int(record.iteration),
        "utility": float(record.utility),
        "latencies": {k: float(v) for k, v in record.latencies.items()},
        "resource_prices": {
            k: float(v) for k, v in record.resource_prices.items()
        },
        "path_prices": [
            [key.task, int(key.index), float(price)]
            for key, price in record.path_prices.items()
        ],
        "resource_loads": {
            k: float(v) for k, v in record.resource_loads.items()
        },
        "congested_resources": list(record.congested_resources),
        "congested_paths": [
            [key.task, int(key.index)] for key in record.congested_paths
        ],
        "critical_paths": {
            k: float(v) for k, v in record.critical_paths.items()
        },
    }


def decode_record(data: Dict[str, Any]) -> IterationRecord:
    """Inverse of :func:`encode_record`."""
    try:
        return IterationRecord(
            iteration=int(data["iteration"]),
            utility=float(data["utility"]),
            latencies=dict(data["latencies"]),
            resource_prices=dict(data["resource_prices"]),
            path_prices={
                PathKey(task, int(index)): price
                for task, index, price in data["path_prices"]
            },
            resource_loads=dict(data["resource_loads"]),
            congested_resources=tuple(data["congested_resources"]),
            congested_paths=tuple(
                PathKey(task, int(index))
                for task, index in data["congested_paths"]
            ),
            critical_paths=dict(data["critical_paths"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TelemetryError(f"malformed iteration event: {exc}") from exc


def records_from_trace(
    events: Iterable[TraceEvent],
) -> List[IterationRecord]:
    """Rebuild the iteration history carried by a stream of events."""
    return [
        decode_record(event.data)
        for event in events
        if event.kind == "iteration"
    ]


def records_from_trace_file(path: str) -> List[IterationRecord]:
    return records_from_trace(read_trace(path))


def summarize_trace_file(path: str, band: float = 0.5) -> "TraceSummary":
    """Replay a JSONL trace file into a :class:`TraceSummary`.

    Raises :class:`~repro.errors.TelemetryError` when the file holds no
    ``iteration`` events (nothing to summarize).
    """
    # Imported lazily: repro.analysis pulls in the optimizer, which itself
    # imports repro.telemetry (instrumentation) — eager import would cycle.
    from repro.analysis.trace import summarize_trace

    records = records_from_trace_file(path)
    if not records:
        raise TelemetryError(f"no iteration events in trace {path!r}")
    return summarize_trace(records, band=band)


def event_counts(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """``{kind: count}`` over a trace, sorted by kind."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return dict(sorted(counts.items()))
