"""Metric primitives: counters, gauges, histograms and timers.

The registry is the unit of collection: every metric belongs to exactly
one :class:`MetricsRegistry`, is created lazily by name (get-or-create),
and checks its registry's ``enabled`` flag on every write so a disabled
registry costs one attribute read per operation — cheap enough to leave
instrumentation permanently compiled into the hot paths.

A process-global default registry (:func:`default_registry`) exists for
code that wants ambient metrics without threading a registry through every
constructor; library components, however, always take an explicit
:class:`~repro.telemetry.hub.Telemetry` so tests can isolate collection.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Type, TypeVar

import numpy as np

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
]


class _Metric:
    """Common naming/ownership plumbing for all metric kinds."""

    kind = "metric"
    __slots__ = ("name", "description", "_registry")

    def __init__(self, name: str, description: str = "",
                 registry: Optional["MetricsRegistry"] = None) -> None:
        if not name:
            raise TelemetryError("metric name must be non-empty")
        self.name = name
        self.description = description
        self._registry = registry

    @property
    def enabled(self) -> bool:
        return self._registry is None or self._registry.enabled

    def snapshot(self) -> Dict[str, object]:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


_MetricT = TypeVar("_MetricT", bound=_Metric)


class Counter(_Metric):
    """A monotonically increasing count (messages sent, iterations run)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, description: str = "",
                 registry: Optional["MetricsRegistry"] = None) -> None:
        super().__init__(name, description, registry)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount!r})"
            )
        if self.enabled:
            self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Gauge(_Metric):
    """A point-in-time value (current utility, queue depth, staleness)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, description: str = "",
                 registry: Optional["MetricsRegistry"] = None) -> None:
        super().__init__(name, description, registry)
        self.value = 0.0

    def set(self, value: float) -> None:
        if self.enabled:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self.enabled:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self.enabled:
            self.value -= amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Histogram(_Metric):
    """A distribution with percentile readout.

    Running aggregates (count, sum, min, max) cover *every* observation;
    percentiles are computed over the retained sample window.  With
    ``max_samples`` set, retention is a tail window (a ring buffer of the
    most recent observations) so long runs stay O(1) memory; the number of
    evicted samples is reported as ``dropped``.
    """

    kind = "histogram"
    __slots__ = ("max_samples", "_samples", "count", "sum", "min", "max")

    def __init__(self, name: str, description: str = "",
                 registry: Optional["MetricsRegistry"] = None,
                 max_samples: Optional[int] = None) -> None:
        super().__init__(name, description, registry)
        if max_samples is not None and max_samples < 1:
            raise TelemetryError(
                f"max_samples must be >= 1, got {max_samples!r}"
            )
        self.max_samples = max_samples
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if not self.enabled:
            return
        value = float(value)
        self._samples.append(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def dropped(self) -> int:
        """Observations evicted from the retained window."""
        return self.count - len(self._samples)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, percentile: float) -> Optional[float]:
        """Empirical percentile over the retained window (``None`` when
        no samples have been observed)."""
        if not self._samples:
            return None
        return float(np.percentile(list(self._samples), percentile))

    def values(self) -> List[float]:
        """The retained sample window, oldest first."""
        return list(self._samples)

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "dropped": self.dropped,
        }

    def reset(self) -> None:
        self._samples.clear()
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class _TimerContext:
    """Measures one wall-clock interval into a timer's histogram."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class Timer(Histogram):
    """A histogram of wall-clock durations in seconds."""

    kind = "timer"
    __slots__ = ()

    def time(self) -> _TimerContext:
        """Context manager recording the elapsed wall time on exit."""
        return _TimerContext(self)


class MetricsRegistry:
    """Named collection of metrics with a global enable switch.

    Metrics are created on first access (get-or-create by name); asking
    for an existing name with a different kind raises
    :class:`~repro.errors.TelemetryError`.  Disabling the registry turns
    every metric write into a no-op without detaching any handles.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self.enabled = bool(enabled)

    # -- lifecycle ---------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- access ------------------------------------------------------------------

    def _get_or_create(self, cls: Type[_MetricT], name: str,
                       description: str, **kwargs: Any) -> _MetricT:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls) or metric.kind != cls.kind:
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, requested {cls.kind}"
                )
            return metric
        metric = cls(name, description, registry=self, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(self, name: str, description: str = "",
                  max_samples: Optional[int] = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, description, max_samples=max_samples
        )

    def timer(self, name: str, description: str = "",
              max_samples: Optional[int] = None) -> Timer:
        return self._get_or_create(
            Timer, name, description, max_samples=max_samples
        )

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- readout -----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe dump of every metric, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    def reset(self) -> None:
        """Zero every metric (handles stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every metric (existing handles become orphans)."""
        self._metrics.clear()


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
