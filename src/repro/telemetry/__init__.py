"""Unified telemetry: metrics registry, structured tracing, trace replay.

Three pieces, designed to be threaded through every execution layer of the
reproduction (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.telemetry.metrics` — counters, gauges, histograms with
  percentile readout, and wall-clock timers, collected in a
  :class:`MetricsRegistry` whose writes no-op when disabled;
* :mod:`repro.telemetry.tracing` — a :class:`Tracer` emitting structured
  :class:`TraceEvent` records (JSONL spans/events) to pluggable sinks;
* :mod:`repro.telemetry.replay` — parse a JSONL trace back into
  :class:`~repro.core.state.IterationRecord` objects and summarize it with
  the existing :mod:`repro.analysis.trace` diagnostics.

:class:`Telemetry` bundles one registry and one tracer; every instrumented
constructor accepts ``telemetry=None`` meaning "fully off, near-zero cost".
"""

from repro.telemetry.hub import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    default_registry,
    set_default_registry,
)
from repro.telemetry.prometheus import (
    render_prometheus,
    render_prometheus_snapshot,
)
from repro.telemetry.replay import (
    decode_record,
    encode_record,
    event_counts,
    records_from_trace,
    records_from_trace_file,
    summarize_trace_file,
)
from repro.telemetry.spans import (
    Span,
    SpanContext,
    SpanRecord,
    SpanTracker,
    critical_path,
    format_critical_path,
    spans_from_trace,
)
from repro.telemetry.tracing import (
    SCHEMA_VERSION,
    InMemorySink,
    JsonlFileSink,
    LoggingSink,
    TraceEvent,
    TraceSink,
    Tracer,
    iter_trace,
    read_trace,
)

__all__ = [
    # hub
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    # tracing
    "SCHEMA_VERSION",
    "TraceEvent",
    "TraceSink",
    "InMemorySink",
    "JsonlFileSink",
    "LoggingSink",
    "Tracer",
    "read_trace",
    "iter_trace",
    # spans
    "Span",
    "SpanContext",
    "SpanRecord",
    "SpanTracker",
    "spans_from_trace",
    "critical_path",
    "format_critical_path",
    # prometheus exposition
    "render_prometheus",
    "render_prometheus_snapshot",
    # replay
    "encode_record",
    "decode_record",
    "records_from_trace",
    "records_from_trace_file",
    "summarize_trace_file",
    "event_counts",
]
