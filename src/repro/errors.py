"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A task, subtask graph, utility or share specification is invalid."""


class GraphError(ModelError):
    """A subtask graph violates a structural requirement (acyclicity,
    unique root, connectivity, or dangling subtask references)."""


class UtilityError(ModelError):
    """A utility function is queried outside its valid domain, or its
    specification violates the concavity/monotonicity requirements."""


class ShareError(ModelError):
    """A share function is queried with a non-positive latency or asked to
    produce an infeasible share."""


class OptimizationError(ReproError):
    """The LLA optimizer was configured inconsistently or encountered a
    numerically unrecoverable state."""


class ConvergenceError(OptimizationError):
    """Raised by strict-mode runs when the optimizer fails to converge
    within the allotted iteration budget."""


class InfeasibleWorkloadError(OptimizationError):
    """The workload is not schedulable on the given resources (detected
    either a priori or via the LLA schedulability test)."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class DistributedError(ReproError):
    """A distributed-runtime agent or the message bus failed."""


class TelemetryError(ReproError):
    """A telemetry metric or trace sink was used inconsistently (kind
    mismatch on a registered metric name, emit after close, …)."""


class StaticAnalysisError(ReproError):
    """The statan linter was misused (unknown rule id, unreadable target,
    malformed suppression directive)."""


class DiagnosticsError(ReproError):
    """The convergence-diagnostics engine was misconfigured (invalid
    severity, non-positive window, or a detector fed malformed input)."""


class ServiceError(ReproError):
    """The always-on allocation service was driven into an invalid state
    (unknown task or resource, query against an empty service, or a
    lifecycle violation such as starting a running service)."""


class BreakerOpenError(ServiceError):
    """A circuit breaker is open: the guarded call was short-circuited
    without being attempted (retry after the cooldown)."""


class HarnessError(ReproError):
    """The experiment harness was misused (unknown experiment name,
    duplicate registration, malformed parameter override, or a run
    artifact that does not validate against the RunResult schema)."""
