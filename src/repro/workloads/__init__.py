"""Workloads: the paper's experimental task sets plus a random generator."""

from repro.workloads.paper import (
    TABLE1_CRITICAL_PATHS,
    TABLE1_CRITICAL_TIMES,
    TABLE1_LATENCIES,
    TABLE1_SUBTASKS,
    WORKLOAD_FACTORIES,
    base_workload,
    make_workload,
    prototype_workload,
    scaled_workload,
    unschedulable_workload,
    workload_names,
)

__all__ = [
    "base_workload",
    "scaled_workload",
    "unschedulable_workload",
    "prototype_workload",
    "WORKLOAD_FACTORIES",
    "workload_names",
    "make_workload",
    "TABLE1_SUBTASKS",
    "TABLE1_LATENCIES",
    "TABLE1_CRITICAL_TIMES",
    "TABLE1_CRITICAL_PATHS",
]

from repro.workloads.generator import GeneratorConfig, random_graph, random_workload

__all__ += ["GeneratorConfig", "random_workload", "random_graph"]
