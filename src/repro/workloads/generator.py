"""Random workload generation for property tests and scaling studies.

Generates structurally valid, optionally schedulability-provisioned task
sets: random DAG subtask graphs (chain / fan-out tree / diamond / layered
random), random resource mappings respecting the paper's
one-resource-per-subtask-per-task rule, and critical times provisioned so
that an even slicing of the deadline would load every resource to at most a
target fraction — which guarantees a feasible point exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.model.events import PeriodicEvent
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource, ResourceKind
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import LinearUtility

__all__ = ["GeneratorConfig", "random_workload", "random_graph"]

_SHAPES = ("chain", "tree", "diamond", "layered")


@dataclass
class GeneratorConfig:
    """Knobs of the random workload generator."""

    n_tasks: int = 4
    n_resources: int = 6
    min_subtasks: int = 3
    max_subtasks: int = 6
    exec_time_range: Tuple[float, float] = (1.0, 8.0)
    lag: float = 1.0
    availability: float = 1.0
    period: float = 100.0
    #: Target per-resource load under even deadline slicing; < 1 guarantees
    #: a feasible assignment exists.
    provisioning: float = 0.8
    shapes: Sequence[str] = _SHAPES
    variant: str = "path-weighted"
    utility_k: float = 2.0
    #: When set, the resource pool is split into this many disjoint groups
    #: and each task draws all its resources from one group (round-robin
    #: by task index).  The task↔resource incidence graph then has exactly
    #: ``partitions`` connected components — the separable regime the
    #: sharded engine (:mod:`repro.core.sharding`) exploits.
    partitions: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate at construction (REP008); :meth:`validate` stays public
        for callers that mutate a config after building it."""
        self.validate()

    def validate(self) -> None:
        if self.n_tasks < 1:
            raise ModelError("n_tasks must be >= 1")
        if self.n_resources < 1:
            raise ModelError("n_resources must be >= 1")
        if not 1 <= self.min_subtasks <= self.max_subtasks:
            raise ModelError("need 1 <= min_subtasks <= max_subtasks")
        if self.max_subtasks > self.n_resources:
            raise ModelError(
                "max_subtasks cannot exceed n_resources (each subtask of a "
                "task must use a distinct resource)"
            )
        lo, hi = self.exec_time_range
        if not 0.0 < lo <= hi:
            raise ModelError(f"bad exec_time_range {self.exec_time_range!r}")
        if not 0.0 < self.provisioning:
            raise ModelError("provisioning must be positive")
        unknown = set(self.shapes) - set(_SHAPES)
        if unknown:
            raise ModelError(f"unknown graph shapes {sorted(unknown)!r}")
        if self.partitions is not None:
            if self.partitions < 1:
                raise ModelError("partitions must be >= 1")
            if self.n_resources // self.partitions < self.max_subtasks:
                raise ModelError(
                    "each partition needs at least max_subtasks resources "
                    f"({self.n_resources} resources / {self.partitions} "
                    f"partitions < {self.max_subtasks})"
                )


def random_graph(names: Sequence[str], shape: str,
                 rng: np.random.Generator) -> SubtaskGraph:
    """A random DAG of the requested shape over ``names`` (root = first)."""
    n = len(names)
    if n == 1:
        return SubtaskGraph.single(names[0])
    edges: List[Tuple[str, str]] = []
    if shape == "chain":
        edges = list(zip(names, names[1:]))
    elif shape == "tree":
        # Every non-root node attaches to a uniformly random earlier node.
        for i in range(1, n):
            parent = int(rng.integers(0, i))
            edges.append((names[parent], names[i]))
    elif shape == "diamond":
        # Root fans out to a middle layer which joins at the last node.
        middle = names[1:-1] or [names[1]]
        for m in middle:
            edges.append((names[0], m))
            if m != names[-1]:
                edges.append((m, names[-1]))
    elif shape == "layered":
        # 2–3 layers; each node gets >= 1 parent from the previous layer.
        n_layers = min(n - 1, int(rng.integers(2, 4)))
        cut_points = sorted(
            rng.choice(range(1, n), size=n_layers - 1, replace=False)
        ) if n_layers > 1 else []
        layers: List[List[str]] = []
        prev = 1
        layers.append([names[0]])
        for cut in list(cut_points) + [n]:
            layer = list(names[prev:cut + 1] if cut != n else names[prev:])
            prev = cut + 1 if cut != n else n
            if layer:
                layers.append(layer)
        for upper, lower in zip(layers, layers[1:]):
            for node in lower:
                parent = upper[int(rng.integers(0, len(upper)))]
                edges.append((parent, node))
    else:
        raise ModelError(f"unknown graph shape {shape!r}")
    return SubtaskGraph(names, edges)


def random_workload(config: Optional[GeneratorConfig] = None,
                    seed: int = 0) -> TaskSet:
    """Generate a random, provisioned task set.

    Critical times are set per task so that, if each resource's subtasks
    all took their even-slicing latency, the resource load would be at most
    ``config.provisioning`` — so a feasible latency assignment provably
    exists whenever ``provisioning <= availability``.
    """
    config = config or GeneratorConfig()
    config.validate()
    rng = np.random.default_rng(seed)

    # Names are zero-padded to the pool width so lexicographic order equals
    # numeric order: compile_structure's canonical (name-sorted) ordering
    # then matches the declaration order, keeping the scalar and vectorized
    # backends' iteration orders — and therefore their float trajectories —
    # identical.  Small configs (< 11 tasks/resources) keep their old names.
    t_width = len(str(config.n_tasks - 1))
    r_width = len(str(config.n_resources - 1))
    s_width = len(str(config.max_subtasks - 1))
    resources = [
        Resource(
            name=f"r{i:0{r_width}d}",
            kind=ResourceKind.CPU if i % 2 == 0 else ResourceKind.LINK,
            availability=config.availability,
            lag=config.lag,
        )
        for i in range(config.n_resources)
    ]

    # First pass: random structures.
    drafts = []
    for t in range(config.n_tasks):
        n_subtasks = int(
            rng.integers(config.min_subtasks, config.max_subtasks + 1)
        )
        names = [f"G{t:0{t_width}d}_{j:0{s_width}d}" for j in range(n_subtasks)]
        shape = str(rng.choice(list(config.shapes)))
        graph = random_graph(names, shape, rng)
        if config.partitions is None:
            pool = np.arange(config.n_resources)
        else:
            # Confine the task to its round-robin partition's resources.
            group = config.n_resources // config.partitions
            start = (t % config.partitions) * group
            pool = np.arange(start, start + group)
        resource_ids = rng.choice(pool, size=n_subtasks, replace=False)
        lo, hi = config.exec_time_range
        exec_times = rng.uniform(lo, hi, size=n_subtasks)
        subtasks = [
            Subtask(
                name=names[j],
                resource=f"r{int(resource_ids[j]):0{r_width}d}",
                exec_time=float(exec_times[j]),
            )
            for j in range(n_subtasks)
        ]
        drafts.append((f"G{t:0{t_width}d}", subtasks, graph))

    # Second pass: critical times from the provisioning target.  Under even
    # slicing, subtask s of task i gets C_i / depth_s; its share is
    # cost_s × depth_s / C_i.  Choose C_i so every resource's total is at
    # most `provisioning`.
    # Resource pressure if every task had C_i = 1: share = cost×depth/C.
    pressure: Dict[str, float] = {r.name: 0.0 for r in resources}
    for tname, subtasks, graph in drafts:
        hops: Dict[str, int] = {}
        for path in graph.paths:
            for s in path:
                hops[s] = max(hops.get(s, 0), len(path))
        for sub in subtasks:
            cost = sub.exec_time + config.lag
            pressure[sub.resource] += cost * hops[sub.name]

    max_pressure = max(pressure.values()) if pressure else 1.0
    # One shared critical-time scale keeps tasks comparable: C = scale.
    scale = max_pressure / config.provisioning

    tasks = []
    for tname, subtasks, graph in drafts:
        critical = float(scale)
        tasks.append(
            Task(
                name=tname,
                subtasks=subtasks,
                graph=graph,
                critical_time=critical,
                utility=LinearUtility(critical, k=config.utility_k),
                variant=config.variant,
                trigger=PeriodicEvent(config.period),
            )
        )
    return TaskSet(tasks, resources)
