"""The paper's experimental workloads (Sections 5.1, 5.3, 5.4, 6.2).

Calibration note (see DESIGN.md): Table 1's reported optimum satisfies
``Σ (c_s + 1)/lat_s ≈ 1.000`` on all eight resources, which pins the
simulation parameters to lag ``l_r = 1 ms`` and availability ``B_r = 1``.
The exact subtask-graph topologies of Figure 4 are not fully specified in
the text; the graphs below are reconstructed from the narrative:

* **Task 1** — push (publish/subscribe / multicast): a producer fans out
  through intermediate stages to the interested leaves.
* **Task 2** — complex pull (sensor aggregation / RSS): a request/aggregate
  chain followed by distribution to several consumers.
* **Task 3** — simple pull (client/server): a six-stage pipeline.  The six
  Table 1 latencies of task 3 sum to exactly its reported 52.8 ms critical
  path, confirming the chain topology.

All three tasks are triggered by periodic events every 100 ms; critical
times are 45, 76 and 53 ms.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.model.events import PeriodicEvent
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource, ResourceKind
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import LinearUtility

__all__ = [
    "TABLE1_SUBTASKS",
    "TABLE1_LATENCIES",
    "TABLE1_CRITICAL_TIMES",
    "TABLE1_CRITICAL_PATHS",
    "base_workload",
    "scaled_workload",
    "unschedulable_workload",
    "prototype_workload",
    "PROTOTYPE_FAST_MIN_SHARE",
    "PROTOTYPE_SLOW_MIN_SHARE",
    "WORKLOAD_FACTORIES",
    "workload_names",
    "make_workload",
]

#: Resource lag implied by Table 1 (ms).
PAPER_LAG = 1.0
#: Resource availability implied by Table 1.
PAPER_AVAILABILITY = 1.0
#: Trigger period of all simulation tasks (ms).
PAPER_PERIOD = 100.0

#: Table 1, rows "Resource" and "Exec time": subtask -> (resource index, WCET ms).
TABLE1_SUBTASKS: Dict[str, Tuple[int, float]] = {
    "T11": (0, 2.0), "T12": (1, 3.0), "T13": (2, 4.0), "T14": (3, 5.0),
    "T15": (4, 4.0), "T16": (5, 3.0), "T17": (6, 2.0),
    "T21": (0, 2.0), "T22": (1, 4.0), "T23": (2, 3.0), "T24": (4, 6.0),
    "T25": (5, 7.0), "T26": (6, 5.0), "T27": (3, 2.0), "T28": (7, 3.0),
    "T31": (0, 3.0), "T32": (1, 2.0), "T33": (2, 2.0), "T34": (4, 3.0),
    "T35": (6, 4.0), "T36": (7, 4.0),
}

#: Table 1, row "Latency": the paper's converged per-subtask latencies (ms).
TABLE1_LATENCIES: Dict[str, float] = {
    "T11": 9.7, "T12": 13.8, "T13": 19.5, "T14": 14.4, "T15": 21.4,
    "T16": 10.5, "T17": 19.2,
    "T21": 10.3, "T22": 15.0, "T23": 15.1, "T24": 19.3, "T25": 12.8,
    "T26": 16.6, "T27": 5.1, "T28": 9.3,
    "T31": 9.9, "T32": 7.9, "T33": 6.2, "T34": 9.8, "T35": 10.3, "T36": 8.7,
}

#: Table 1, row "Crit.Time" (ms).
TABLE1_CRITICAL_TIMES: Dict[str, float] = {"T1": 45.0, "T2": 76.0, "T3": 53.0}

#: Table 1, row "Crit.Path": the paper's converged critical paths (ms).
TABLE1_CRITICAL_PATHS: Dict[str, float] = {"T1": 44.9, "T2": 75.6, "T3": 52.8}

#: Reconstructed Figure 4 precedence edges.
_TASK1_EDGES = [
    ("T11", "T12"), ("T11", "T13"), ("T11", "T14"),
    ("T12", "T15"), ("T12", "T16"),
    ("T13", "T17"), ("T14", "T17"),
]
_TASK2_EDGES = [
    ("T21", "T22"), ("T22", "T23"), ("T23", "T24"),
    ("T24", "T25"), ("T24", "T26"),
    ("T24", "T27"), ("T27", "T28"),
]
_TASK3_EDGES = [
    ("T31", "T32"), ("T32", "T33"), ("T33", "T34"),
    ("T34", "T35"), ("T35", "T36"),
]

_TASK_SPECS = {
    "T1": ([n for n in TABLE1_SUBTASKS if n.startswith("T1")], _TASK1_EDGES),
    "T2": ([n for n in TABLE1_SUBTASKS if n.startswith("T2")], _TASK2_EDGES),
    "T3": ([n for n in TABLE1_SUBTASKS if n.startswith("T3")], _TASK3_EDGES),
}


def _resources(count: int = 8, availability: float = PAPER_AVAILABILITY,
               lag: float = PAPER_LAG) -> List[Resource]:
    """The simulation's eight resources.

    The paper mixes CPU and network-bandwidth resources (each subtask
    consumes exactly one); even indices are modeled as CPUs and odd ones as
    links — the optimizer treats both identically.
    """
    return [
        Resource(
            name=f"r{i}",
            kind=ResourceKind.CPU if i % 2 == 0 else ResourceKind.LINK,
            availability=availability,
            lag=lag,
        )
        for i in range(count)
    ]


def _build_task(
    name: str,
    subtask_names: Sequence[str],
    edges: Sequence[Tuple[str, str]],
    critical_time: float,
    variant: str,
    k: float,
    rename: Optional[Dict[str, str]] = None,
) -> Task:
    rename = rename or {}
    subtasks = []
    for sname in subtask_names:
        resource_idx, exec_time = TABLE1_SUBTASKS[sname]
        subtasks.append(
            Subtask(
                name=rename.get(sname, sname),
                resource=f"r{resource_idx}",
                exec_time=exec_time,
            )
        )
    graph = SubtaskGraph(
        [rename.get(n, n) for n in subtask_names],
        [(rename.get(a, a), rename.get(b, b)) for a, b in edges],
    )
    return Task(
        name=name,
        subtasks=subtasks,
        graph=graph,
        critical_time=critical_time,
        utility=LinearUtility(critical_time, k=k),
        variant=variant,
        trigger=PeriodicEvent(PAPER_PERIOD),
    )


def base_workload(variant: str = "path-weighted", k: float = 2.0) -> TaskSet:
    """The Section 5.1 three-task workload with Table 1 parameters.

    Every resource is close to congestion at the optimum: the sum of the
    converged shares on each resource is ≈ ``B_r`` — the paper's stated
    lower bound for LLA's performance on schedulable workloads.
    """
    tasks = [
        _build_task(tname, names, edges, TABLE1_CRITICAL_TIMES[tname],
                    variant, k)
        for tname, (names, edges) in _TASK_SPECS.items()
    ]
    return TaskSet(tasks, _resources())


def scaled_workload(copies: int, critical_time_factor: float = 20.0,
                    variant: str = "path-weighted", k: float = 2.0) -> TaskSet:
    """The Section 5.3 scalability workloads.

    Clones each base task ``copies`` times with identical characteristics
    (subtasks, parameters, graph, resource mapping) — copies of the same
    task contend for the same resources.  Schedulability is maintained by
    overprovisioning: every critical time is multiplied by
    ``critical_time_factor`` (the paper "sets a high enough critical time
    for each task in all three workloads"), which also inflates the
    utility, producing the linear utility-vs-task-count growth of Figure 6.

    The default factor of 20 puts even the 12-task workload in the
    overprovisioned regime where path constraints are slack and latencies
    pin at the minimum-rate-share bound; there per-task utility is
    independent of the task count, making total utility exactly linear —
    the paper's Figure 6 claim.  (At small factors the tasks contend, the
    aggregate-latency term grows quadratically with the count, and the
    claim degrades.)

    ``copies = 1/2/4`` gives the paper's 3/6/12-task workloads.

    Tasks are declared in name-sorted order (T1, T1c1, …, T2, …) — the
    canonical order :func:`repro.core.structure.compile_structure` uses —
    so the scalar and vectorized backends iterate the clones identically
    and their trajectories stay bitwise-equal.
    """
    if copies < 1:
        raise ModelError(f"copies must be >= 1, got {copies!r}")
    if critical_time_factor <= 0.0:
        raise ModelError(
            f"critical_time_factor must be positive, got {critical_time_factor!r}"
        )
    tasks = []
    for copy in range(copies):
        for tname, (names, edges) in _TASK_SPECS.items():
            suffix = "" if copy == 0 else f"c{copy}"
            rename = {n: f"{n}{suffix}" for n in names} if suffix else None
            tasks.append(
                _build_task(
                    f"{tname}{suffix}",
                    names,
                    edges,
                    TABLE1_CRITICAL_TIMES[tname] * critical_time_factor,
                    variant,
                    k,
                    rename=rename,
                )
            )
    tasks.sort(key=lambda t: t.name)
    return TaskSet(tasks, _resources())


def unschedulable_workload(copies: int = 2, variant: str = "path-weighted",
                           k: float = 2.0) -> TaskSet:
    """The Section 5.4 schedulability-test workload.

    The scaled six-task workload *without* scaling the critical times: the
    resources cannot support six tasks at the original deadlines, so LLA
    must fail to converge (Figure 7) with critical-path latencies well
    above the constraints.
    """
    return scaled_workload(copies, critical_time_factor=1.0,
                           variant=variant, k=k)


# -- Section 6 prototype workload -------------------------------------------------

#: Prototype parameters (Section 6.2).
PROTOTYPE_LAG = 5.0           # ms of PS scheduling lag
PROTOTYPE_GC_SHARE = 0.1      # share reserved for the Metronome collector
PROTOTYPE_FAST_WCET = 5.0     # ms
PROTOTYPE_SLOW_WCET = 13.0    # ms
PROTOTYPE_FAST_RATE = 40.0 / 1000.0   # arrivals per ms (40/second)
PROTOTYPE_SLOW_RATE = 10.0 / 1000.0   # arrivals per ms (10/second)
PROTOTYPE_FAST_CRITICAL = 105.0       # ms
PROTOTYPE_SLOW_CRITICAL = 800.0       # ms
#: Minimum rate shares (rate × WCET): 0.2 fast, 0.13 slow.
PROTOTYPE_FAST_MIN_SHARE = PROTOTYPE_FAST_RATE * PROTOTYPE_FAST_WCET
PROTOTYPE_SLOW_MIN_SHARE = PROTOTYPE_SLOW_RATE * PROTOTYPE_SLOW_WCET


def prototype_workload(variant: str = "sum") -> TaskSet:
    """The Section 6.2 prototype workload.

    Four tasks of three linearly-dependent subtasks each, spread over three
    CPUs so every CPU hosts one subtask of every task.  Tasks 1–2 ("fast")
    have 5 ms WCETs, 40/s periodic arrivals and a 105 ms critical time;
    tasks 3–4 ("slow") have 13 ms WCETs, 10/s arrivals and 800 ms.  All use
    the utility ``f_i(lat) = -lat``.  Each CPU reserves a 0.1 share for the
    garbage collector, leaving ``B_r = 0.9``.
    """
    cpus = [
        Resource(name=f"cpu{i}", kind=ResourceKind.CPU,
                 availability=1.0 - PROTOTYPE_GC_SHARE, lag=PROTOTYPE_LAG)
        for i in range(3)
    ]
    tasks = []
    specs = [
        ("fast1", PROTOTYPE_FAST_WCET, PROTOTYPE_FAST_RATE,
         PROTOTYPE_FAST_CRITICAL),
        ("fast2", PROTOTYPE_FAST_WCET, PROTOTYPE_FAST_RATE,
         PROTOTYPE_FAST_CRITICAL),
        ("slow1", PROTOTYPE_SLOW_WCET, PROTOTYPE_SLOW_RATE,
         PROTOTYPE_SLOW_CRITICAL),
        ("slow2", PROTOTYPE_SLOW_WCET, PROTOTYPE_SLOW_RATE,
         PROTOTYPE_SLOW_CRITICAL),
    ]
    for tname, wcet, rate, critical in specs:
        names = [f"{tname}_s{i}" for i in range(3)]
        subtasks = [
            Subtask(name=names[i], resource=f"cpu{i}", exec_time=wcet)
            for i in range(3)
        ]
        tasks.append(
            Task(
                name=tname,
                subtasks=subtasks,
                graph=SubtaskGraph.chain(names),
                critical_time=critical,
                utility=LinearUtility(critical, k=0.0),
                variant=variant,
                trigger=PeriodicEvent(1.0 / rate),
            )
        )
    return TaskSet(tasks, cpus)


# -- canonical workload registry --------------------------------------------

def _scaled_default() -> TaskSet:
    """The ``scaled`` CLI workload: the base workload cloned ×2."""
    return scaled_workload(2)


#: Canonical name → zero-argument factory for every built-in workload.
#: Shared by ``repro export-workload`` and the experiment harness so the
#: two never drift apart.
WORKLOAD_FACTORIES: Dict[str, Callable[[], TaskSet]] = {
    "base": base_workload,
    "scaled": _scaled_default,
    "unschedulable": unschedulable_workload,
    "prototype": prototype_workload,
}


def workload_names() -> Tuple[str, ...]:
    """All registered workload names, sorted."""
    return tuple(sorted(WORKLOAD_FACTORIES))


def make_workload(name: str) -> TaskSet:
    """Build a registered workload by name."""
    try:
        factory = WORKLOAD_FACTORIES[name]
    except KeyError:
        known = ", ".join(workload_names())
        raise ModelError(
            f"unknown workload {name!r} (known: {known})"
        ) from None
    return factory()
