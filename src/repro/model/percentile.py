"""Latency-percentile composition (Section 2.1).

The paper supports utility computed from a chosen percentile of individual
latencies instead of the worst case.  Its key observation: for two subtasks
``a`` and ``b`` with the same number of released jobs, the sum of their
``p``-th percentile latency bounds ``lat_a^p + lat_b^p`` bounds the
``p²/100``-th percentile of the path latency — percentiles *compose
multiplicatively* along a path (treating per-subtask tail events as
independent).  Consequently, to compute utility at the task's ``p``-th
percentile over a path of length ``n``, each subtask must use its

    q = p^(1/n) × 100^((n-1)/n)

percentile bound, so that ``(q/100)^n = p/100``.

These helpers are pure math on percentile values; the simulator's metrics
module produces empirical percentile estimates to plug into them.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ModelError

__all__ = [
    "compose_percentiles",
    "subtask_percentile",
    "path_percentile",
    "per_subtask_percentiles",
]


def _check_percentile(p: float, name: str = "percentile") -> None:
    if not 0.0 < p <= 100.0:
        raise ModelError(f"{name} must be in (0, 100], got {p!r}")


def compose_percentiles(p_a: float, p_b: float) -> float:
    """Percentile guaranteed for the sum of two per-subtask bounds.

    The paper's example: two ``p``-th percentile bounds sum to a
    ``p²/100``-th percentile bound.  Generalized to distinct percentiles:
    ``p_a × p_b / 100``.
    """
    _check_percentile(p_a, "p_a")
    _check_percentile(p_b, "p_b")
    return p_a * p_b / 100.0


def path_percentile(per_subtask: Sequence[float]) -> float:
    """Percentile guaranteed for a path from its subtasks' percentiles.

    Folds :func:`compose_percentiles` along the path: the product of the
    per-subtask quantile fractions.
    """
    if not per_subtask:
        raise ModelError("path must contain at least one subtask percentile")
    result = 100.0
    for p in per_subtask:
        result = compose_percentiles(result, p)
    return result


def subtask_percentile(task_percentile: float, path_length: int) -> float:
    """Per-subtask percentile achieving a task percentile over a path.

    The paper's formula ``p^(1/n) × 100^((n-1)/n)``: the unique uniform
    per-subtask percentile ``q`` with ``(q/100)^n = p/100``.
    """
    _check_percentile(task_percentile, "task_percentile")
    if path_length < 1:
        raise ModelError(f"path_length must be >= 1, got {path_length!r}")
    n = float(path_length)
    q = (task_percentile ** (1.0 / n)) * (100.0 ** ((n - 1.0) / n))
    # Floating-point pow can land a hair above 100 for p = 100.
    return min(q, 100.0)


def per_subtask_percentiles(task_percentile: float,
                            path_lengths: Sequence[int]) -> Dict[int, float]:
    """Per-path-length subtask percentiles for a task with unequal paths.

    Section 2.1 notes that if path lengths are not identical, separate
    latency (percentile) functions must be used depending on the path.
    Returns ``{path_length: per-subtask percentile}`` for each distinct
    length, so a subtask on an ``n``-long path uses the ``n`` entry.
    """
    if not path_lengths:
        raise ModelError("need at least one path length")
    return {
        n: subtask_percentile(task_percentile, n)
        for n in sorted(set(path_lengths))
    }
