"""Utility functions mapping end-to-end latency to application benefit.

The paper (Section 2.1, Figure 2) expresses timeliness constraints through
*time-utility functions* in the style of Jensen et al.: non-increasing
functions of job-set latency, bounded by a *critical time* beyond which the
latency may not extend regardless of utility.

Two families are distinguished:

* **Elastic** utilities (left of Figure 2) decrease smoothly with latency and
  permit trade-offs between benefit and resource consumption.  LLA requires
  these to be concave and continuously differentiable below the critical
  time.
* **Inelastic** utilities (right of Figure 2) are step functions — full
  benefit before the deadline, none after — and constrain resources without
  permitting trade-offs.  They are handled by LLA as a constant-utility
  elastic function combined with the critical-time constraint.

The task-level utility is computed from subtask latencies through one of two
*aggregation variants* (Section 3.2): ``sum`` (unweighted sum of subtask
latencies) or ``path-weighted`` (each subtask weighted by the number of
root-to-leaf paths it belongs to).  Aggregation lives in
:class:`repro.model.task.Task`; this module only defines the scalar maps
``f_i`` and their derivatives.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import UtilityError

__all__ = [
    "UtilityFunction",
    "LinearUtility",
    "LogUtility",
    "QuadraticUtility",
    "ExponentialUtility",
    "InelasticUtility",
    "check_concavity",
]


class UtilityFunction(ABC):
    """A scalar, non-increasing map from (aggregated) latency to benefit.

    Implementations must be concave and continuously differentiable on
    ``(0, critical_time)``; LLA's convergence argument relies on both
    properties (Section 4.2).
    """

    @abstractmethod
    def value(self, latency: float) -> float:
        """Benefit obtained when the aggregated latency equals ``latency``."""

    @abstractmethod
    def derivative(self, latency: float) -> float:
        """First derivative of :meth:`value` at ``latency`` (non-positive)."""

    def is_elastic(self) -> bool:
        """Whether the function permits benefit/latency trade-offs.

        Elastic functions have a strictly negative derivative somewhere;
        inelastic ones are flat up to the deadline.
        """
        return True

    def _require_positive(self, latency: float) -> None:
        if latency < 0.0:
            raise UtilityError(
                f"utility queried at negative latency {latency!r}"
            )


class LinearUtility(UtilityFunction):
    """The paper's experimental utility ``f_i(lat) = k*C_i - lat``.

    Section 5.2 uses ``k = 2`` (with ``k >= 1`` keeping utility positive at
    the critical time) and notes other values of ``k`` (and other concave
    shapes) yield similar results.  The Section 6 prototype uses
    ``f_i(lat) = -lat``, i.e. ``k = 0``.  ``slope`` generalizes the unit
    decay rate: ``f(lat) = k*C - slope*lat``.
    """

    def __init__(self, critical_time: float, k: float = 2.0, slope: float = 1.0) -> None:
        if critical_time <= 0.0:
            raise UtilityError(f"critical time must be positive, got {critical_time}")
        if k < 0.0:
            raise UtilityError(f"k must be non-negative, got {k}")
        if slope <= 0.0:
            raise UtilityError(f"slope must be positive, got {slope}")
        self.critical_time = float(critical_time)
        self.k = float(k)
        self.slope = float(slope)

    def value(self, latency: float) -> float:
        self._require_positive(latency)
        return self.k * self.critical_time - self.slope * latency

    def derivative(self, latency: float) -> float:
        self._require_positive(latency)
        return -self.slope

    def __repr__(self) -> str:
        return (
            f"LinearUtility(critical_time={self.critical_time}, "
            f"k={self.k}, slope={self.slope})"
        )


class LogUtility(UtilityFunction):
    """Logarithmic utility of deadline slack:
    ``f(lat) = scale * log(1 + (C - lat) / softness)``.

    Concave and strictly decreasing: the marginal benefit of extra slack
    shrinks the more slack the task already has, and the marginal *cost* of
    latency explodes as the latency approaches ``C + softness`` — a smooth
    interpolation between the paper's elastic and inelastic shapes.  (Note
    that the rate-control classic ``log(C/lat)`` is *convex* in latency and
    therefore unusable here; concavity must hold in the latency domain.)
    """

    def __init__(self, critical_time: float, scale: float = 1.0,
                 softness: float | None = None) -> None:
        if critical_time <= 0.0:
            raise UtilityError(f"critical time must be positive, got {critical_time}")
        if scale <= 0.0:
            raise UtilityError(f"scale must be positive, got {scale}")
        self.critical_time = float(critical_time)
        self.scale = float(scale)
        self.softness = float(softness) if softness is not None \
            else critical_time / 10.0
        if self.softness <= 0.0:
            raise UtilityError(f"softness must be positive, got {softness}")

    #: Below this slack argument the log is linearly extended (first-order
    #: Taylor), keeping the function finite, concave and differentiable for
    #: any latency — numeric solvers may evaluate far beyond the deadline.
    _EXTENSION_EPS = 0.05

    def _slack_arg(self, latency: float) -> float:
        return 1.0 + (self.critical_time - latency) / self.softness

    def value(self, latency: float) -> float:
        self._require_positive(latency)
        arg = self._slack_arg(latency)
        eps = self._EXTENSION_EPS
        if arg >= eps:
            return self.scale * math.log(arg)
        return self.scale * (math.log(eps) + (arg - eps) / eps)

    def derivative(self, latency: float) -> float:
        self._require_positive(latency)
        arg = max(self._slack_arg(latency), self._EXTENSION_EPS)
        return -self.scale / (self.softness * arg)

    def __repr__(self) -> str:
        return (
            f"LogUtility(critical_time={self.critical_time}, "
            f"scale={self.scale}, softness={self.softness})"
        )


class QuadraticUtility(UtilityFunction):
    """Concave quadratic ``f(lat) = u_max - a*lat**2`` (non-increasing on
    ``lat >= 0``).  Penalizes long latencies progressively harder, modelling
    SLAs where lateness cost accelerates.
    """

    def __init__(self, critical_time: float, u_max: float | None = None,
                 a: float | None = None) -> None:
        if critical_time <= 0.0:
            raise UtilityError(f"critical time must be positive, got {critical_time}")
        self.critical_time = float(critical_time)
        # Default calibration: zero utility exactly at the critical time.
        self.a = float(a) if a is not None else 1.0 / critical_time
        if self.a <= 0.0:
            raise UtilityError(f"curvature a must be positive, got {self.a}")
        self.u_max = float(u_max) if u_max is not None else self.a * critical_time ** 2

    def value(self, latency: float) -> float:
        self._require_positive(latency)
        return self.u_max - self.a * latency ** 2

    def derivative(self, latency: float) -> float:
        self._require_positive(latency)
        return -2.0 * self.a * latency

    def __repr__(self) -> str:
        return (
            f"QuadraticUtility(critical_time={self.critical_time}, "
            f"u_max={self.u_max}, a={self.a})"
        )


class ExponentialUtility(UtilityFunction):
    """Exponential decay ``f(lat) = u_max * exp(-lat / tau)``.

    Note this function is *convex*, not concave; it is provided for the
    model-error sensitivity ablations and is rejected by strict optimizer
    configurations (see :func:`check_concavity`).
    """

    def __init__(self, critical_time: float, u_max: float = 1.0,
                 tau: float | None = None) -> None:
        if critical_time <= 0.0:
            raise UtilityError(f"critical time must be positive, got {critical_time}")
        self.critical_time = float(critical_time)
        self.u_max = float(u_max)
        self.tau = float(tau) if tau is not None else critical_time / 3.0
        if self.tau <= 0.0:
            raise UtilityError(f"tau must be positive, got {self.tau}")

    def value(self, latency: float) -> float:
        self._require_positive(latency)
        return self.u_max * math.exp(-latency / self.tau)

    def derivative(self, latency: float) -> float:
        self._require_positive(latency)
        return -(self.u_max / self.tau) * math.exp(-latency / self.tau)

    def __repr__(self) -> str:
        return (
            f"ExponentialUtility(critical_time={self.critical_time}, "
            f"u_max={self.u_max}, tau={self.tau})"
        )


class InelasticUtility(UtilityFunction):
    """Hard real-time step utility (right of Figure 2).

    Yields ``u_max`` for latency at or below the critical time and zero
    beyond it.  The derivative is zero everywhere it exists; LLA treats an
    inelastic task purely through its critical-time constraint — the task
    claims exactly the resources needed to meet its deadline and exerts no
    marginal pull on latency below it.
    """

    def __init__(self, critical_time: float, u_max: float = 1.0) -> None:
        if critical_time <= 0.0:
            raise UtilityError(f"critical time must be positive, got {critical_time}")
        if u_max < 0.0:
            raise UtilityError(f"u_max must be non-negative, got {u_max}")
        self.critical_time = float(critical_time)
        self.u_max = float(u_max)

    def value(self, latency: float) -> float:
        self._require_positive(latency)
        return self.u_max if latency <= self.critical_time else 0.0

    def derivative(self, latency: float) -> float:
        self._require_positive(latency)
        return 0.0

    def is_elastic(self) -> bool:
        return False

    def __repr__(self) -> str:
        return (
            f"InelasticUtility(critical_time={self.critical_time}, "
            f"u_max={self.u_max})"
        )


def check_concavity(fn: UtilityFunction, lo: float, hi: float,
                    samples: int = 64, tol: float = 1e-9) -> bool:
    """Numerically check concavity of ``fn`` on ``[lo, hi]``.

    Samples the derivative on a uniform grid and verifies it is
    non-increasing (a differentiable function is concave iff its derivative
    is non-increasing).  Used by strict optimizer configurations to reject
    utilities that would break the dual-decomposition convergence argument.
    """
    if not lo < hi:
        raise UtilityError(f"invalid concavity-check interval [{lo}, {hi}]")
    step = (hi - lo) / (samples - 1)
    previous = fn.derivative(lo)
    for i in range(1, samples):
        current = fn.derivative(lo + i * step)
        if current > previous + tol:
            return False
        previous = current
    return True
