"""Network topologies: building task sets from physical deployments.

The paper's context is "a distributed system composed of nodes
interconnected by links.  Each node and link provides a set of resources"
(Section 2) — computation runs on node CPUs and communication consumes
link bandwidth, both modeled uniformly as subtasks.

This module provides that deployment layer on top of :mod:`networkx`:

* :class:`NetworkTopology` — nodes (CPU resources) and links (bandwidth
  resources) as an undirected graph;
* :meth:`NetworkTopology.deploy_pipeline` — place a computation pipeline
  onto a sequence of nodes: each computation stage becomes a CPU subtask
  on its node, and each hop between consecutive nodes is routed along the
  shortest path, generating one LINK subtask per traversed link;
* :meth:`NetworkTopology.build_taskset` — collect deployed tasks into a
  :class:`~repro.model.task.TaskSet` over the topology's resources.

The result is a workload in which a single physical link shared by
several flows becomes a contended resource the optimizer must price —
exactly the program-trading bandwidth story of the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import ModelError
from repro.model.events import TriggeringEvent
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource, ResourceKind
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import UtilityFunction

__all__ = ["ComputeStage", "NetworkTopology"]


@dataclass(frozen=True)
class ComputeStage:
    """One computation stage of a pipeline: a name, where it runs, and
    its WCET; ``transfer_time`` is the WCET of *each link hop* carrying
    its output to the next stage (message size / link bandwidth)."""

    name: str
    node: str
    exec_time: float
    transfer_time: float = 1.0

    def __post_init__(self) -> None:
        if self.exec_time <= 0.0:
            raise ModelError(
                f"stage {self.name!r}: exec_time must be positive"
            )
        if self.transfer_time <= 0.0:
            raise ModelError(
                f"stage {self.name!r}: transfer_time must be positive"
            )


class NetworkTopology:
    """A physical deployment target: CPU nodes joined by bandwidth links."""

    def __init__(self, cpu_availability: float = 1.0, cpu_lag: float = 1.0,
                 link_availability: float = 1.0, link_lag: float = 0.5) -> None:
        self.graph = nx.Graph()
        self.cpu_availability = float(cpu_availability)
        self.cpu_lag = float(cpu_lag)
        self.link_availability = float(link_availability)
        self.link_lag = float(link_lag)
        self._tasks: List[Task] = []

    # -- construction ------------------------------------------------------------

    def add_node(self, name: str, availability: Optional[float] = None,
                 lag: Optional[float] = None) -> None:
        """Add a compute node (one CPU resource)."""
        if self.graph.has_node(name):
            raise ModelError(f"node {name!r} already exists")
        self.graph.add_node(
            name,
            availability=availability if availability is not None
            else self.cpu_availability,
            lag=lag if lag is not None else self.cpu_lag,
        )

    def add_link(self, a: str, b: str, availability: Optional[float] = None,
                 lag: Optional[float] = None) -> None:
        """Add a bidirectional link (one bandwidth resource)."""
        for node in (a, b):
            if not self.graph.has_node(node):
                raise ModelError(f"unknown node {node!r}")
        if self.graph.has_edge(a, b):
            raise ModelError(f"link {a!r}–{b!r} already exists")
        self.graph.add_edge(
            a, b,
            availability=availability if availability is not None
            else self.link_availability,
            lag=lag if lag is not None else self.link_lag,
        )

    @classmethod
    def line(cls, nodes: Sequence[str], **kwargs: Any) -> "NetworkTopology":
        """A linear chain of nodes."""
        topo = cls(**kwargs)
        for n in nodes:
            topo.add_node(n)
        for a, b in zip(nodes, nodes[1:]):
            topo.add_link(a, b)
        return topo

    @classmethod
    def star(cls, hub: str, leaves: Sequence[str],
             **kwargs: Any) -> "NetworkTopology":
        """A hub-and-spoke topology."""
        topo = cls(**kwargs)
        topo.add_node(hub)
        for leaf in leaves:
            topo.add_node(leaf)
            topo.add_link(hub, leaf)
        return topo

    # -- resource naming -----------------------------------------------------------

    @staticmethod
    def cpu_resource_name(node: str) -> str:
        return f"cpu:{node}"

    @staticmethod
    def link_resource_name(a: str, b: str) -> str:
        lo, hi = sorted((a, b))
        return f"link:{lo}-{hi}"

    def resources(self) -> List[Resource]:
        """All CPU and link resources of the topology."""
        out = []
        for node, data in self.graph.nodes(data=True):
            out.append(Resource(
                name=self.cpu_resource_name(node),
                kind=ResourceKind.CPU,
                availability=data["availability"],
                lag=data["lag"],
            ))
        for a, b, data in self.graph.edges(data=True):
            out.append(Resource(
                name=self.link_resource_name(a, b),
                kind=ResourceKind.LINK,
                availability=data["availability"],
                lag=data["lag"],
            ))
        return out

    def route(self, src: str, dst: str) -> List[Tuple[str, str]]:
        """Shortest-path route between two nodes, as link endpoints."""
        try:
            path = nx.shortest_path(self.graph, src, dst)
        except nx.NetworkXNoPath as exc:
            raise ModelError(
                f"no route from {src!r} to {dst!r}"
            ) from exc
        except nx.NodeNotFound as exc:
            raise ModelError(str(exc)) from exc
        return list(zip(path, path[1:]))

    # -- deployment -----------------------------------------------------------------

    def deploy_pipeline(
        self,
        name: str,
        stages: Sequence[ComputeStage],
        critical_time: float,
        utility: UtilityFunction,
        trigger: Optional[TriggeringEvent] = None,
        variant: str = "path-weighted",
    ) -> Task:
        """Place a compute pipeline onto the topology.

        Consecutive stages on different nodes are connected by one LINK
        subtask per traversed physical link (shortest-path routing); the
        paper's one-resource-per-subtask rule is preserved by giving each
        communication hop its own subtask.

        The resulting task is remembered and included in
        :meth:`build_taskset`.
        """
        if not stages:
            raise ModelError(f"pipeline {name!r} needs at least one stage")
        for stage in stages:
            if not self.graph.has_node(stage.node):
                raise ModelError(
                    f"pipeline {name!r}: unknown node {stage.node!r}"
                )

        subtasks: List[Subtask] = []
        order: List[str] = []
        used_resources: Dict[str, str] = {}

        def add_subtask(sub_name: str, resource: str,
                        exec_time: float) -> None:
            if resource in used_resources:
                raise ModelError(
                    f"pipeline {name!r}: resource {resource!r} used by both "
                    f"{used_resources[resource]!r} and {sub_name!r} — a task "
                    "may not visit the same resource twice (route the "
                    "pipeline differently or split the task)"
                )
            used_resources[resource] = sub_name
            subtasks.append(Subtask(
                name=sub_name, resource=resource, exec_time=exec_time,
            ))
            order.append(sub_name)

        for i, stage in enumerate(stages):
            add_subtask(
                f"{name}.{stage.name}",
                self.cpu_resource_name(stage.node),
                stage.exec_time,
            )
            if i + 1 < len(stages):
                nxt = stages[i + 1]
                if nxt.node != stage.node:
                    for hop, (a, b) in enumerate(
                            self.route(stage.node, nxt.node)):
                        add_subtask(
                            f"{name}.{stage.name}->{nxt.name}#{hop}",
                            self.link_resource_name(a, b),
                            stage.transfer_time,
                        )

        task = Task(
            name=name,
            subtasks=subtasks,
            graph=SubtaskGraph.chain(order),
            critical_time=critical_time,
            utility=utility,
            variant=variant,
            trigger=trigger,
        )
        self._tasks.append(task)
        return task

    def build_taskset(self) -> TaskSet:
        """All deployed pipelines over the topology's resources."""
        if not self._tasks:
            raise ModelError("no pipelines deployed")
        return TaskSet(self._tasks, self.resources())
