"""Programming model for distributed real-time applications (Section 2).

Public surface:

* :class:`~repro.model.task.Subtask`, :class:`~repro.model.task.Task`,
  :class:`~repro.model.task.TaskSet` — workload structure;
* :class:`~repro.model.graph.SubtaskGraph` — DAG precedence with paths and
  critical-path queries;
* utility functions (:mod:`repro.model.utility`);
* share functions (:mod:`repro.model.share`);
* resources (:mod:`repro.model.resources`);
* triggering events (:mod:`repro.model.events`);
* percentile composition (:mod:`repro.model.percentile`).
"""

from repro.model.events import (
    BurstyEvent,
    PeriodicEvent,
    PoissonEvent,
    TriggeringEvent,
)
from repro.model.fingerprint import structure_fingerprint, taskset_fingerprint
from repro.model.graph import SubtaskGraph
from repro.model.percentile import (
    compose_percentiles,
    path_percentile,
    per_subtask_percentiles,
    subtask_percentile,
)
from repro.model.resources import Resource, ResourceKind
from repro.model.share import (
    CorrectedShare,
    HyperbolicShare,
    PowerLawShare,
    ShareFunction,
)
from repro.model.serialize import (
    taskset_from_dict,
    taskset_from_json,
    taskset_to_dict,
    taskset_to_json,
)
from repro.model.task import Subtask, Task, TaskSet
from repro.model.topology import ComputeStage, NetworkTopology
from repro.model.utility import (
    ExponentialUtility,
    InelasticUtility,
    LinearUtility,
    LogUtility,
    QuadraticUtility,
    UtilityFunction,
    check_concavity,
)

__all__ = [
    "Subtask",
    "Task",
    "TaskSet",
    "NetworkTopology",
    "ComputeStage",
    "taskset_to_dict",
    "taskset_from_dict",
    "taskset_to_json",
    "taskset_from_json",
    "taskset_fingerprint",
    "structure_fingerprint",
    "SubtaskGraph",
    "Resource",
    "ResourceKind",
    "ShareFunction",
    "HyperbolicShare",
    "PowerLawShare",
    "CorrectedShare",
    "UtilityFunction",
    "LinearUtility",
    "LogUtility",
    "QuadraticUtility",
    "ExponentialUtility",
    "InelasticUtility",
    "check_concavity",
    "TriggeringEvent",
    "PeriodicEvent",
    "PoissonEvent",
    "BurstyEvent",
    "compose_percentiles",
    "path_percentile",
    "subtask_percentile",
    "per_subtask_percentiles",
]
