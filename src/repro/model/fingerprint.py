"""Canonical task-set fingerprints.

Several subsystems need to decide cheaply whether two :class:`TaskSet`
instances describe *the same optimization problem*:

* the distributed checkpoint store must refuse to warm-restore dual state
  saved for a different problem (prices for a vanished task are garbage);
* the always-on allocation service caches compiled
  :class:`~repro.core.structure.TaskSetStructure` objects across churn and
  may only reuse one when the workload shape and coefficients match
  exactly.

The fingerprint is a SHA-256 digest over the canonical JSON serialization
of the task set (:func:`~repro.model.serialize.taskset_to_dict` with
sorted keys) *plus* the ``repr`` of every subtask's share function.  The
reprs matter: custom share functions are deliberately not serialized, and
online error correction retunes :class:`CorrectedShare` parameters in
place — both must change the fingerprint, because both change the problem
the dual iterates were converging on.

Two task sets with equal fingerprints therefore have identical resources
(names, kinds, availabilities, lags), identical task structure (subtask
graphs, WCETs, percentiles, critical times, utilities, triggers, variants)
and identical share-function parameters, in the same declaration order —
exactly the conditions under which dual state and compiled structure are
interchangeable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.model.task import TaskSet

__all__ = ["taskset_fingerprint", "structure_fingerprint"]


def taskset_fingerprint(taskset: TaskSet) -> str:
    """Hex SHA-256 fingerprint of ``taskset``'s optimization problem."""
    payload = {
        "taskset": _canonical_dict(taskset),
        "share_functions": [
            repr(taskset.share_function(name))
            for name in taskset.subtask_names
        ],
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def structure_fingerprint(payload: Mapping[str, Any]) -> str:
    """Hex SHA-256 fingerprint of a compiled-structure payload.

    ``payload`` is the JSON-safe dict produced by
    :func:`repro.core.structure.structure_to_dict` (taking the dict rather
    than the structure keeps this module free of a model→core import
    cycle).  Any embedded ``"fingerprint"`` key is excluded so the digest
    can both stamp a payload and verify one.  Because compilation is
    canonical (name-sorted tasks and resources), equal task sets yield
    equal structure fingerprints regardless of declaration order — unlike
    :func:`taskset_fingerprint`, which is declaration-order-sensitive by
    design (dual state is exchanged in declaration order).
    """
    body = {k: v for k, v in payload.items() if k != "fingerprint"}
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _canonical_dict(taskset: TaskSet) -> object:
    # Imported lazily: serialize imports the whole model surface and this
    # module is imported from low-level consumers (checkpoint store).
    from repro.model.serialize import taskset_to_dict

    return taskset_to_dict(taskset)
