"""Subtask graphs: the DAG precedence structure of a task (Section 2).

A subtask graph is a directed acyclic graph of subtasks with a unique root
(the *start subtask*); leaf nodes are *end subtasks*.  Edges represent
precedence — data transmission or logical ordering.  A *path* runs from the
root to a leaf; the task's end-to-end latency is the latency of its
*critical path*, the maximum-latency path.

The path-weighted utility variant (Section 3.2) weighs each subtask by the
number of root-to-leaf paths it belongs to; :meth:`SubtaskGraph.path_weights`
computes those counts without enumerating paths (product of path counts to
and from the node), though explicit enumeration is also provided for the
optimizer's per-path prices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import GraphError

__all__ = ["SubtaskGraph"]


class SubtaskGraph:
    """An immutable DAG over subtask names with a unique root.

    Parameters
    ----------
    nodes:
        All subtask names in the graph (order is preserved and used as a
        deterministic tiebreak everywhere).
    edges:
        Precedence pairs ``(before, after)``.

    A single isolated node is a valid graph (root == leaf, one path).
    """

    def __init__(self, nodes: Iterable[str], edges: Iterable[Tuple[str, str]]) -> None:
        self._nodes: List[str] = list(dict.fromkeys(nodes))
        if not self._nodes:
            raise GraphError("subtask graph must contain at least one node")
        node_set = set(self._nodes)
        self._succ: Dict[str, List[str]] = {n: [] for n in self._nodes}
        self._pred: Dict[str, List[str]] = {n: [] for n in self._nodes}
        seen_edges = set()
        for before, after in edges:
            if before not in node_set or after not in node_set:
                raise GraphError(
                    f"edge ({before!r}, {after!r}) references unknown subtask"
                )
            if before == after:
                raise GraphError(f"self-loop on subtask {before!r}")
            if (before, after) in seen_edges:
                continue
            seen_edges.add((before, after))
            self._succ[before].append(after)
            self._pred[after].append(before)

        self._topo_order = self._toposort()
        roots = [n for n in self._nodes if not self._pred[n]]
        if len(roots) != 1:
            raise GraphError(
                f"subtask graph must have a unique root, found {roots!r}"
            )
        self._root = roots[0]
        self._leaves = [n for n in self._nodes if not self._succ[n]]
        self._check_reachability()
        self._paths = self._enumerate_paths()
        self._weights = self._count_path_memberships()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def chain(cls, nodes: Sequence[str]) -> "SubtaskGraph":
        """A linear pipeline: each subtask precedes the next."""
        return cls(nodes, list(zip(nodes, nodes[1:])))

    @classmethod
    def single(cls, node: str) -> "SubtaskGraph":
        """A one-subtask graph (root is also the only leaf)."""
        return cls([node], [])

    # -- structural validation -----------------------------------------------

    def _toposort(self) -> List[str]:
        in_degree = {n: len(self._pred[n]) for n in self._nodes}
        ready = [n for n in self._nodes if in_degree[n] == 0]
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in self._succ[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            cyclic = sorted(n for n in self._nodes if in_degree[n] > 0)
            raise GraphError(f"subtask graph contains a cycle through {cyclic!r}")
        return order

    def _check_reachability(self) -> None:
        reached = {self._root}
        frontier = [self._root]
        while frontier:
            node = frontier.pop()
            for succ in self._succ[node]:
                if succ not in reached:
                    reached.add(succ)
                    frontier.append(succ)
        unreachable = [n for n in self._nodes if n not in reached]
        if unreachable:
            raise GraphError(
                f"subtasks unreachable from root {self._root!r}: {unreachable!r}"
            )

    def _enumerate_paths(self) -> List[Tuple[str, ...]]:
        paths: List[Tuple[str, ...]] = []

        def walk(node: str, prefix: List[str]) -> None:
            prefix.append(node)
            if not self._succ[node]:
                paths.append(tuple(prefix))
            else:
                for succ in self._succ[node]:
                    walk(succ, prefix)
            prefix.pop()

        walk(self._root, [])
        return paths

    def _count_path_memberships(self) -> Dict[str, int]:
        # paths_to[n]: number of root->n paths; paths_from[n]: n->leaf paths.
        paths_to = {n: 0 for n in self._nodes}
        paths_to[self._root] = 1
        for node in self._topo_order:
            for succ in self._succ[node]:
                paths_to[succ] += paths_to[node]
        paths_from = {n: 0 for n in self._nodes}
        for node in reversed(self._topo_order):
            if not self._succ[node]:
                paths_from[node] = 1
            else:
                paths_from[node] = sum(paths_from[s] for s in self._succ[node])
        return {n: paths_to[n] * paths_from[n] for n in self._nodes}

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(
            (n, s) for n in self._nodes for s in self._succ[n]
        )

    @property
    def root(self) -> str:
        return self._root

    @property
    def leaves(self) -> Tuple[str, ...]:
        return tuple(self._leaves)

    @property
    def paths(self) -> Tuple[Tuple[str, ...], ...]:
        """All root-to-leaf paths, deterministic order."""
        return tuple(self._paths)

    def successors(self, node: str) -> Tuple[str, ...]:
        self._require_node(node)
        return tuple(self._succ[node])

    def predecessors(self, node: str) -> Tuple[str, ...]:
        self._require_node(node)
        return tuple(self._pred[node])

    def topological_order(self) -> Tuple[str, ...]:
        return tuple(self._topo_order)

    def path_weights(self) -> Dict[str, int]:
        """Number of root-to-leaf paths through each subtask.

        These are the weights ``w_s`` of the path-weighted utility variant.
        """
        return dict(self._weights)

    def paths_through(self, node: str) -> Tuple[int, ...]:
        """Indices (into :attr:`paths`) of the paths containing ``node``."""
        self._require_node(node)
        return tuple(
            i for i, path in enumerate(self._paths) if node in path
        )

    def path_latency(self, path: Sequence[str],
                     latencies: Mapping[str, float]) -> float:
        """Sum of subtask latencies along ``path``."""
        try:
            return sum(latencies[s] for s in path)
        except KeyError as exc:
            raise GraphError(
                f"latency missing for subtask {exc.args[0]!r}"
            ) from exc

    def critical_path(
        self, latencies: Mapping[str, float]
    ) -> Tuple[Tuple[str, ...], float]:
        """The maximum-latency root-to-leaf path and its latency.

        Computed by dynamic programming over the topological order rather
        than path enumeration, so it stays cheap on graphs whose path count
        is exponential in depth.
        """
        best: Dict[str, float] = {}
        best_succ: Dict[str, str] = {}
        for node in reversed(self._topo_order):
            if node not in latencies:
                raise GraphError(f"latency missing for subtask {node!r}")
            if not self._succ[node]:
                best[node] = latencies[node]
            else:
                chosen = max(self._succ[node], key=lambda s: best[s])
                best[node] = latencies[node] + best[chosen]
                best_succ[node] = chosen
        path = [self._root]
        while path[-1] in best_succ:
            path.append(best_succ[path[-1]])
        return tuple(path), best[self._root]

    def _require_node(self, node: str) -> None:
        if node not in self._succ:
            raise GraphError(f"unknown subtask {node!r}")

    def __contains__(self, node: str) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"SubtaskGraph(nodes={len(self._nodes)}, "
            f"edges={sum(len(s) for s in self._succ.values())}, "
            f"paths={len(self._paths)})"
        )
