"""Resources: nodes (CPU) and links (network bandwidth).

Section 3.1: every resource is characterized by a share function family (one
instance per subtask, built from the subtask's WCET and the resource's lag)
and an availability value ``B_r ∈ [0, 1]`` — the fraction of the resource
available to the competing tasks.  Anything reserved for other consumers
(the paper's Metronome garbage collector takes 0.1 in Section 6.2) is simply
excluded from ``B_r``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import ModelError

__all__ = ["ResourceKind", "Resource"]


class ResourceKind(enum.Enum):
    """What the resource physically is.

    The optimizer treats CPU and network identically (the paper's point:
    computation and communication are modeled uniformly as subtasks); the
    kind only matters for reporting and for which simulator component
    services the jobs.
    """

    CPU = "cpu"
    LINK = "link"


@dataclass(frozen=True)
class Resource:
    """A schedulable resource with proportional-share semantics.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"cpu0"`` or ``"link-3-4"``.
    kind:
        :class:`ResourceKind` — CPU or network link.
    availability:
        ``B_r``: fraction of the resource available to the optimized tasks.
        ``0.0`` is legal and means the resource is currently blacked out
        (e.g. a full capacity shock): no share can be granted, so every
        subtask hosted on it has an infinite minimum latency until the
        capacity is restored.
    lag:
        ``l_r``: scheduling lag in the same time unit as WCETs (ms in the
        paper).  Captures PS quantization: a job may wait up to the lag
        before its share starts being delivered.
    """

    name: str
    kind: ResourceKind = ResourceKind.CPU
    availability: float = 1.0
    lag: float = 1.0
    metadata: Dict[str, Any] = field(
        default_factory=dict, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("resource name must be non-empty")
        if not 0.0 <= self.availability <= 1.0:
            raise ModelError(
                f"availability must be in [0, 1], got {self.availability!r} "
                f"for resource {self.name!r}"
            )
        if self.lag < 0.0:
            raise ModelError(
                f"lag must be non-negative, got {self.lag!r} "
                f"for resource {self.name!r}"
            )

    def __str__(self) -> str:
        return self.name
