"""Share functions: the latency ↔ resource-share model.

Section 4.4 (Eq. 10) models the share a subtask needs on a proportional-share
(PS) scheduled resource to achieve worst-case latency ``lat`` as::

    share_r(s, lat) = (c_s + l_r) / lat

where ``c_s`` is the subtask's worst-case execution time and ``l_r`` is the
resource's scheduling lag.  The paper requires share functions to be strictly
convex and continuously differentiable in latency (Section 4.2): increasing
latency yields diminishing returns in freed share.

This module provides the paper's hyperbolic form plus a power-law
generalization used in ablations, behind a common abstract interface so the
optimizer never special-cases a particular shape.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ShareError

__all__ = [
    "ShareFunction",
    "HyperbolicShare",
    "PowerLawShare",
    "CorrectedShare",
]


class ShareFunction(ABC):
    """Maps a target worst-case latency to the PS share that achieves it.

    Implementations must be strictly convex, strictly decreasing and
    continuously differentiable in latency on ``(min_latency, inf)``.
    """

    @abstractmethod
    def share(self, latency: float) -> float:
        """Share in ``[0, 1]``-ish range needed to achieve ``latency``.

        Values above 1 indicate the latency is unachievable even with the
        whole resource; callers clamp against availability.
        """

    @abstractmethod
    def dshare_dlat(self, latency: float) -> float:
        """Derivative of :meth:`share` with respect to latency (negative)."""

    @abstractmethod
    def latency_for_share(self, share: float) -> float:
        """Inverse map: the latency achieved when granted ``share``."""

    @abstractmethod
    def min_latency(self, availability: float) -> float:
        """Smallest achievable latency given resource ``availability``.

        ``availability == 0.0`` (a blacked-out resource) yields ``inf``:
        no share can be granted, so no finite latency is achievable.
        """

    def _require_positive_latency(self, latency: float) -> None:
        if latency <= 0.0:
            raise ShareError(f"share function queried at latency {latency!r}")


class HyperbolicShare(ShareFunction):
    """The paper's Eq. 10: ``share(lat) = (c + l) / lat``.

    ``cost = c_s + l_r`` aggregates the worst-case execution time and the PS
    scheduling lag; both are fixed, so share varies only with latency.
    """

    def __init__(self, exec_time: float, lag: float) -> None:
        if exec_time <= 0.0:
            raise ShareError(f"exec_time must be positive, got {exec_time}")
        if lag < 0.0:
            raise ShareError(f"lag must be non-negative, got {lag}")
        self.exec_time = float(exec_time)
        self.lag = float(lag)
        self.cost = self.exec_time + self.lag

    def share(self, latency: float) -> float:
        self._require_positive_latency(latency)
        return self.cost / latency

    def dshare_dlat(self, latency: float) -> float:
        self._require_positive_latency(latency)
        return -self.cost / (latency * latency)

    def latency_for_share(self, share: float) -> float:
        if share <= 0.0:
            raise ShareError(f"cannot achieve any latency with share {share!r}")
        return self.cost / share

    def min_latency(self, availability: float) -> float:
        if availability < 0.0:
            raise ShareError(
                f"availability must be non-negative, got {availability!r}"
            )
        if availability == 0.0:
            return math.inf
        return self.cost / availability

    def __repr__(self) -> str:
        return f"HyperbolicShare(exec_time={self.exec_time}, lag={self.lag})"


class PowerLawShare(ShareFunction):
    """Generalized share model ``share(lat) = cost / lat**alpha``.

    ``alpha = 1`` recovers :class:`HyperbolicShare`.  ``alpha > 1`` models
    resources where small latency targets are disproportionately expensive
    (e.g. schedulers with quantization effects); used by the ablation
    benches to probe LLA's sensitivity to the share model.
    """

    def __init__(self, cost: float, alpha: float = 1.0) -> None:
        if cost <= 0.0:
            raise ShareError(f"cost must be positive, got {cost}")
        if alpha <= 0.0:
            raise ShareError(f"alpha must be positive, got {alpha}")
        self.cost = float(cost)
        self.alpha = float(alpha)

    def share(self, latency: float) -> float:
        self._require_positive_latency(latency)
        return self.cost / latency ** self.alpha

    def dshare_dlat(self, latency: float) -> float:
        self._require_positive_latency(latency)
        return -self.alpha * self.cost / latency ** (self.alpha + 1.0)

    def latency_for_share(self, share: float) -> float:
        if share <= 0.0:
            raise ShareError(f"cannot achieve any latency with share {share!r}")
        return (self.cost / share) ** (1.0 / self.alpha)

    def min_latency(self, availability: float) -> float:
        if availability < 0.0:
            raise ShareError(
                f"availability must be non-negative, got {availability!r}"
            )
        if availability == 0.0:
            return math.inf
        return (self.cost / availability) ** (1.0 / self.alpha)

    def __repr__(self) -> str:
        return f"PowerLawShare(cost={self.cost}, alpha={self.alpha})"


class CorrectedShare(ShareFunction):
    """A share function adjusted by an additive latency-error estimate.

    Section 6.3's online model error correction observes that the raw model
    over-predicts latency (job releases of subtasks sharing a resource are
    not synchronized, so the worst-case lag rarely materializes).  With a
    smoothed additive error estimate ``e`` (observed − predicted, typically
    negative), the corrected prediction for a granted share ``σ`` is
    ``base.latency_for_share(σ) + e``; inverting, the share needed to
    *actually* achieve ``lat`` is ``base.share(lat - e)``.

    The correction preserves convexity and monotonicity as long as
    ``lat - e`` stays positive, which the optimizer's latency clamps ensure.
    """

    def __init__(self, base: ShareFunction, error: float = 0.0) -> None:
        self.base = base
        self.error = float(error)

    def set_error(self, error: float) -> None:
        """Update the additive error estimate (called by the corrector)."""
        self.error = float(error)

    def _model_latency(self, latency: float) -> float:
        model_lat = latency - self.error
        if model_lat <= 0.0:
            raise ShareError(
                f"corrected latency {latency!r} with error {self.error!r} "
                "maps to a non-positive model latency"
            )
        return model_lat

    def share(self, latency: float) -> float:
        self._require_positive_latency(latency)
        return self.base.share(self._model_latency(latency))

    def dshare_dlat(self, latency: float) -> float:
        self._require_positive_latency(latency)
        return self.base.dshare_dlat(self._model_latency(latency))

    def latency_for_share(self, share: float) -> float:
        return self.base.latency_for_share(share) + self.error

    def min_latency(self, availability: float) -> float:
        return self.base.min_latency(availability) + max(self.error, 0.0)

    def __repr__(self) -> str:
        return f"CorrectedShare(base={self.base!r}, error={self.error})"
