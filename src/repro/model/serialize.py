"""Workload (de)serialization: task sets to/from plain dicts and JSON.

A deployable system needs its workload specifications in files — operators
author task definitions, admission controllers persist the admitted set,
experiments pin their inputs.  This module round-trips every structural
element of the model:

* resources (name, kind, availability, lag);
* subtask graphs (nodes + edges);
* subtasks (resource, WCET, percentile);
* utilities (all five built-in families with their parameters);
* triggering events (periodic, Poisson, bursty);
* the aggregation variant and critical time.

Custom share functions are intentionally *not* serialized (they are code);
task sets using them round-trip to the default Eq. 10 model, and
:func:`taskset_to_dict` flags the substitution in the output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ModelError
from repro.model.events import (
    BurstyEvent,
    PeriodicEvent,
    PoissonEvent,
    TriggeringEvent,
)
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource, ResourceKind
from repro.model.share import HyperbolicShare
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import (
    ExponentialUtility,
    InelasticUtility,
    LinearUtility,
    LogUtility,
    QuadraticUtility,
    UtilityFunction,
)

__all__ = [
    "taskset_to_dict",
    "taskset_from_dict",
    "taskset_to_json",
    "taskset_from_json",
]

_FORMAT_VERSION = 1


# -- utilities -----------------------------------------------------------------

def _utility_to_dict(utility: UtilityFunction) -> Dict[str, Any]:
    if isinstance(utility, LinearUtility):
        return {"type": "linear", "critical_time": utility.critical_time,
                "k": utility.k, "slope": utility.slope}
    if isinstance(utility, LogUtility):
        return {"type": "log", "critical_time": utility.critical_time,
                "scale": utility.scale, "softness": utility.softness}
    if isinstance(utility, QuadraticUtility):
        return {"type": "quadratic", "critical_time": utility.critical_time,
                "u_max": utility.u_max, "a": utility.a}
    if isinstance(utility, ExponentialUtility):
        return {"type": "exponential", "critical_time": utility.critical_time,
                "u_max": utility.u_max, "tau": utility.tau}
    if isinstance(utility, InelasticUtility):
        return {"type": "inelastic", "critical_time": utility.critical_time,
                "u_max": utility.u_max}
    raise ModelError(
        f"cannot serialize utility of type {type(utility).__name__}"
    )


def _utility_from_dict(data: Dict[str, Any]) -> UtilityFunction:
    kind = data.get("type")
    if kind == "linear":
        return LinearUtility(data["critical_time"], k=data["k"],
                             slope=data["slope"])
    if kind == "log":
        return LogUtility(data["critical_time"], scale=data["scale"],
                          softness=data["softness"])
    if kind == "quadratic":
        return QuadraticUtility(data["critical_time"], u_max=data["u_max"],
                                a=data["a"])
    if kind == "exponential":
        return ExponentialUtility(data["critical_time"], u_max=data["u_max"],
                                  tau=data["tau"])
    if kind == "inelastic":
        return InelasticUtility(data["critical_time"], u_max=data["u_max"])
    raise ModelError(f"unknown utility type {kind!r}")


# -- triggers -------------------------------------------------------------------

def _trigger_to_dict(trigger: Optional[TriggeringEvent]) -> Optional[Dict]:
    if trigger is None:
        return None
    if isinstance(trigger, PeriodicEvent):
        return {"type": "periodic", "period": trigger.period,
                "phase": trigger.phase}
    if isinstance(trigger, PoissonEvent):
        return {"type": "poisson", "rate": trigger.rate}
    if isinstance(trigger, BurstyEvent):
        return {"type": "bursty", "burst_rate": trigger.burst_rate,
                "mean_on": trigger.mean_on, "mean_off": trigger.mean_off}
    raise ModelError(
        f"cannot serialize trigger of type {type(trigger).__name__}"
    )


def _trigger_from_dict(data: Optional[Dict]) -> Optional[TriggeringEvent]:
    if data is None:
        return None
    kind = data.get("type")
    if kind == "periodic":
        return PeriodicEvent(data["period"], phase=data["phase"])
    if kind == "poisson":
        return PoissonEvent(data["rate"])
    if kind == "bursty":
        return BurstyEvent(data["burst_rate"], data["mean_on"],
                           data["mean_off"])
    raise ModelError(f"unknown trigger type {kind!r}")


# -- task sets --------------------------------------------------------------------

def taskset_to_dict(taskset: TaskSet) -> Dict[str, Any]:
    """Serialize a task set to a JSON-compatible dict."""
    resources: List[Dict[str, Any]] = [
        {
            "name": r.name,
            "kind": r.kind.value,
            "availability": r.availability,
            "lag": r.lag,
        }
        for r in taskset.resources.values()
    ]
    tasks: List[Dict[str, Any]] = []
    custom_share_functions: List[str] = []
    for task in taskset.tasks:
        subtasks = []
        for sub in task.subtasks:
            fn = taskset.share_function(sub.name)
            if not isinstance(fn, HyperbolicShare):
                custom_share_functions.append(sub.name)
            subtasks.append({
                "name": sub.name,
                "resource": sub.resource,
                "exec_time": sub.exec_time,
                "percentile": sub.percentile,
            })
        tasks.append({
            "name": task.name,
            "critical_time": task.critical_time,
            "variant": task.variant,
            "utility": _utility_to_dict(task.utility),
            "trigger": _trigger_to_dict(task.trigger),
            "subtasks": subtasks,
            "edges": [list(e) for e in task.graph.edges],
        })
    return {
        "format_version": _FORMAT_VERSION,
        "resources": resources,
        "tasks": tasks,
        "custom_share_functions_dropped": sorted(custom_share_functions),
    }


def taskset_from_dict(data: Dict[str, Any]) -> TaskSet:
    """Reconstruct a task set from :func:`taskset_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ModelError(
            f"unsupported workload format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    resources = [
        Resource(
            name=r["name"],
            kind=ResourceKind(r["kind"]),
            availability=r["availability"],
            lag=r["lag"],
        )
        for r in data["resources"]
    ]
    tasks = []
    for tdata in data["tasks"]:
        subtasks = [
            Subtask(
                name=s["name"],
                resource=s["resource"],
                exec_time=s["exec_time"],
                percentile=s["percentile"],
            )
            for s in tdata["subtasks"]
        ]
        graph = SubtaskGraph(
            [s["name"] for s in tdata["subtasks"]],
            [tuple(e) for e in tdata["edges"]],
        )
        tasks.append(Task(
            name=tdata["name"],
            subtasks=subtasks,
            graph=graph,
            critical_time=tdata["critical_time"],
            utility=_utility_from_dict(tdata["utility"]),
            variant=tdata["variant"],
            trigger=_trigger_from_dict(tdata["trigger"]),
        ))
    return TaskSet(tasks, resources)


def taskset_to_json(taskset: TaskSet, indent: int = 2) -> str:
    """Serialize a task set to a JSON string."""
    return json.dumps(taskset_to_dict(taskset), indent=indent)


def taskset_from_json(text: str) -> TaskSet:
    """Reconstruct a task set from :func:`taskset_to_json` output."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelError(f"invalid workload JSON: {exc}") from exc
    return taskset_from_dict(data)
