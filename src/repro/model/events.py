"""Triggering events: arrival patterns that release task instances.

Section 2: tasks are dispatched in response to *triggering events* — signals
with an arrival pattern and optional data.  The arrival pattern is part of
the task specification (or measured at runtime) and feeds both the
schedulability math (minimum rate share = rate × WCET) and the discrete-event
simulator's dispatcher.

Three patterns cover the paper's experiments and its motivation:

* :class:`PeriodicEvent` — the simulation (100 ms period) and prototype
  (40/s and 10/s) workloads;
* :class:`PoissonEvent` — memoryless arrivals for open-loop workloads;
* :class:`BurstyEvent` — a two-state (on/off) modulated process capturing
  the paper's "bursty arrivals" generalization where jobs of a subtask can
  be released without waiting for previous jobs to finish.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import ModelError

__all__ = [
    "TriggeringEvent",
    "PeriodicEvent",
    "PoissonEvent",
    "BurstyEvent",
]


class TriggeringEvent(ABC):
    """An arrival process generating task release times."""

    @abstractmethod
    def mean_rate(self) -> float:
        """Long-run arrivals per unit time (used for rate-share math)."""

    @abstractmethod
    def arrivals(self, horizon: float,
                 rng: Optional[np.random.Generator] = None) -> List[float]:
        """Release times in ``[0, horizon)``, sorted ascending.

        Deterministic processes ignore ``rng``; stochastic ones require it
        (callers own seeding so experiments stay reproducible).
        """

    def iter_arrivals(self, horizon: float,
                      rng: Optional[np.random.Generator] = None
                      ) -> Iterator[float]:
        """Iterator variant of :meth:`arrivals`."""
        return iter(self.arrivals(horizon, rng))

    @abstractmethod
    def stream(self, rng: Optional[np.random.Generator] = None
               ) -> Iterator[float]:
        """Infinite, incrementally-consumable arrival stream.

        Unlike :meth:`arrivals`, a stream can be advanced lazily as a
        simulation extends its horizon without regenerating (and thus
        re-randomizing) earlier arrivals.
        """


class PeriodicEvent(TriggeringEvent):
    """Constant-rate releases every ``period`` time units, starting at
    ``phase``."""

    def __init__(self, period: float, phase: float = 0.0) -> None:
        if period <= 0.0:
            raise ModelError(f"period must be positive, got {period!r}")
        if phase < 0.0:
            raise ModelError(f"phase must be non-negative, got {phase!r}")
        self.period = float(period)
        self.phase = float(phase)

    def mean_rate(self) -> float:
        return 1.0 / self.period

    def arrivals(self, horizon: float,
                 rng: Optional[np.random.Generator] = None) -> List[float]:
        if horizon <= self.phase:
            return []
        count = int(math.ceil((horizon - self.phase) / self.period))
        times = [self.phase + i * self.period for i in range(count)]
        return [t for t in times if t < horizon]

    def stream(self, rng: Optional[np.random.Generator] = None
               ) -> Iterator[float]:
        def generate() -> Iterator[float]:
            i = 0
            while True:
                yield self.phase + i * self.period
                i += 1
        return generate()

    def __repr__(self) -> str:
        return f"PeriodicEvent(period={self.period}, phase={self.phase})"


class PoissonEvent(TriggeringEvent):
    """Memoryless arrivals at mean rate ``rate``."""

    def __init__(self, rate: float) -> None:
        if rate <= 0.0:
            raise ModelError(f"rate must be positive, got {rate!r}")
        self.rate = float(rate)

    def mean_rate(self) -> float:
        return self.rate

    def arrivals(self, horizon: float,
                 rng: Optional[np.random.Generator] = None) -> List[float]:
        if rng is None:
            raise ModelError("PoissonEvent.arrivals requires an rng")
        times: List[float] = []
        t = rng.exponential(1.0 / self.rate)
        while t < horizon:
            times.append(t)
            t += rng.exponential(1.0 / self.rate)
        return times

    def stream(self, rng: Optional[np.random.Generator] = None
               ) -> Iterator[float]:
        if rng is None:
            raise ModelError("PoissonEvent.stream requires an rng")

        def generate() -> Iterator[float]:
            t = 0.0
            while True:
                t += rng.exponential(1.0 / self.rate)
                yield t
        return generate()

    def __repr__(self) -> str:
        return f"PoissonEvent(rate={self.rate})"


class BurstyEvent(TriggeringEvent):
    """Two-state Markov-modulated arrivals (on/off bursts).

    While *on*, arrivals are Poisson at ``burst_rate``; while *off*, none
    occur.  Sojourn times in each state are exponential with means
    ``mean_on`` and ``mean_off``.  Models the paper's observation that
    communication is triggered by real-world events and arrives in bursts.
    """

    def __init__(self, burst_rate: float, mean_on: float, mean_off: float) -> None:
        if burst_rate <= 0.0:
            raise ModelError(f"burst_rate must be positive, got {burst_rate!r}")
        if mean_on <= 0.0 or mean_off <= 0.0:
            raise ModelError(
                f"mean_on/mean_off must be positive, got "
                f"{mean_on!r}/{mean_off!r}"
            )
        self.burst_rate = float(burst_rate)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)

    def mean_rate(self) -> float:
        duty_cycle = self.mean_on / (self.mean_on + self.mean_off)
        return self.burst_rate * duty_cycle

    def arrivals(self, horizon: float,
                 rng: Optional[np.random.Generator] = None) -> List[float]:
        if rng is None:
            raise ModelError("BurstyEvent.arrivals requires an rng")
        times: List[float] = []
        t = 0.0
        on = True
        while t < horizon:
            if on:
                end = t + rng.exponential(self.mean_on)
                arrival = t + rng.exponential(1.0 / self.burst_rate)
                while arrival < min(end, horizon):
                    times.append(arrival)
                    arrival += rng.exponential(1.0 / self.burst_rate)
                t = end
            else:
                t += rng.exponential(self.mean_off)
            on = not on
        return times

    def stream(self, rng: Optional[np.random.Generator] = None
               ) -> Iterator[float]:
        if rng is None:
            raise ModelError("BurstyEvent.stream requires an rng")

        def generate() -> Iterator[float]:
            t = 0.0
            on = True
            while True:
                if on:
                    end = t + rng.exponential(self.mean_on)
                    arrival = t + rng.exponential(1.0 / self.burst_rate)
                    while arrival < end:
                        yield arrival
                        arrival += rng.exponential(1.0 / self.burst_rate)
                    t = end
                else:
                    t += rng.exponential(self.mean_off)
                on = not on
        return generate()

    def __repr__(self) -> str:
        return (
            f"BurstyEvent(burst_rate={self.burst_rate}, "
            f"mean_on={self.mean_on}, mean_off={self.mean_off})"
        )
