"""Tasks, subtasks and task sets (the workload model of Sections 2–3).

A :class:`Task` bundles a set of :class:`Subtask` objects, their precedence
:class:`~repro.model.graph.SubtaskGraph`, a critical time (deadline), a
utility function, and an aggregation *variant* (``sum`` or
``path-weighted``, Section 3.2).  A :class:`TaskSet` is the full workload —
tasks plus the resources they compete for — with the structural invariants
of the paper validated at construction:

* each subtask consumes exactly one resource;
* every referenced resource exists;
* (by default) no two subtasks of the same task consume the same resource
  (the paper's simplifying assumption, relaxable via
  ``allow_shared_resources=True``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ModelError
from repro.model.events import TriggeringEvent
from repro.model.graph import SubtaskGraph
from repro.model.resources import Resource
from repro.model.share import HyperbolicShare, ShareFunction
from repro.model.utility import UtilityFunction

__all__ = ["Subtask", "Task", "TaskSet", "UtilityVariant"]

#: Valid utility aggregation variants (Section 3.2).
UtilityVariant = ("sum", "path-weighted")


@dataclass(frozen=True)
class Subtask:
    """One stage of a task, consuming exactly one resource.

    Parameters
    ----------
    name:
        Identifier unique within the whole task set, e.g. ``"T11"``.
    resource:
        Name of the resource this subtask consumes.
    exec_time:
        Worst-case execution time (same unit as latencies; ms in the paper).
    percentile:
        The latency percentile this subtask's latency bound refers to
        (Section 2.1).  ``100.0`` means worst case — the paper's default.
    share_function:
        Optional custom share model; when ``None`` the task set builds the
        paper's hyperbolic form from ``exec_time`` and the resource lag.
    """

    name: str
    resource: str
    exec_time: float
    percentile: float = 100.0
    share_function: Optional[ShareFunction] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("subtask name must be non-empty")
        if not self.resource:
            raise ModelError(f"subtask {self.name!r} has no resource")
        if self.exec_time <= 0.0:
            raise ModelError(
                f"subtask {self.name!r} exec_time must be positive, "
                f"got {self.exec_time!r}"
            )
        if not 0.0 < self.percentile <= 100.0:
            raise ModelError(
                f"subtask {self.name!r} percentile must be in (0, 100], "
                f"got {self.percentile!r}"
            )


class Task:
    """An end-to-end task: subtasks, precedence graph, deadline, utility."""

    def __init__(
        self,
        name: str,
        subtasks: Iterable[Subtask],
        graph: SubtaskGraph,
        critical_time: float,
        utility: UtilityFunction,
        variant: str = "path-weighted",
        trigger: Optional[TriggeringEvent] = None,
    ) -> None:
        if not name:
            raise ModelError("task name must be non-empty")
        if not (critical_time > 0.0 and math.isfinite(critical_time)):
            raise ModelError(
                f"task {name!r} critical time must be positive and finite, "
                f"got {critical_time!r}"
            )
        if variant not in UtilityVariant:
            raise ModelError(
                f"task {name!r}: unknown utility variant {variant!r}; "
                f"expected one of {UtilityVariant}"
            )
        self.name = name
        self.subtasks: Tuple[Subtask, ...] = tuple(subtasks)
        if not self.subtasks:
            raise ModelError(f"task {name!r} has no subtasks")
        names = [s.name for s in self.subtasks]
        if len(set(names)) != len(names):
            raise ModelError(f"task {name!r} has duplicate subtask names")
        if set(names) != set(graph.nodes):
            missing = set(graph.nodes) - set(names)
            extra = set(names) - set(graph.nodes)
            raise ModelError(
                f"task {name!r}: graph/subtask mismatch "
                f"(graph-only: {sorted(missing)!r}, subtask-only: {sorted(extra)!r})"
            )
        self.graph = graph
        self.critical_time = float(critical_time)
        self.utility = utility
        self.variant = variant
        self.trigger = trigger
        self._by_name: Dict[str, Subtask] = {s.name: s for s in self.subtasks}
        # Aggregation weights (Section 3.2): 1 for `sum`, path count for
        # `path-weighted`.
        if variant == "sum":
            self._weights = {n: 1.0 for n in names}
        else:
            self._weights = {
                n: float(w) for n, w in graph.path_weights().items()
            }

    # -- lookups ---------------------------------------------------------------

    def subtask(self, name: str) -> Subtask:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise ModelError(
                f"task {self.name!r} has no subtask {name!r}"
            ) from exc

    @property
    def subtask_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.subtasks)

    def weight(self, subtask_name: str) -> float:
        """Aggregation weight ``w_s`` of the subtask (Section 3.2)."""
        try:
            return self._weights[subtask_name]
        except KeyError as exc:
            raise ModelError(
                f"task {self.name!r} has no subtask {subtask_name!r}"
            ) from exc

    @property
    def weights(self) -> Dict[str, float]:
        return dict(self._weights)

    # -- latency / utility ------------------------------------------------------

    def aggregated_latency(self, latencies: Mapping[str, float]) -> float:
        """The scalar fed to the utility function under this task's variant."""
        return sum(
            self._weights[n] * latencies[n] for n in self.subtask_names
        )

    def utility_value(self, latencies: Mapping[str, float]) -> float:
        """Task utility ``U_i`` at the given subtask latencies."""
        return self.utility.value(self.aggregated_latency(latencies))

    def utility_gradient(self, latencies: Mapping[str, float]) -> Dict[str, float]:
        """``∂U_i/∂lat_s`` for every subtask (chain rule through the
        aggregation)."""
        fprime = self.utility.derivative(self.aggregated_latency(latencies))
        return {n: self._weights[n] * fprime for n in self.subtask_names}

    def critical_path(
        self, latencies: Mapping[str, float]
    ) -> Tuple[Tuple[str, ...], float]:
        """Maximum-latency root-to-leaf path under ``latencies``."""
        return self.graph.critical_path(latencies)

    def meets_critical_time(self, latencies: Mapping[str, float],
                            slack: float = 0.0) -> bool:
        """Whether every path finishes within the critical time (Eq. 4)."""
        _, worst = self.graph.critical_path(latencies)
        return worst <= self.critical_time + slack

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, subtasks={len(self.subtasks)}, "
            f"C={self.critical_time}, variant={self.variant!r})"
        )


class TaskSet:
    """A complete workload: tasks plus the resources they compete for."""

    def __init__(
        self,
        tasks: Iterable[Task],
        resources: Iterable[Resource],
        allow_shared_resources: bool = False,
    ) -> None:
        self.tasks: Tuple[Task, ...] = tuple(tasks)
        self.resources: Dict[str, Resource] = {}
        for resource in resources:
            if resource.name in self.resources:
                raise ModelError(f"duplicate resource {resource.name!r}")
            self.resources[resource.name] = resource
        if not self.tasks:
            raise ModelError("task set must contain at least one task")

        task_names = [t.name for t in self.tasks]
        if len(set(task_names)) != len(task_names):
            raise ModelError("duplicate task names in task set")
        self._task_by_name = {t.name: t for t in self.tasks}

        self._subtask_owner: Dict[str, Task] = {}
        self._subtasks_on: Dict[str, List[Tuple[Task, Subtask]]] = {
            r: [] for r in self.resources
        }
        for task in self.tasks:
            used_resources = set()
            for sub in task.subtasks:
                if sub.name in self._subtask_owner:
                    raise ModelError(
                        f"subtask name {sub.name!r} appears in multiple tasks"
                    )
                if sub.resource not in self.resources:
                    raise ModelError(
                        f"subtask {sub.name!r} references unknown "
                        f"resource {sub.resource!r}"
                    )
                if sub.resource in used_resources and not allow_shared_resources:
                    raise ModelError(
                        f"task {task.name!r} has two subtasks on resource "
                        f"{sub.resource!r}; pass allow_shared_resources=True "
                        "to permit this"
                    )
                used_resources.add(sub.resource)
                self._subtask_owner[sub.name] = task
                self._subtasks_on[sub.resource].append((task, sub))

        self._share_functions: Dict[str, ShareFunction] = {}
        for task in self.tasks:
            for sub in task.subtasks:
                if sub.share_function is not None:
                    self._share_functions[sub.name] = sub.share_function
                else:
                    lag = self.resources[sub.resource].lag
                    self._share_functions[sub.name] = HyperbolicShare(
                        exec_time=sub.exec_time, lag=lag
                    )

    # -- lookups ---------------------------------------------------------------

    def task(self, name: str) -> Task:
        try:
            return self._task_by_name[name]
        except KeyError as exc:
            raise ModelError(f"no task named {name!r}") from exc

    def owner_of(self, subtask_name: str) -> Task:
        """The task a subtask belongs to."""
        try:
            return self._subtask_owner[subtask_name]
        except KeyError as exc:
            raise ModelError(
                f"no subtask named {subtask_name!r}"
            ) from exc

    def subtasks_on(self, resource_name: str) -> Tuple[Tuple[Task, Subtask], ...]:
        """All ``(task, subtask)`` pairs competing for a resource."""
        try:
            return tuple(self._subtasks_on[resource_name])
        except KeyError as exc:
            raise ModelError(
                f"no resource named {resource_name!r}"
            ) from exc

    def share_function(self, subtask_name: str) -> ShareFunction:
        """The share model for a subtask (custom or paper-default)."""
        try:
            return self._share_functions[subtask_name]
        except KeyError as exc:
            raise ModelError(
                f"no subtask named {subtask_name!r}"
            ) from exc

    def set_share_function(self, subtask_name: str, fn: ShareFunction) -> None:
        """Replace a subtask's share model (used by error correction)."""
        if subtask_name not in self._share_functions:
            raise ModelError(f"no subtask named {subtask_name!r}")
        self._share_functions[subtask_name] = fn

    def set_availability(self, resource_name: str, availability: float) -> None:
        """Change a resource's availability at run time.

        Models resource variation — degradation (co-located load, partial
        failure) or recovery.  :class:`~repro.model.resources.Resource` is
        immutable, so the entry is swapped for an updated copy; running
        optimizers observe the change immediately through the price update
        and congestion classification, but cached latency bounds must be
        refreshed (:meth:`repro.core.optimizer.LLAOptimizer.refresh_model`).
        """
        if resource_name not in self.resources:
            raise ModelError(f"no resource named {resource_name!r}")
        old = self.resources[resource_name]
        self.resources[resource_name] = Resource(
            name=old.name,
            kind=old.kind,
            availability=availability,
            lag=old.lag,
            metadata=dict(old.metadata),
        )

    @property
    def all_subtasks(self) -> Tuple[Subtask, ...]:
        return tuple(
            sub for task in self.tasks for sub in task.subtasks
        )

    @property
    def subtask_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.all_subtasks)

    # -- aggregate metrics -------------------------------------------------------

    def total_utility(self, latencies: Mapping[str, float]) -> float:
        """Objective value ``Σ_i U_i`` (Eq. 2)."""
        return sum(t.utility_value(latencies) for t in self.tasks)

    def resource_load(self, resource_name: str,
                      latencies: Mapping[str, float]) -> float:
        """``Σ share_r(s, lat_s)`` over subtasks on the resource (Eq. 3 LHS)."""
        total = 0.0
        for _task, sub in self.subtasks_on(resource_name):
            total += self._share_functions[sub.name].share(latencies[sub.name])
        return total

    def resource_loads(self, latencies: Mapping[str, float]) -> Dict[str, float]:
        return {
            r: self.resource_load(r, latencies) for r in self.resources
        }

    def constraint_violations(
        self, latencies: Mapping[str, float], tol: float = 1e-9
    ) -> List[str]:
        """Human-readable descriptions of violated constraints (Eqs. 3–4)."""
        problems: List[str] = []
        for rname, resource in self.resources.items():
            load = self.resource_load(rname, latencies)
            if load > resource.availability + tol:
                problems.append(
                    f"resource {rname!r} overloaded: "
                    f"{load:.4f} > B_r={resource.availability:.4f}"
                )
        for task in self.tasks:
            for path in task.graph.paths:
                lat = task.graph.path_latency(path, latencies)
                if lat > task.critical_time + tol:
                    problems.append(
                        f"task {task.name!r} path {'→'.join(path)} misses "
                        f"critical time: {lat:.4f} > C={task.critical_time:.4f}"
                    )
        return problems

    def is_feasible(self, latencies: Mapping[str, float],
                    tol: float = 1e-9) -> bool:
        """Whether the assignment satisfies all constraints."""
        return not self.constraint_violations(latencies, tol=tol)

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:
        return (
            f"TaskSet(tasks={len(self.tasks)}, "
            f"subtasks={len(self._subtask_owner)}, "
            f"resources={len(self.resources)})"
        )
