"""Admission control layered on LLA (Section 3.2).

The paper scopes admission control out ("we assume any admission control
is layered on top of our approach") — this module is that layer.  An
:class:`AdmissionController` holds the currently admitted task set and
evaluates each arriving task by *hypothetically* adding it and running the
LLA schedulability test (Section 5.4): admit when the combined workload
converges feasibly, reject otherwise.  Rejection leaves the running
system untouched — the test runs on a copy of the state (LLA is
stateless given a task set, so "copy" just means a fresh optimizer).

Two admission modes:

* ``strict`` — the combined workload must classify SCHEDULABLE;
* ``utility`` — additionally require that admitting the task does not
  decrease the *incumbent* tasks' aggregate utility by more than
  ``max_utility_loss`` (protects important running tasks from dilution
  by low-value arrivals, using the same utility currency the optimizer
  maximizes).

:func:`certify_infeasible` is the cheap complement: a sound,
optimizer-free infeasibility certificate the always-on service runs on
every churn event before touching the live solve.  It can prove some
task sets unschedulable from closed-form bounds alone; it never
condemns a feasible one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.schedulability import (
    SchedulabilityAnalyzer,
    SchedulabilityReport,
)
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.errors import ModelError
from repro.model.resources import Resource
from repro.model.task import Task, TaskSet

__all__ = ["AdmissionDecision", "AdmissionController", "certify_infeasible"]


def certify_infeasible(taskset: TaskSet, tol: float = 1e-9) -> Optional[str]:
    """A cheap, sound infeasibility certificate for ``taskset``.

    Returns a human-readable reason when the task set *provably* cannot
    satisfy the capacity (Eq. 3) and critical-time (Eq. 4) constraints,
    ``None`` when no certificate is found (the workload may still turn
    out unschedulable — run the full LLA oracle for a definitive answer).
    Two closed-form checks, each valid for every admissible assignment:

    1. **Path floor.**  No subtask can beat
       ``min_latency(B_r)`` — a lower latency would need a share
       exceeding the resource's entire availability, violating Eq. 3 even
       with the subtask alone on the resource.  If one path's summed
       floors already exceed the task's critical time, Eq. 4 cannot hold.
    2. **Load floor.**  On any path through subtask ``s``, Eq. 4 caps
       ``lat_s`` at ``C_i`` minus the other path members' floors.  Shares
       decrease in latency, so each subtask needs at least
       ``share(cap_s)``; if those minimum shares sum above ``B_r`` on
       some resource, Eq. 3 cannot hold.

    Both checks are monotone in the bounds used, so the certificate is
    conservative: it never rejects a feasible task set.
    """
    if not taskset.tasks:
        return None
    floors: Dict[str, float] = {}
    for task in taskset.tasks:
        for sub in task.subtasks:
            availability = taskset.resources[sub.resource].availability
            floors[sub.name] = \
                taskset.share_function(sub.name).min_latency(availability)

    # (1) per-path latency floor vs the critical time
    for task in taskset.tasks:
        for path in task.graph.paths:
            floor = sum(floors[name] for name in path)
            if floor > task.critical_time + tol:
                return (
                    f"task {task.name!r}: path {'->'.join(path)} needs "
                    f"latency >= {floor:.6g} even at full availability, "
                    f"above its critical time {task.critical_time:.6g}"
                )

    # (2) per-resource load floor at the per-subtask latency caps
    caps: Dict[str, float] = {}
    for task in taskset.tasks:
        for path in task.graph.paths:
            floor = sum(floors[name] for name in path)
            for name in path:
                cap = task.critical_time - (floor - floors[name])
                caps[name] = min(caps.get(name, math.inf), cap)
    for rname, resource in taskset.resources.items():
        load = 0.0
        for _task, sub in taskset.subtasks_on(rname):
            cap = caps[sub.name]
            if not math.isfinite(cap):
                continue
            if cap <= 0.0:
                return (
                    f"subtask {sub.name!r}: the rest of its path already "
                    "exhausts the critical time at full availability"
                )
            load += taskset.share_function(sub.name).share(cap)
        if load > resource.availability + tol:
            return (
                f"resource {rname!r}: hosted subtasks need load >= "
                f"{load:.6g} at their critical-time latency caps, above "
                f"availability {resource.availability:.6g}"
            )
    return None


@dataclass
class AdmissionDecision:
    """Outcome of one admission test."""

    task: str
    admitted: bool
    reason: str
    report: Optional[SchedulabilityReport] = None
    incumbent_utility_before: float = 0.0
    incumbent_utility_after: float = 0.0

    @property
    def incumbent_utility_loss(self) -> float:
        return self.incumbent_utility_before - self.incumbent_utility_after


class AdmissionController:
    """Online task admission using LLA as the schedulability oracle."""

    def __init__(
        self,
        resources: List[Resource],
        mode: str = "strict",
        max_utility_loss: float = 0.0,
        analyzer: Optional[SchedulabilityAnalyzer] = None,
        optimizer_config: Optional[LLAConfig] = None,
    ):
        if mode not in ("strict", "utility"):
            raise ModelError(f"unknown admission mode {mode!r}")
        self.resources = list(resources)
        self.mode = mode
        self.max_utility_loss = float(max_utility_loss)
        self.analyzer = analyzer or SchedulabilityAnalyzer(iterations=800)
        self.optimizer_config = optimizer_config or LLAConfig(
            max_iterations=1500
        )
        self.admitted: List[Task] = []
        self.decisions: List[AdmissionDecision] = []
        self._current_latencies: Dict[str, float] = {}

    # -- queries -----------------------------------------------------------------

    @property
    def taskset(self) -> Optional[TaskSet]:
        """The currently admitted workload (``None`` when empty)."""
        if not self.admitted:
            return None
        return TaskSet(self.admitted, self.resources)

    @property
    def latencies(self) -> Dict[str, float]:
        """The optimized allocation for the admitted workload."""
        return dict(self._current_latencies)

    def incumbent_utility(self) -> float:
        ts = self.taskset
        if ts is None or not self._current_latencies:
            return 0.0
        return ts.total_utility(self._current_latencies)

    # -- admission ----------------------------------------------------------------

    def offer(self, task: Task) -> AdmissionDecision:
        """Test a task for admission; admit it if the policy allows."""
        if any(t.name == task.name for t in self.admitted):
            decision = AdmissionDecision(
                task=task.name, admitted=False,
                reason=f"task {task.name!r} already admitted",
            )
            self.decisions.append(decision)
            return decision

        candidate_tasks = self.admitted + [task]
        try:
            candidate = TaskSet(candidate_tasks, self.resources)
        except ModelError as exc:
            decision = AdmissionDecision(
                task=task.name, admitted=False,
                reason=f"structurally invalid: {exc}",
            )
            self.decisions.append(decision)
            return decision

        report = self.analyzer.analyze(candidate)
        if not report.schedulable:
            decision = AdmissionDecision(
                task=task.name, admitted=False,
                reason="combined workload not schedulable: "
                       + report.summary(),
                report=report,
            )
            self.decisions.append(decision)
            return decision

        before = self.incumbent_utility()
        result = LLAOptimizer(candidate, self.optimizer_config).run()
        incumbents = [t for t in candidate.tasks if t.name != task.name]
        after = sum(t.utility_value(result.latencies) for t in incumbents)

        if self.mode == "utility" and self.admitted and \
                before - after > self.max_utility_loss:
            decision = AdmissionDecision(
                task=task.name, admitted=False,
                reason=(
                    f"incumbent utility would drop {before - after:.2f} "
                    f"(> allowed {self.max_utility_loss:.2f})"
                ),
                report=report,
                incumbent_utility_before=before,
                incumbent_utility_after=after,
            )
            self.decisions.append(decision)
            return decision

        self.admitted.append(task)
        self._current_latencies = dict(result.latencies)
        decision = AdmissionDecision(
            task=task.name, admitted=True,
            reason="schedulable" if self.mode == "strict" else
                   f"schedulable, incumbent loss {before - after:.2f}",
            report=report,
            incumbent_utility_before=before,
            incumbent_utility_after=after,
        )
        self.decisions.append(decision)
        return decision

    def withdraw(self, task_name: str) -> bool:
        """Remove an admitted task (completed or cancelled); re-optimizes
        the remaining workload.  Returns whether the task was present."""
        remaining = [t for t in self.admitted if t.name != task_name]
        if len(remaining) == len(self.admitted):
            return False
        self.admitted = remaining
        if self.admitted:
            ts = TaskSet(self.admitted, self.resources)
            result = LLAOptimizer(ts, self.optimizer_config).run()
            self._current_latencies = dict(result.latencies)
        else:
            self._current_latencies = {}
        return True

    def admission_rate(self) -> float:
        """Fraction of offers admitted so far."""
        if not self.decisions:
            return 0.0
        admitted = sum(1 for d in self.decisions if d.admitted)
        return admitted / len(self.decisions)
