"""Admission control layered on LLA (Section 3.2).

The paper scopes admission control out ("we assume any admission control
is layered on top of our approach") — this module is that layer.  An
:class:`AdmissionController` holds the currently admitted task set and
evaluates each arriving task by *hypothetically* adding it and running the
LLA schedulability test (Section 5.4): admit when the combined workload
converges feasibly, reject otherwise.  Rejection leaves the running
system untouched — the test runs on a copy of the state (LLA is
stateless given a task set, so "copy" just means a fresh optimizer).

Two admission modes:

* ``strict`` — the combined workload must classify SCHEDULABLE;
* ``utility`` — additionally require that admitting the task does not
  decrease the *incumbent* tasks' aggregate utility by more than
  ``max_utility_loss`` (protects important running tasks from dilution
  by low-value arrivals, using the same utility currency the optimizer
  maximizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.schedulability import (
    SchedulabilityAnalyzer,
    SchedulabilityReport,
)
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.errors import ModelError
from repro.model.resources import Resource
from repro.model.task import Task, TaskSet

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass
class AdmissionDecision:
    """Outcome of one admission test."""

    task: str
    admitted: bool
    reason: str
    report: Optional[SchedulabilityReport] = None
    incumbent_utility_before: float = 0.0
    incumbent_utility_after: float = 0.0

    @property
    def incumbent_utility_loss(self) -> float:
        return self.incumbent_utility_before - self.incumbent_utility_after


class AdmissionController:
    """Online task admission using LLA as the schedulability oracle."""

    def __init__(
        self,
        resources: List[Resource],
        mode: str = "strict",
        max_utility_loss: float = 0.0,
        analyzer: Optional[SchedulabilityAnalyzer] = None,
        optimizer_config: Optional[LLAConfig] = None,
    ):
        if mode not in ("strict", "utility"):
            raise ModelError(f"unknown admission mode {mode!r}")
        self.resources = list(resources)
        self.mode = mode
        self.max_utility_loss = float(max_utility_loss)
        self.analyzer = analyzer or SchedulabilityAnalyzer(iterations=800)
        self.optimizer_config = optimizer_config or LLAConfig(
            max_iterations=1500
        )
        self.admitted: List[Task] = []
        self.decisions: List[AdmissionDecision] = []
        self._current_latencies: Dict[str, float] = {}

    # -- queries -----------------------------------------------------------------

    @property
    def taskset(self) -> Optional[TaskSet]:
        """The currently admitted workload (``None`` when empty)."""
        if not self.admitted:
            return None
        return TaskSet(self.admitted, self.resources)

    @property
    def latencies(self) -> Dict[str, float]:
        """The optimized allocation for the admitted workload."""
        return dict(self._current_latencies)

    def incumbent_utility(self) -> float:
        ts = self.taskset
        if ts is None or not self._current_latencies:
            return 0.0
        return ts.total_utility(self._current_latencies)

    # -- admission ----------------------------------------------------------------

    def offer(self, task: Task) -> AdmissionDecision:
        """Test a task for admission; admit it if the policy allows."""
        if any(t.name == task.name for t in self.admitted):
            decision = AdmissionDecision(
                task=task.name, admitted=False,
                reason=f"task {task.name!r} already admitted",
            )
            self.decisions.append(decision)
            return decision

        candidate_tasks = self.admitted + [task]
        try:
            candidate = TaskSet(candidate_tasks, self.resources)
        except ModelError as exc:
            decision = AdmissionDecision(
                task=task.name, admitted=False,
                reason=f"structurally invalid: {exc}",
            )
            self.decisions.append(decision)
            return decision

        report = self.analyzer.analyze(candidate)
        if not report.schedulable:
            decision = AdmissionDecision(
                task=task.name, admitted=False,
                reason="combined workload not schedulable: "
                       + report.summary(),
                report=report,
            )
            self.decisions.append(decision)
            return decision

        before = self.incumbent_utility()
        result = LLAOptimizer(candidate, self.optimizer_config).run()
        incumbents = [t for t in candidate.tasks if t.name != task.name]
        after = sum(t.utility_value(result.latencies) for t in incumbents)

        if self.mode == "utility" and self.admitted and \
                before - after > self.max_utility_loss:
            decision = AdmissionDecision(
                task=task.name, admitted=False,
                reason=(
                    f"incumbent utility would drop {before - after:.2f} "
                    f"(> allowed {self.max_utility_loss:.2f})"
                ),
                report=report,
                incumbent_utility_before=before,
                incumbent_utility_after=after,
            )
            self.decisions.append(decision)
            return decision

        self.admitted.append(task)
        self._current_latencies = dict(result.latencies)
        decision = AdmissionDecision(
            task=task.name, admitted=True,
            reason="schedulable" if self.mode == "strict" else
                   f"schedulable, incumbent loss {before - after:.2f}",
            report=report,
            incumbent_utility_before=before,
            incumbent_utility_after=after,
        )
        self.decisions.append(decision)
        return decision

    def withdraw(self, task_name: str) -> bool:
        """Remove an admitted task (completed or cancelled); re-optimizes
        the remaining workload.  Returns whether the task was present."""
        remaining = [t for t in self.admitted if t.name != task_name]
        if len(remaining) == len(self.admitted):
            return False
        self.admitted = remaining
        if self.admitted:
            ts = TaskSet(self.admitted, self.resources)
            result = LLAOptimizer(ts, self.optimizer_config).run()
            self._current_latencies = dict(result.latencies)
        else:
            self._current_latencies = {}
        return True

    def admission_rate(self) -> float:
        """Fraction of offers admitted so far."""
        if not self.decisions:
            return 0.0
        admitted = sum(1 for d in self.decisions if d.admitted)
        return admitted / len(self.decisions)
