"""Convergence-trace diagnostics.

The experiment drivers and tests repeatedly ask the same questions of a
utility trace — when did it settle, how hard does it oscillate, how far is
it from a reference — and of a full iteration history — how much are the
prices still moving, how long were constraints violated.  This module
centralizes those measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.state import IterationRecord

__all__ = [
    "settling_iteration",
    "tail_oscillation",
    "distance_to_reference",
    "price_movement",
    "violation_duration",
    "TraceSummary",
    "summarize_trace",
]


def settling_iteration(values: Sequence[float], band: float = 0.5,
                       relative: bool = False) -> Optional[int]:
    """First index after which the series stays within ``band`` of its
    final value (absolute, or relative to the final value's magnitude)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return None
    final = arr[-1]
    tolerance = band * max(abs(final), 1e-12) if relative else band
    inside = np.abs(arr - final) <= tolerance
    # The last index at which the series was OUTSIDE the band, plus one.
    outside = np.nonzero(~inside)[0]
    if outside.size == 0:
        return 0
    first = int(outside[-1]) + 1
    # The final sample is trivially within band of itself; settling needs
    # at least one confirming sample after the entry point.
    return first if first < arr.size - 1 else None


def tail_oscillation(values: Sequence[float], window: int = 100) -> float:
    """Peak-to-peak spread over the last ``window`` entries."""
    arr = np.asarray(values[-window:], dtype=float)
    if arr.size == 0:
        return 0.0
    return float(arr.max() - arr.min())


def distance_to_reference(values: Sequence[float], reference: float) -> float:
    """|final value − reference|."""
    if not len(values):
        return float("inf")
    return abs(float(values[-1]) - reference)


def price_movement(history: Sequence[IterationRecord],
                   window: int = 20) -> float:
    """Mean absolute per-iteration resource-price change over the last
    ``window`` iterations — near zero once the dual has converged."""
    if len(history) < 2:
        return 0.0
    recent = list(history[-(window + 1):])
    deltas = []
    for prev, cur in zip(recent, recent[1:]):
        for rname, price in cur.resource_prices.items():
            deltas.append(abs(price - prev.resource_prices.get(rname, 0.0)))
    return float(np.mean(deltas)) if deltas else 0.0


def violation_duration(history: Sequence[IterationRecord]) -> int:
    """Number of iterations with at least one congested resource or path."""
    return sum(
        1 for rec in history
        if rec.congested_resources or rec.congested_paths
    )


@dataclass
class TraceSummary:
    """One-line characterization of an optimization run."""

    iterations: int
    final_utility: float
    settling: Optional[int]
    oscillation: float
    price_drift: float
    violated_iterations: int
    #: Latency-recorder ring-buffer evictions during the run (0 when no
    #: bounded recorder was attached); non-zero means tail percentile
    #: estimates cover a truncated window.
    dropped_samples: int = 0

    def converged_cleanly(self, oscillation_tol: float = 1.0,
                          drift_tol: float = 0.1) -> bool:
        return (
            self.settling is not None
            and self.oscillation <= oscillation_tol
            and self.price_drift <= drift_tol
        )


def summarize_trace(history: Sequence[IterationRecord],
                    band: float = 0.5,
                    dropped_samples: int = 0) -> TraceSummary:
    """Compute all diagnostics for an iteration history."""
    utilities = [rec.utility for rec in history]
    return TraceSummary(
        iterations=len(history),
        final_utility=utilities[-1] if utilities else float("nan"),
        settling=settling_iteration(utilities, band=band),
        oscillation=tail_oscillation(utilities),
        price_drift=price_movement(history),
        violated_iterations=violation_duration(history),
        dropped_samples=int(dropped_samples),
    )
