"""Cross-workload algorithm comparison harness.

The paper compares LLA qualitatively against the deadline-slicing family
(§7); this harness quantifies the comparison across workload families:
for each generated workload it runs LLA, the centralized oracle and the
three slicing heuristics, and aggregates utility gaps and feasibility
rates.  Used by ``benchmarks/bench_baseline_sweep.py`` to produce the
"who wins, by how much, where" table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.centralized import solve_centralized
from repro.baselines.slicing import (
    bst_slicing,
    evaluate_assignment,
    even_slicing,
    proportional_slicing,
)
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.model.task import TaskSet
from repro.workloads.generator import GeneratorConfig, random_workload

__all__ = ["AlgorithmStats", "ComparisonReport", "compare_algorithms",
           "sweep_random_workloads"]

_SLICERS: Dict[str, Callable[[TaskSet], Dict[str, float]]] = {
    "even-slicing": even_slicing,
    "proportional-slicing": proportional_slicing,
    "bst-slicing": bst_slicing,
}


@dataclass
class AlgorithmStats:
    """Aggregated outcomes of one algorithm over a workload sweep."""

    name: str
    utilities: List[float] = field(default_factory=list)
    feasible_count: int = 0
    runs: int = 0

    def record(self, utility: float, feasible: bool) -> None:
        self.utilities.append(utility)
        self.feasible_count += int(feasible)
        self.runs += 1

    @property
    def mean_utility(self) -> float:
        return sum(self.utilities) / len(self.utilities) \
            if self.utilities else float("nan")

    @property
    def feasibility_rate(self) -> float:
        return self.feasible_count / self.runs if self.runs else 0.0


@dataclass
class ComparisonReport:
    """Sweep outcome: per-algorithm stats plus per-workload gaps."""

    stats: Dict[str, AlgorithmStats]
    #: LLA utility minus oracle utility per workload (≈ 0 is perfect).
    lla_oracle_gaps: List[float]
    #: oracle utility minus best slicing utility per workload (≥ 0 means
    #: optimization buys something structurally).
    optimization_margins: List[float]

    def lla_matches_oracle(self, tol: float = 1.0) -> bool:
        return all(abs(g) <= tol for g in self.lla_oracle_gaps)

    def mean_optimization_margin(self) -> float:
        if not self.optimization_margins:
            return 0.0
        return sum(self.optimization_margins) / len(self.optimization_margins)


def compare_algorithms(taskset: TaskSet,
                       max_iterations: int = 1500) -> Dict[str, object]:
    """All algorithms on one workload → ``{name: AssignmentScore}``."""
    scores: Dict[str, object] = {}
    lla = LLAOptimizer(taskset, LLAConfig(max_iterations=max_iterations)).run()
    scores["lla"] = evaluate_assignment(taskset, lla.latencies)
    oracle = solve_centralized(taskset)
    scores["centralized"] = evaluate_assignment(taskset, oracle.latencies)
    for name, slicer in _SLICERS.items():
        scores[name] = evaluate_assignment(taskset, slicer(taskset))
    return scores


def sweep_random_workloads(
    seeds=range(6),
    config: Optional[GeneratorConfig] = None,
    max_iterations: int = 1200,
) -> ComparisonReport:
    """Run the comparison over a family of random provisioned workloads."""
    config = config or GeneratorConfig(
        n_tasks=4, n_resources=6, max_subtasks=5, provisioning=0.8
    )
    stats = {
        name: AlgorithmStats(name)
        for name in ["lla", "centralized", *_SLICERS]
    }
    gaps: List[float] = []
    margins: List[float] = []
    for seed in seeds:
        taskset = random_workload(config, seed=seed)
        scores = compare_algorithms(taskset, max_iterations=max_iterations)
        for name, score in scores.items():
            # Slight hover infeasibility of dual iterates is not a miss.
            feasible = score.feasible or score.max_load <= 1.01
            stats[name].record(score.utility, feasible)
        gaps.append(scores["lla"].utility - scores["centralized"].utility)
        best_slicing = max(
            scores[name].utility for name in _SLICERS
        )
        margins.append(scores["centralized"].utility - best_slicing)
    return ComparisonReport(
        stats=stats,
        lla_oracle_gaps=gaps,
        optimization_margins=margins,
    )
