"""Report formatting: the paper's tables and figure series as text/CSV.

The experiment drivers return plain data; this module renders it the way
the paper presents it — Table 1's parameter/result grid, and per-figure
``(x, series…)`` columns — so the benchmark harness can print rows a reader
can compare side by side with the paper.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Mapping, Optional, Sequence

from repro.model.task import TaskSet

__all__ = [
    "format_table",
    "format_table1",
    "series_to_csv",
    "format_comparison",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(line + "\n")
    out.write("-" * len(line) + "\n")
    for row in str_rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table1(taskset: TaskSet, latencies: Mapping[str, float],
                  paper_latencies: Optional[Mapping[str, float]] = None) -> str:
    """Render Table 1: per-subtask parameters and optimization results.

    When ``paper_latencies`` is given, a "Paper lat." row is included for
    side-by-side comparison.
    """
    sections = []
    for task in taskset.tasks:
        headers = ["", *task.subtask_names]
        rows: List[List] = [
            ["Resource"] + [task.subtask(s).resource
                            for s in task.subtask_names],
            ["Exec time"] + [task.subtask(s).exec_time
                             for s in task.subtask_names],
            ["Latency"] + [latencies[s] for s in task.subtask_names],
        ]
        if paper_latencies is not None:
            rows.append(
                ["Paper lat."] + [paper_latencies.get(s, float("nan"))
                                  for s in task.subtask_names]
            )
        _path, crit = task.critical_path(latencies)
        rows.append(["Crit.Time", task.critical_time])
        rows.append(["Crit.Path", crit])
        sections.append(
            format_table(headers, rows, title=f"TASK {task.name}")
        )
    return "\n".join(sections)


def series_to_csv(columns: Mapping[str, Sequence]) -> str:
    """Render named columns as CSV (figure series for offline plotting)."""
    names = list(columns.keys())
    length = max((len(v) for v in columns.values()), default=0)
    out = io.StringIO()
    out.write(",".join(names) + "\n")
    for i in range(length):
        cells = []
        for name in names:
            col = columns[name]
            cells.append(_fmt(col[i]) if i < len(col) else "")
        out.write(",".join(cells) + "\n")
    return out.getvalue()


def format_comparison(scores: Mapping[str, "object"],
                      title: str = "Algorithm comparison") -> str:
    """Render baseline-vs-LLA scores (AssignmentScore-like objects)."""
    headers = ["algorithm", "utility", "feasible", "max load"]
    rows = []
    for name, score in scores.items():
        rows.append([
            name,
            getattr(score, "utility", float("nan")),
            getattr(score, "feasible", "?"),
            getattr(score, "max_load", float("nan")),
        ])
    return format_table(headers, rows, title=title)
