"""Analysis utilities: schedulability, admission control, traces, reports."""

from repro.analysis.admission import (
    AdmissionController,
    AdmissionDecision,
    certify_infeasible,
)
from repro.analysis.comparison import (
    AlgorithmStats,
    ComparisonReport,
    compare_algorithms,
    sweep_random_workloads,
)
from repro.analysis.reporting import (
    format_comparison,
    format_table,
    format_table1,
    series_to_csv,
)
from repro.analysis.trace import (
    TraceSummary,
    distance_to_reference,
    price_movement,
    settling_iteration,
    summarize_trace,
    tail_oscillation,
    violation_duration,
)
from repro.analysis.schedulability import (
    SchedulabilityAnalyzer,
    SchedulabilityReport,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "certify_infeasible",
    "compare_algorithms",
    "sweep_random_workloads",
    "ComparisonReport",
    "AlgorithmStats",
    "TraceSummary",
    "summarize_trace",
    "settling_iteration",
    "tail_oscillation",
    "distance_to_reference",
    "price_movement",
    "violation_duration",
    "SchedulabilityAnalyzer",
    "SchedulabilityReport",
    "format_table",
    "format_table1",
    "series_to_csv",
    "format_comparison",
]
