"""Schedulability testing via LLA (Section 5.4).

The paper observes LLA doubles as a schedulability test: on an
unschedulable workload the utilities and shares never converge, and —
decisively — the critical-path latencies sit far above the critical times.
Figure 7's six-task workload shows dampening oscillations that *look* like
slow convergence, but its critical paths run 1.75–2.41× the constraints.

:class:`SchedulabilityAnalyzer` packages that procedure: run LLA for a
budget of iterations, then report (a) utility oscillation over the tail,
(b) feasibility of the final iterate, and (c) the per-task ratio of
critical-path latency to critical time — the paper's own tie-breaker
between "slowly converging" and "infeasible".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.model.task import TaskSet

__all__ = ["SchedulabilityReport", "SchedulabilityAnalyzer"]


@dataclass
class SchedulabilityReport:
    """Outcome of the LLA schedulability test."""

    schedulable: bool
    iterations: int
    utility_oscillation: float
    feasible_final: bool
    critical_path_ratios: Dict[str, float]
    resource_load_ratios: Dict[str, float]
    max_ratio: float
    min_ratio: float
    max_load_ratio: float
    final_utility: float

    def summary(self) -> str:
        verdict = "SCHEDULABLE" if self.schedulable else "UNSCHEDULABLE"
        ratios = ", ".join(
            f"{t}: {r:.2f}x" for t, r in sorted(self.critical_path_ratios.items())
        )
        return (
            f"{verdict} after {self.iterations} iterations "
            f"(tail oscillation {self.utility_oscillation:.4f}, "
            f"max load {self.max_load_ratio:.2f}x availability, "
            f"critical-path/critical-time ratios: {ratios})"
        )


class SchedulabilityAnalyzer:
    """Runs the Section 5.4 procedure on a task set.

    The default budget of 2000 iterations comfortably covers the paper's
    workloads (the slowest, the Section 6 prototype, needs ≈1800 to settle
    inside the oscillation tolerance); callers screening many cheap
    workloads can lower it, accepting false UNSCHEDULABLE verdicts for
    slow-converging feasible workloads.
    """

    def __init__(self, iterations: int = 2000, tail_fraction: float = 0.3,
                 oscillation_tol: float = 0.02, ratio_tol: float = 1.05,
                 config: Optional[LLAConfig] = None):
        if not 0.0 < tail_fraction <= 1.0:
            raise ValueError(
                f"tail_fraction must be in (0, 1], got {tail_fraction!r}"
            )
        self.iterations = int(iterations)
        self.tail_fraction = float(tail_fraction)
        self.oscillation_tol = float(oscillation_tol)
        self.ratio_tol = float(ratio_tol)
        self.config = config

    def analyze(self, taskset: TaskSet) -> SchedulabilityReport:
        """Run LLA and classify the workload.

        A workload is reported schedulable when the utility's tail
        oscillation (relative spread over the last ``tail_fraction`` of
        the trace) is below ``oscillation_tol`` *and* every task's
        critical path ends within ``ratio_tol`` of its critical time.
        """
        config = self.config or LLAConfig(
            max_iterations=self.iterations,
            record_history=True,
            stop_on_convergence=False,
        )
        optimizer = LLAOptimizer(taskset, config)
        result = optimizer.run(self.iterations)

        trace = np.array(result.utility_trace())
        tail = trace[int(len(trace) * (1.0 - self.tail_fraction)):]
        scale = max(1.0, float(np.max(np.abs(tail)))) if tail.size else 1.0
        oscillation = float(tail.max() - tail.min()) / scale if tail.size else 0.0

        ratios = {
            task.name:
                task.critical_path(result.latencies)[1] / task.critical_time
            for task in taskset.tasks
        }
        load_ratios = {
            rname: load / taskset.resources[rname].availability
            for rname, load in
            taskset.resource_loads(result.latencies).items()
        }
        feasible = taskset.is_feasible(result.latencies, tol=1e-2)
        schedulable = (
            oscillation <= self.oscillation_tol
            and max(ratios.values()) <= self.ratio_tol
            and max(load_ratios.values()) <= self.ratio_tol
            and feasible
        )
        return SchedulabilityReport(
            schedulable=schedulable,
            iterations=result.iterations,
            utility_oscillation=oscillation,
            feasible_final=feasible,
            critical_path_ratios=ratios,
            resource_load_ratios=load_ratios,
            max_ratio=max(ratios.values()),
            min_ratio=min(ratios.values()),
            max_load_ratio=max(load_ratios.values()),
            final_utility=result.utility,
        )
