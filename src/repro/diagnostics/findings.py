"""Structured findings: what the convergence diagnostics conclude.

A :class:`Finding` is one diagnosis — a named detector, a severity, a
one-line human summary and a machine-readable detail payload — so the
``repro diagnose`` CLI, tests and dashboards all consume the same
objects instead of parsing log text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.errors import DiagnosticsError

__all__ = ["SEVERITIES", "Finding", "worst_severity", "findings_to_dicts"]

#: Ordered mild → severe; comparisons use this index.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Finding:
    """One diagnostic conclusion about a run."""

    detector: str
    severity: str
    summary: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise DiagnosticsError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )
        if not self.detector:
            raise DiagnosticsError("finding detector must be non-empty")

    @property
    def rank(self) -> int:
        return SEVERITIES.index(self.severity)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "summary": self.summary,
            "details": dict(self.details),
        }


def worst_severity(findings: Sequence[Finding]) -> str:
    """The most severe level present (``"info"`` for an empty list)."""
    if not findings:
        return SEVERITIES[0]
    return SEVERITIES[max(finding.rank for finding in findings)]


def findings_to_dicts(findings: Sequence[Finding]) -> List[Dict[str, Any]]:
    """JSON-safe encoding, most severe first (stable within a level)."""
    ordered = sorted(findings, key=lambda f: -f.rank)
    return [finding.to_dict() for finding in ordered]
