"""The diagnostics engine: live observation or post-hoc trace replay.

One :class:`DiagnosticsEngine` instance holds a bounded window of recent
:class:`~repro.core.state.IterationRecord` observations and runs every
detector over it on demand.  The same engine serves both modes:

* **live** — pass ``engine.observe`` as the optimizer's/runtime's
  ``on_iteration``/``on_round`` callback and call :meth:`report`
  whenever a health readout is wanted;
* **replay** — :func:`diagnose_history` / :func:`diagnose_trace_file`
  run one report over a finished history or a JSONL trace (the
  replay==live invariant makes the two equivalent).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.core.state import IterationRecord
from repro.diagnostics.detectors import (
    assess_feasibility_margin,
    detect_escalation_streaks,
    detect_infeasible_churn,
    detect_oscillation,
    detect_stall,
)
from repro.diagnostics.findings import Finding, worst_severity
from repro.errors import DiagnosticsError
from repro.model.task import TaskSet

__all__ = ["DiagnosticsEngine", "diagnose_history", "diagnose_trace_file"]


class DiagnosticsEngine:
    """Runs every convergence detector over a sliding window.

    Parameters
    ----------
    window:
        Iterations of history retained (and the tail length the
        detectors inspect).  Must be at least 8 — below that no
        detector can distinguish a pathology from startup transients.
    taskset:
        Optional model; with it the feasibility-margin assessment is
        exact instead of congestion-bit based.
    """

    def __init__(self, window: int = 100,
                 taskset: Optional[TaskSet] = None) -> None:
        if window < 8:
            raise DiagnosticsError(
                f"diagnostics window must be >= 8, got {window!r}"
            )
        self.window = int(window)
        self.taskset = taskset
        self._records: Deque[IterationRecord] = deque(maxlen=self.window)

    def observe(self, record: IterationRecord) -> None:
        """Feed one iteration (usable as an ``on_iteration`` callback)."""
        self._records.append(record)

    def extend(self, history: Sequence[IterationRecord]) -> None:
        """Feed a whole history (keeps only the last ``window``)."""
        for record in history:
            self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def report(self) -> List[Finding]:
        """Run every detector over the current window, severe first."""
        history = list(self._records)
        findings: List[Finding] = []
        findings.extend(detect_oscillation(history, window=self.window))
        findings.extend(detect_stall(history, window=self.window))
        findings.extend(detect_infeasible_churn(history, window=self.window))
        findings.extend(
            detect_escalation_streaks(history, window=self.window)
        )
        findings.extend(
            assess_feasibility_margin(history, taskset=self.taskset)
        )
        return sorted(findings, key=lambda f: -f.rank)

    def health(self) -> str:
        """The worst severity currently present ("info" = healthy)."""
        return worst_severity(self.report())


def diagnose_history(history: Sequence[IterationRecord],
                     window: int = 100,
                     taskset: Optional[TaskSet] = None) -> List[Finding]:
    """One-shot diagnosis of a finished iteration history."""
    engine = DiagnosticsEngine(window=window, taskset=taskset)
    engine.extend(history)
    return engine.report()


def diagnose_trace_file(path: str, window: int = 100,
                        taskset: Optional[TaskSet] = None) -> List[Finding]:
    """Diagnose a recorded JSONL trace (``repro diagnose`` backend).

    Raises :class:`~repro.errors.DiagnosticsError` when the trace holds
    no iteration events.
    """
    from repro.telemetry.replay import records_from_trace_file

    records = records_from_trace_file(path)
    if not records:
        raise DiagnosticsError(
            f"no iteration events in trace {path!r}; nothing to diagnose"
        )
    return diagnose_history(records, window=window, taskset=taskset)
