"""Convergence health diagnostics for LLA runs.

Turns iteration histories (live callbacks or replayed traces) into
structured :class:`Finding` objects: limit-cycle detection on price
trajectories, stall detection with congestion attribution, feasibility
churn, step-size escalation audits and feasibility-margin tracking.
Surfaced on the command line as ``repro diagnose``.
"""

from repro.diagnostics.detectors import (
    assess_feasibility_margin,
    detect_escalation_streaks,
    detect_infeasible_churn,
    detect_oscillation,
    detect_stall,
)
from repro.diagnostics.engine import (
    DiagnosticsEngine,
    diagnose_history,
    diagnose_trace_file,
)
from repro.diagnostics.findings import (
    SEVERITIES,
    Finding,
    findings_to_dicts,
    worst_severity,
)

__all__ = [
    "SEVERITIES",
    "Finding",
    "findings_to_dicts",
    "worst_severity",
    "DiagnosticsEngine",
    "diagnose_history",
    "diagnose_trace_file",
    "detect_oscillation",
    "detect_stall",
    "detect_infeasible_churn",
    "detect_escalation_streaks",
    "assess_feasibility_margin",
]
