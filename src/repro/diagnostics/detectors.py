"""Convergence-pathology detectors over LLA iteration histories.

Each detector is a pure function from a ``Sequence[IterationRecord]``
(live history or a replayed trace — the two are interchangeable by the
replay==live invariant) to a list of
:class:`~repro.diagnostics.findings.Finding` objects.  The pathologies
are the ones the paper's protocol actually exhibits when mis-tuned:

* **oscillation** — a price trajectory locked in a limit cycle: its
  per-iteration deltas keep alternating sign and the cycle's amplitude
  is not decaying.  The classic cause is a step size γ too large for
  the share functions' curvature (Section 5.2).
* **stall** — prices have stopped moving but the assignment is still
  infeasible: the dual iteration reached a fixed point that does not
  clear congestion (γ too small, or capacity genuinely insufficient).
  Attribution names the resources congested through most of the tail.
* **infeasible churn** — the global feasibility bit keeps flipping:
  the system repeatedly enters and exits constraint violation instead
  of settling on either side.
* **escalation streak** — a resource has been congested for so many
  consecutive iterations that the adaptive step-size heuristic must
  have escalated γ to its cap without clearing the congestion — the
  heuristic is saturated and no longer helping.
* **feasibility margin** — how close the final assignment sits to its
  constraints; a thin margin converges but has no headroom for load
  error (Section 6.3's correction scenarios).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state import IterationRecord
from repro.diagnostics.findings import Finding
from repro.model.task import TaskSet

__all__ = [
    "detect_oscillation",
    "detect_stall",
    "detect_infeasible_churn",
    "detect_escalation_streaks",
    "assess_feasibility_margin",
]


def _price_series(history: Sequence[IterationRecord]) -> Dict[str, np.ndarray]:
    """Per-resource price trajectories over the history."""
    if not history:
        return {}
    names = sorted(history[-1].resource_prices)
    return {
        name: np.asarray(
            [rec.resource_prices.get(name, 0.0) for rec in history],
            dtype=float,
        )
        for name in names
    }


def _sign_flip_rate(deltas: np.ndarray, scale: float) -> float:
    """Fraction of consecutive delta pairs that alternate sign.

    Deltas smaller than a scale-relative epsilon count as zero (no
    direction), so numerical jitter on a settled trajectory does not
    read as oscillation.
    """
    eps = max(scale, 1e-12) * 1e-6
    signs = np.sign(np.where(np.abs(deltas) > eps, deltas, 0.0))
    moving = signs[signs != 0.0]
    if moving.size < 2:
        return 0.0
    flips = np.sum(moving[1:] * moving[:-1] < 0)
    return float(flips) / float(moving.size - 1)


def detect_oscillation(history: Sequence[IterationRecord],
                       window: int = 50,
                       flip_threshold: float = 0.6,
                       decay_ratio: float = 0.5) -> List[Finding]:
    """Limit-cycle detection on each resource-price trajectory.

    A trajectory is oscillating when, over the tail ``window``: its
    deltas alternate sign in at least ``flip_threshold`` of consecutive
    pairs, and the second half's peak-to-peak amplitude is at least
    ``decay_ratio`` of the first half's (i.e. the cycle is not dying
    out).  Severity is critical — an un-damped limit cycle never
    converges.
    """
    findings: List[Finding] = []
    for name, series in _price_series(history).items():
        tail = series[-window:]
        if tail.size < 8:
            continue
        scale = float(np.max(np.abs(tail)))
        deltas = np.diff(tail)
        flip_rate = _sign_flip_rate(deltas, scale)
        if flip_rate < flip_threshold:
            continue
        half = tail.size // 2
        first_ptp = float(np.ptp(tail[:half]))
        second_ptp = float(np.ptp(tail[half:]))
        amplitude_floor = max(scale, 1e-12) * 1e-4
        if second_ptp <= amplitude_floor:
            continue  # flipping inside numerical noise: settled
        if second_ptp < decay_ratio * first_ptp:
            continue  # amplitude is decaying: damped, let it run
        findings.append(Finding(
            detector="oscillation",
            severity="critical",
            summary=(
                f"resource {name!r} price is limit-cycling: "
                f"{flip_rate:.0%} of steps reverse direction and the "
                f"amplitude ({second_ptp:.4g}) is not decaying"
            ),
            details={
                "resource": name,
                "flip_rate": flip_rate,
                "first_half_amplitude": first_ptp,
                "second_half_amplitude": second_ptp,
                "window": int(min(window, tail.size)),
                "hint": "step size gamma likely too large; lower "
                        "initial_gamma or max_gamma",
            },
        ))
    return findings


def _congestion_tally(
    tail: Sequence[IterationRecord],
) -> Tuple[Dict[str, int], int]:
    """(per-resource congested-iteration counts, iterations violated)."""
    counts: Dict[str, int] = {}
    violated = 0
    for rec in tail:
        if rec.congested_resources or rec.congested_paths:
            violated += 1
        for name in rec.congested_resources:
            counts[name] = counts.get(name, 0) + 1
    return counts, violated


def detect_stall(history: Sequence[IterationRecord],
                 window: int = 50,
                 movement_tol: float = 1e-4,
                 violation_fraction: float = 0.8) -> List[Finding]:
    """Stalled-while-infeasible detection with congestion attribution.

    Fires when, over the tail ``window``, the mean absolute
    per-iteration resource-price change is below ``movement_tol`` (the
    dual iteration has effectively stopped) while at least
    ``violation_fraction`` of those iterations still violate a
    constraint.  Attribution lists the resources congested in at least
    ``violation_fraction`` of the tail.
    """
    tail = list(history[-window:])
    if len(tail) < 4:
        return []
    moves: List[float] = []
    for prev, cur in zip(tail, tail[1:]):
        for name, price in cur.resource_prices.items():
            moves.append(abs(price - prev.resource_prices.get(name, 0.0)))
    movement = float(np.mean(moves)) if moves else 0.0
    if movement > movement_tol:
        return []
    counts, violated = _congestion_tally(tail)
    if violated < violation_fraction * len(tail):
        return []
    cutoff = violation_fraction * len(tail)
    culprits = sorted(
        name for name, count in counts.items() if count >= cutoff
    )
    return [Finding(
        detector="stall",
        severity="critical",
        summary=(
            f"prices stalled (mean movement {movement:.3g}/iter) while "
            f"{violated}/{len(tail)} tail iterations stay infeasible; "
            f"persistent congestion on {culprits or '(paths only)'}"
        ),
        details={
            "price_movement": movement,
            "violated_iterations": violated,
            "window": len(tail),
            "congested_resources": culprits,
            "congestion_counts": dict(sorted(counts.items())),
            "hint": "gamma too small to clear congestion, or the "
                    "workload is not schedulable on these resources",
        },
    )]


def detect_infeasible_churn(history: Sequence[IterationRecord],
                            window: int = 100,
                            min_flips: int = 4) -> List[Finding]:
    """Feasibility-bit churn: repeated entry/exit of constraint violation.

    Counts transitions of the per-iteration feasibility bit over the
    tail ``window``; at or above ``min_flips`` transitions the run is
    churning rather than settling.  Severity is critical when the run
    *ends* infeasible, warning when it happens to end feasible.
    """
    tail = list(history[-window:])
    if len(tail) < 4:
        return []
    bits = [
        not (rec.congested_resources or rec.congested_paths)
        for rec in tail
    ]
    flips = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
    if flips < min_flips:
        return []
    ends_feasible = bits[-1]
    return [Finding(
        detector="infeasible_churn",
        severity="warning" if ends_feasible else "critical",
        summary=(
            f"feasibility flipped {flips} times in the last {len(tail)} "
            f"iterations (ends {'feasible' if ends_feasible else 'infeasible'})"
        ),
        details={
            "flips": flips,
            "window": len(tail),
            "ends_feasible": ends_feasible,
            "infeasible_iterations": int(len(bits) - sum(bits)),
            "hint": "assignment keeps crossing its constraints; check "
                    "oscillation findings and step-size settings",
        },
    )]


def detect_escalation_streaks(history: Sequence[IterationRecord],
                              window: int = 100,
                              streak_threshold: int = 8) -> List[Finding]:
    """Audit of the adaptive step-size heuristic's escalations.

    The heuristic doubles a resource's γ every congested iteration (up
    to its cap), so a congestion streak of ``streak_threshold``
    iterations means γ has long since saturated without clearing the
    congestion — escalation is no longer doing anything.  One warning
    finding per saturated resource.
    """
    tail = list(history[-window:])
    if not tail:
        return []
    streaks: Dict[str, int] = {}
    current: Dict[str, int] = {}
    for rec in tail:
        congested = set(rec.congested_resources)
        for name in congested:
            current[name] = current.get(name, 0) + 1
            if current[name] > streaks.get(name, 0):
                streaks[name] = current[name]
        for name in list(current):
            if name not in congested:
                current[name] = 0
    findings: List[Finding] = []
    for name in sorted(streaks):
        streak = streaks[name]
        if streak < streak_threshold:
            continue
        findings.append(Finding(
            detector="escalation_streak",
            severity="warning",
            summary=(
                f"resource {name!r} congested for {streak} consecutive "
                f"iterations; adaptive gamma is saturated at its cap"
            ),
            details={
                "resource": name,
                "streak": streak,
                "window": len(tail),
                "hint": "raising max_gamma will not help a saturated "
                        "streak; capacity or workload change needed",
            },
        ))
    return findings


def assess_feasibility_margin(history: Sequence[IterationRecord],
                              taskset: Optional[TaskSet] = None,
                              thin_fraction: float = 0.05,
                              tol: float = 1e-2) -> List[Finding]:
    """How much headroom the final assignment leaves.

    With a ``taskset``, margins are exact: per-resource
    ``availability − load`` and per-task ``critical_time − critical
    path latency``, reported as one finding whose severity is critical
    when any relative margin is below ``-tol`` (the repo's feasibility
    tolerance — a converged run sits *at* the boundary, not clear of
    it), warning when the tightest relative margin is under
    ``thin_fraction``, info otherwise.  Without a taskset (a bare
    trace), falls back to the recorded congestion bits: the margins
    cannot be computed, only violated/not-violated.
    """
    if not history:
        return []
    final = history[-1]
    if taskset is None:
        # The congestion bit alone cannot tell a hard violation from the
        # converged at-the-boundary state, so never escalate past warning
        # here: persistent or flapping infeasibility is the stall and
        # churn detectors' job.
        violated = bool(final.congested_resources or final.congested_paths)
        return [Finding(
            detector="feasibility_margin",
            severity="warning" if violated else "info",
            summary=(
                "final iteration shows congestion "
                f"(resources {sorted(final.congested_resources)}, "
                f"{len(final.congested_paths)} paths); pass the workload "
                "for exact margins"
                if violated else
                "final assignment is feasible (margins unavailable "
                "without the taskset)"
            ),
            details={
                "exact": False,
                "congested_resources": sorted(final.congested_resources),
                "congested_paths": len(final.congested_paths),
            },
        )]
    margins: Dict[str, float] = {}
    relative: Dict[str, float] = {}
    for name, load in final.resource_loads.items():
        availability = taskset.resources[name].availability
        margins[f"resource:{name}"] = availability - load
        relative[f"resource:{name}"] = (
            (availability - load) / availability if availability else 0.0
        )
    for task in taskset.tasks:
        latency = final.critical_paths.get(task.name)
        if latency is None:
            continue
        margins[f"task:{task.name}"] = task.critical_time - latency
        relative[f"task:{task.name}"] = (
            (task.critical_time - latency) / task.critical_time
            if task.critical_time else 0.0
        )
    if not margins:
        return []
    tightest = min(margins, key=lambda k: relative[k])
    worst_rel = relative[tightest]
    if worst_rel < -tol:
        severity = "critical"
        verdict = "violated"
    elif worst_rel < thin_fraction:
        severity = "warning"
        verdict = f"thin ({worst_rel:.1%} relative headroom)"
    else:
        severity = "info"
        verdict = f"healthy ({worst_rel:.1%} relative headroom)"
    return [Finding(
        detector="feasibility_margin",
        severity=severity,
        summary=(
            f"tightest constraint is {tightest} with margin "
            f"{margins[tightest]:.4g}: {verdict}"
        ),
        details={
            "exact": True,
            "tightest": tightest,
            "margin": margins[tightest],
            "relative_margin": worst_rel,
            "margins": dict(sorted(margins.items())),
        },
    )]
