"""Experiment: resilience of the distributed runtime under scripted faults.

The paper argues that the continuously-running optimization "adjusts to
both workload and resource variations" (§1) and keeps converging on stale
information (§4–§5).  This driver quantifies the stronger, systems-level
claim our chaos subsystem makes checkable: when part of the *control
plane itself* fails — an agent crashes, the network blacks out, a
resource loses capacity — the runtime degrades gracefully and recovers.

Each scenario runs twice from the same seed: once fault-free (the
baseline trajectory) and once under a :class:`~repro.distributed.faults.
FaultPlan`.  The report measures:

* **dip depth** — the worst utility deficit against the fault-free
  trajectory at the same round, from the first fault onward;
* **recovery time** — rounds from the last repair action until the
  faulted trajectory re-enters (and stays inside) a band of ±1% of the
  fault-free final utility;
* **degraded-round safety** — while any controller runs degraded it must
  hold a critical-time-feasible assignment, so the number of degraded
  rounds on which a degraded task violates its deadline must be zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.distributed.faults import CrashWindow, FaultPlan, LossBurst
from repro.distributed.runtime import DistributedConfig, DistributedLLARuntime
from repro.harness import Check, ExperimentSpec, Param, register
from repro.workloads.paper import base_workload

__all__ = [
    "ResilienceReport",
    "ResilienceResult",
    "crash_restart_plan",
    "blackout_plan",
    "run_scenario",
    "run_crash_recovery",
    "run_blackout_recovery",
    "run_resilience",
    "SPEC",
]

#: Recovery band: within this fraction of the fault-free final utility.
RECOVERY_BAND = 0.01


@dataclass
class ResilienceReport:
    """Fault run vs fault-free baseline, from identical seeds."""

    scenario: str
    rounds: int
    fault_free_utility: float
    final_utility: float
    fault_start: int
    repair_round: int
    dip_depth: float
    recovery_round: Optional[int]
    degraded_rounds: int
    degraded_violations: int
    crashes: int
    messages_dropped: int
    utility_trace: List[float] = field(default_factory=list, repr=False)
    baseline_trace: List[float] = field(default_factory=list, repr=False)

    @property
    def recovery_time(self) -> Optional[int]:
        """Rounds from the repair action to sustained recovery (``None``
        when the run never re-enters the band)."""
        if self.recovery_round is None:
            return None
        return max(0, self.recovery_round - self.repair_round)

    def recovered(self) -> bool:
        """Final utility within the ±1% band of the fault-free baseline."""
        return (
            abs(self.final_utility - self.fault_free_utility)
            <= RECOVERY_BAND * abs(self.fault_free_utility)
        )

    def degradation_safe(self) -> bool:
        """No degraded controller ever violated its critical time."""
        return self.degraded_violations == 0

    def to_dict(self, include_traces: bool = False) -> Dict[str, object]:
        data = {
            "scenario": self.scenario,
            "rounds": self.rounds,
            "fault_free_utility": self.fault_free_utility,
            "final_utility": self.final_utility,
            "fault_start": self.fault_start,
            "repair_round": self.repair_round,
            "dip_depth": self.dip_depth,
            "recovery_round": self.recovery_round,
            "recovery_time": self.recovery_time,
            "degraded_rounds": self.degraded_rounds,
            "degraded_violations": self.degraded_violations,
            "crashes": self.crashes,
            "messages_dropped": self.messages_dropped,
            "recovered": self.recovered(),
            "degradation_safe": self.degradation_safe(),
        }
        if include_traces:
            data["utility_trace"] = self.utility_trace
            data["baseline_trace"] = self.baseline_trace
        return data

    def summary(self) -> str:
        recovery = (
            f"{self.recovery_time} rounds" if self.recovery_time is not None
            else "never"
        )
        return (
            f"{self.scenario}: utility {self.final_utility:.2f} vs "
            f"fault-free {self.fault_free_utility:.2f} "
            f"(recovered: {self.recovered()}), dip {self.dip_depth:.2f}, "
            f"recovery {recovery}, degraded rounds {self.degraded_rounds} "
            f"(violations: {self.degraded_violations})"
        )


def crash_restart_plan(agent: str = "resource:r0", crash_at: int = 400,
                       outage: int = 50, warm: bool = True) -> FaultPlan:
    """Crash one agent mid-run and restart it ``outage`` rounds later."""
    return FaultPlan(crashes=(
        CrashWindow(agent, at=crash_at, restart_at=crash_at + outage,
                    warm=warm),
    ))


def blackout_plan(start: int = 400, duration: int = 30) -> FaultPlan:
    """Total control-network blackout: every message dropped for
    ``duration`` rounds (the ``loss_probability == 1.0`` chaos case)."""
    return FaultPlan(loss_bursts=(
        LossBurst(start=start, end=start + duration, probability=1.0),
    ))


def _fault_bounds(plan: FaultPlan) -> tuple:
    """(first fault round, last repair round) of a plan."""
    starts = (
        [c.at for c in plan.crashes]
        + [p.start for p in plan.partitions]
        + [b.start for b in plan.loss_bursts]
        + [d.start for d in plan.duplications]
        + [r.start for r in plan.reorders]
        + [s.at for s in plan.capacity_shocks]
    )
    return (min(starts) if starts else 1, plan.last_round())


def run_scenario(
    plan: FaultPlan,
    scenario: str,
    rounds: int = 1200,
    seed: int = 0,
    staleness_limit: Optional[int] = 10,
    checkpoint_interval: int = 25,
    message_ttl: Optional[int] = 20,
) -> ResilienceReport:
    """Run a fault plan against its fault-free twin and report recovery.

    Both runs use the base workload and identical configuration apart
    from the plan, so every difference in the trajectories is caused by
    the scripted faults.
    """
    def build(with_plan: Optional[FaultPlan]) -> DistributedLLARuntime:
        return DistributedLLARuntime(
            base_workload(),
            DistributedConfig(
                rounds=rounds,
                seed=seed,
                staleness_limit=staleness_limit,
                checkpoint_interval=checkpoint_interval,
                message_ttl=message_ttl,
                fault_plan=with_plan,
                record_history=False,
            ),
        )

    baseline_rt = build(None)
    baseline_trace = [baseline_rt.step().utility for _ in range(rounds)]
    fault_free_utility = baseline_trace[-1]

    fault_rt = build(plan)
    fault_trace: List[float] = []
    degraded_rounds = 0
    degraded_violations = 0
    for _ in range(rounds):
        record = fault_rt.step()
        fault_trace.append(record.utility)
        degraded = fault_rt.degraded_controllers()
        if degraded:
            degraded_rounds += 1
            degraded_tasks = {name.split(":", 1)[1] for name in degraded}
            if any(key.task in degraded_tasks
                   for key in record.congested_paths):
                degraded_violations += 1

    fault_start, repair_round = _fault_bounds(plan)
    dip_depth = max(
        (b - f for b, f in zip(baseline_trace[fault_start - 1:],
                               fault_trace[fault_start - 1:])),
        default=0.0,
    )
    band = RECOVERY_BAND * abs(fault_free_utility)
    recovery_round: Optional[int] = None
    # Scan backwards: the recovery round is the first round after the
    # repair from which the trajectory never leaves the band again.
    for round_number in range(rounds, repair_round - 1, -1):
        if abs(fault_trace[round_number - 1] - fault_free_utility) > band:
            recovery_round = (
                round_number + 1 if round_number < rounds else None
            )
            break
    else:
        recovery_round = repair_round

    return ResilienceReport(
        scenario=scenario,
        rounds=rounds,
        fault_free_utility=fault_free_utility,
        final_utility=fault_trace[-1],
        fault_start=fault_start,
        repair_round=repair_round,
        dip_depth=dip_depth,
        recovery_round=recovery_round,
        degraded_rounds=degraded_rounds,
        degraded_violations=degraded_violations,
        crashes=len(plan.crashes),
        messages_dropped=fault_rt.bus.dropped,
        utility_trace=fault_trace,
        baseline_trace=baseline_trace,
    )


def run_crash_recovery(
    agent: str = "resource:r0",
    rounds: int = 1200,
    crash_at: int = 400,
    outage: int = 50,
    warm: bool = True,
    seed: int = 0,
    staleness_limit: Optional[int] = 10,
) -> ResilienceReport:
    """The flagship scenario: one resource agent down for ``outage``
    rounds mid-run, then restarted (warm by default)."""
    label = f"crash-restart({agent}, {'warm' if warm else 'cold'})"
    return run_scenario(
        crash_restart_plan(agent, crash_at=crash_at, outage=outage,
                           warm=warm),
        scenario=label,
        rounds=rounds,
        seed=seed,
        staleness_limit=staleness_limit,
    )


def run_blackout_recovery(
    rounds: int = 1200,
    start: int = 400,
    duration: int = 30,
    seed: int = 0,
    staleness_limit: Optional[int] = 10,
) -> ResilienceReport:
    """Total message blackout for ``duration`` rounds, then recovery."""
    return run_scenario(
        blackout_plan(start=start, duration=duration),
        scenario=f"blackout({duration} rounds)",
        rounds=rounds,
        seed=seed,
        staleness_limit=staleness_limit,
    )


@dataclass
class ResilienceResult:
    """The three flagship fault scenarios, run back to back."""

    reports: List[ResilienceReport]

    def by_scenario(self) -> Dict[str, ResilienceReport]:
        return {r.scenario: r for r in self.reports}


def run_resilience(
    rounds: int = 1200,
    crash_at: int = 400,
    outage: int = 50,
    blackout_duration: int = 30,
    seed: int = 0,
) -> ResilienceResult:
    """Run warm crash-restart, cold crash-restart, and blackout."""
    return ResilienceResult(reports=[
        run_crash_recovery(rounds=rounds, crash_at=crash_at,
                           outage=outage, warm=True, seed=seed),
        run_crash_recovery(rounds=rounds, crash_at=crash_at,
                           outage=outage, warm=False, seed=seed),
        run_blackout_recovery(rounds=rounds, start=crash_at,
                              duration=blackout_duration, seed=seed),
    ])


def _check_all_recover(result: ResilienceResult):
    measured = {}
    for report in result.reports:
        measured[f"final_utility.{report.scenario}"] = report.final_utility
    return all(r.recovered() for r in result.reports), measured


def _check_degradation_safe(result: ResilienceResult):
    measured = {
        f"degraded_violations.{r.scenario}": float(r.degraded_violations)
        for r in result.reports
    }
    return all(r.degradation_safe() for r in result.reports), measured


def _check_faults_bite(result: ResilienceResult):
    """The scenarios must actually disturb the run — a zero dip would
    mean the fault plan never fired and the recovery checks are vacuous."""
    measured = {f"dip_depth.{r.scenario}": r.dip_depth
                for r in result.reports}
    return all(r.dip_depth > 0.0 for r in result.reports), measured


def _payload(result: ResilienceResult):
    return {"reports": [r.to_dict() for r in result.reports]}


SPEC = register(ExperimentSpec(
    name="resilience",
    description="Control-plane fault recovery: crash-restart (warm and "
                "cold) and a total network blackout",
    source="Section 1 robustness claim under control-plane faults (ours)",
    runner=run_resilience,
    params=(
        Param("rounds", int, 1200, "distributed rounds per scenario"),
        Param("crash_at", int, 400, "round of the first fault"),
        Param("outage", int, 50, "rounds the crashed agent stays down"),
        Param("blackout_duration", int, 30,
              "rounds of total message blackout"),
        Param("seed", int, 0, "runtime RNG seed (shared with baseline)"),
    ),
    checks=(
        Check("all_scenarios_recover",
              "every fault run returns to within 1% of its fault-free "
              "twin's final utility", _check_all_recover),
        Check("degraded_rounds_safe",
              "no degraded controller ever violates its critical time "
              "while running on a fallback assignment",
              _check_degradation_safe),
        Check("faults_actually_bite",
              "each scenario produces a real utility dip (the recovery "
              "claims are not vacuous)", _check_faults_bite),
    ),
    payload=_payload,
    quick_params={"rounds": 600, "crash_at": 200, "outage": 30,
                  "blackout_duration": 20},
))


def main() -> None:
    print("Resilience: fault runs vs fault-free baselines (same seed)\n")
    for report in (
        run_crash_recovery(warm=True),
        run_crash_recovery(warm=False),
        run_blackout_recovery(),
    ):
        print(f"  {report.summary()}")
    print("\nRecovery is measured against a ±1% band around the "
          "fault-free final utility;\ndegraded rounds must never violate "
          "a critical-time constraint.")


if __name__ == "__main__":
    main()
