"""Experiment: Figure 7 — using LLA to test workload schedulability.

The six-task workload with *unscaled* critical times is run for 100
iterations, recording total utility and the per-resource share sums.

Paper claims checked:

* utility and shares do not converge to a feasible operating point;
* the constraints are grossly violated — the paper reports critical-path
  latencies between 1.75× and 2.41× the critical times (e.g. task 1 at
  79 ms against a 45 ms constraint).

Reproduction note: an infeasible dual iteration diverges along a *ray*
whose violation split between the two constraint families depends on the
relative step sizes and the topology.  Under the paper's equal
``γ_r = γ_p`` our reconstructed topology absorbs the violation in the
resource constraints (share sums ≈ 2.1 × availability, critical paths just
above the deadlines); the paper's run absorbed it in the path constraints.
Both are the same binary verdict.  ``path_gamma_divisor`` steers the ray:
with ``γ_p = γ_r / 500`` our run lands in the paper's regime (critical
paths up to ≈ 2.2× the constraint with sustained oscillation); the ablation
bench sweeps this knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.stepsize import FixedStepSize
from repro.harness import Check, ExperimentSpec, Param, register
from repro.workloads.paper import unschedulable_workload

__all__ = ["Fig7Result", "run_fig7", "SPEC"]


@dataclass
class Fig7Result:
    """Utility and share-sum traces on the unschedulable workload."""

    iterations: int
    utilities: List[float]
    share_sums: Dict[str, List[float]]
    critical_path_ratios: Dict[str, float]
    load_ratios: Dict[str, float]
    feasible: bool

    @property
    def max_critical_path_ratio(self) -> float:
        return max(self.critical_path_ratios.values())

    @property
    def max_load_ratio(self) -> float:
        return max(self.load_ratios.values())

    def violates_constraints(self, tol: float = 1.05) -> bool:
        """The paper's verdict: some constraint family is grossly violated."""
        return (
            self.max_critical_path_ratio > tol
            or self.max_load_ratio > tol
        )


def run_fig7(iterations: int = 100,
             path_gamma_divisor: Optional[float] = None) -> Fig7Result:
    """Run the schedulability experiment.

    ``path_gamma_divisor=None`` uses the paper's equal-γ adaptive default;
    a numeric value uses fixed ``γ_r = 1, γ_p = 1/divisor`` to steer the
    divergence ray toward the paper's path-violated regime.
    """
    taskset = unschedulable_workload()
    if path_gamma_divisor is None:
        config = LLAConfig(
            max_iterations=iterations,
            stop_on_convergence=False,
            max_latency_factor=3.0,
        )
    else:
        config = LLAConfig(
            step_policy=FixedStepSize(1.0, path_gamma=1.0 / path_gamma_divisor),
            max_iterations=iterations,
            stop_on_convergence=False,
            max_latency_factor=3.0,
        )
    result = LLAOptimizer(taskset, config).run()
    share_sums = {
        rname: result.load_trace(rname) for rname in taskset.resources
    }
    ratios = {
        task.name:
            task.critical_path(result.latencies)[1] / task.critical_time
        for task in taskset.tasks
    }
    load_ratios = {
        rname: load / taskset.resources[rname].availability
        for rname, load in taskset.resource_loads(result.latencies).items()
    }
    return Fig7Result(
        iterations=iterations,
        utilities=result.utility_trace(),
        share_sums=share_sums,
        critical_path_ratios=ratios,
        load_ratios=load_ratios,
        feasible=taskset.is_feasible(result.latencies, tol=1e-2),
    )


def _check_infeasible(result: Fig7Result):
    return not result.feasible


def _check_violates(result: Fig7Result):
    return result.violates_constraints(), {
        "max_critical_path_ratio": result.max_critical_path_ratio,
        "max_load_ratio": result.max_load_ratio,
    }


def _check_gross_violation(result: Fig7Result):
    worst = max(result.max_critical_path_ratio, result.max_load_ratio)
    return worst > 1.5, {"worst_constraint_ratio": worst}


def _payload(result: Fig7Result):
    return {
        "iterations": result.iterations,
        "feasible": result.feasible,
        "critical_path_ratios": result.critical_path_ratios,
        "load_ratios": result.load_ratios,
        "max_critical_path_ratio": result.max_critical_path_ratio,
        "max_load_ratio": result.max_load_ratio,
    }


SPEC = register(ExperimentSpec(
    name="fig7",
    description="Figure 7: LLA as a schedulability test on the "
                "unschedulable six-task workload",
    source="Section 5.4, Figure 7",
    runner=run_fig7,
    params=(
        Param("iterations", int, 100, "iteration budget"),
        Param("path_gamma_divisor", float, None,
              "None = the paper's equal-gamma default; a number steers "
              "the divergence ray (gamma_p = gamma_r / divisor)"),
    ),
    checks=(
        Check("does_not_converge",
              "utility and shares do not converge to a feasible "
              "operating point", _check_infeasible),
        Check("constraints_violated",
              "some constraint family is violated at the end of the "
              "budget", _check_violates),
        Check("violation_is_gross",
              "the violation is gross (>1.5x in the dominant family; "
              "paper: critical paths 1.75-2.41x on its ray)",
              _check_gross_violation),
    ),
    payload=_payload,
))


def main() -> None:
    for divisor, tag in ((None, "equal gamma (paper default)"),
                         (500.0, "gamma_p = gamma_r / 500 (paper's ray)")):
        result = run_fig7(path_gamma_divisor=divisor)
        u = np.asarray(result.utilities)
        print(f"Figure 7 [{tag}] after {result.iterations} iterations:")
        print(f"  feasible final iterate: {result.feasible}")
        print(f"  utility tail spread   : {u[-30:].max() - u[-30:].min():.2f}")
        print(
            "  critical-path ratios  : "
            + ", ".join(f"{t}={r:.2f}x"
                        for t, r in sorted(result.critical_path_ratios.items()))
        )
        print(f"  max share-sum ratio   : {result.max_load_ratio:.2f}x")
        print(f"  constraint violation verdict: {result.violates_constraints()}")
        print()


if __name__ == "__main__":
    main()
