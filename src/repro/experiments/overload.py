"""Experiment: the hardened service under overload and injected faults.

The paper's premise is that the allocation loop runs *continuously*
(§4.4) while the system misbehaves underneath it (§6).  PR 7's `churn`
experiment measured the polite version of that claim — one churn event
at a time, a loop that never wedges.  This driver scripts the impolite
version against :class:`~repro.service.supervisor.SupervisedService`:

* a **churn storm** (every task deregistered/re-registered in one tick,
  more subjects than the queue admits) must coalesce to a single batched
  rebuild, bounded queue depth, and counted sheds;
* an **injected loop stall** must trip the watchdog into
  snapshot-restores while brownout hysteresis enters degraded mode,
  answers every query from the last critical-time-feasible allocation,
  and sheds a storm of synthetic arrivals;
* a **corrupted snapshot** must demote the watchdog's restore to a
  counted cold reset, never an exception;
* a **checkpoint outage** must drive the snapshot path through seeded
  retries into an open circuit breaker, which recloses after cooldown.

The scenario runs twice with fresh in-memory telemetry; the two traces
(modulo the documented wall-duration fields) must be identical — chaos
runs are worthless as evidence unless they replay bit-for-bit.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.distributed.faults import (
    CheckpointCorruption,
    CheckpointOutage,
    ChurnStorm,
    FaultPlan,
    LoopStall,
)
from repro.errors import ServiceError
from repro.harness import Check, ExperimentSpec, Param, register
from repro.service import BrownoutConfig, HardeningConfig, SupervisedService
from repro.telemetry import Telemetry
from repro.workloads.paper import scaled_workload

__all__ = ["OverloadReport", "run_overload", "SPEC"]

# The fault schedule, in supervisor ticks.  Fixed rather than
# parameterized: the claims below reason about this exact choreography
# (storm while healthy, arrivals while degraded, corruption mid-stall,
# outage spanning one snapshot interval).
_STORM_AT = 30
_STALL_AT = 60
_CORRUPT_AT = 62
_ARRIVALS_AT = 64
_ARRIVAL_EVENTS = 6
_OUTAGE_START = 90
_OUTAGE_END = 96
#: Snapshot cadence; the breaker recloses at the first post-outage save.
_SNAPSHOT_INTERVAL = 10
#: Minimum run length: the outage must end, the breaker must get its
#: post-cooldown half-open trial (tick 100), and hysteresis must settle.
_MIN_TICKS = 105


@dataclass
class OverloadReport:
    """Everything the overload scenario measured."""

    ticks: int
    tasks: int
    queue_capacity: int
    attempted_queries: int
    answered_queries: int
    availability: float
    degraded_answers: int
    degraded_entries: int
    degraded_exits: int
    ends_degraded: bool
    transitions: List[Tuple[int, str]] = field(default_factory=list)
    queue_max_depth: int = 0
    queue_shed: int = 0
    queue_coalesced: int = 0
    degraded_shed: int = 0
    storm_rebuilds: int = 0
    supervisor_restarts: int = 0
    watchdog_fires: int = 0
    stall_ticks: int = 0
    retries: int = 0
    breaker_opens: int = 0
    breaker_state: str = "closed"
    checkpoint_failures: int = 0
    snapshot_corruptions: int = 0
    snapshots_taken: int = 0
    final_tasks: int = 0
    final_feasible: bool = False
    trace_events: Dict[str, int] = field(default_factory=dict)
    deterministic: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ticks": self.ticks,
            "tasks": self.tasks,
            "queue_capacity": self.queue_capacity,
            "attempted_queries": self.attempted_queries,
            "answered_queries": self.answered_queries,
            "availability": self.availability,
            "degraded_answers": self.degraded_answers,
            "degraded_entries": self.degraded_entries,
            "degraded_exits": self.degraded_exits,
            "ends_degraded": self.ends_degraded,
            "transitions": [list(t) for t in self.transitions],
            "queue_max_depth": self.queue_max_depth,
            "queue_shed": self.queue_shed,
            "queue_coalesced": self.queue_coalesced,
            "degraded_shed": self.degraded_shed,
            "storm_rebuilds": self.storm_rebuilds,
            "supervisor_restarts": self.supervisor_restarts,
            "watchdog_fires": self.watchdog_fires,
            "stall_ticks": self.stall_ticks,
            "retries": self.retries,
            "breaker_opens": self.breaker_opens,
            "breaker_state": self.breaker_state,
            "checkpoint_failures": self.checkpoint_failures,
            "snapshot_corruptions": self.snapshot_corruptions,
            "snapshots_taken": self.snapshots_taken,
            "final_tasks": self.final_tasks,
            "final_feasible": self.final_feasible,
            "trace_events": dict(self.trace_events),
            "deterministic": self.deterministic,
        }

    def summary(self) -> str:
        return (
            f"availability {self.availability:.4f} over "
            f"{self.attempted_queries} queries "
            f"({self.degraded_answers} degraded); "
            f"degraded {self.degraded_entries}x in / "
            f"{self.degraded_exits}x out; "
            f"queue depth <= {self.queue_max_depth}/{self.queue_capacity}, "
            f"shed {self.queue_shed}+{self.degraded_shed}; "
            f"{self.supervisor_restarts} supervisor restarts, "
            f"{self.retries} retries, {self.breaker_opens} breaker opens; "
            f"deterministic: {self.deterministic}"
        )


def _trace_tuples(telemetry: Telemetry) -> List[Tuple[Any, ...]]:
    """The determinism-comparable view of an in-memory trace: every
    event's (kind, ts, data), with ``duration_s`` and the
    ``metrics_snapshot`` payload stripped — the only fields documented
    to differ between otherwise identical runs (measured wall
    durations)."""
    sink = telemetry.tracer.sinks[0]
    return [
        (ev.kind, ev.ts,
         tuple(sorted((k, repr(v)) for k, v in ev.data.items()
                      if k != "duration_s"))
         if ev.kind != "metrics_snapshot" else ())
        for ev in sink.events  # type: ignore[attr-defined]
    ]


def _fault_plan(storm_events: int, stall_ticks: int) -> FaultPlan:
    return FaultPlan(
        churn_storms=(
            ChurnStorm(at=_STORM_AT, events=storm_events, kind="oscillate"),
            ChurnStorm(at=_ARRIVALS_AT, events=_ARRIVAL_EVENTS,
                       kind="arrivals"),
        ),
        loop_stalls=(LoopStall(at=_STALL_AT, ticks=stall_ticks),),
        checkpoint_corruptions=(CheckpointCorruption(at=_CORRUPT_AT),),
        checkpoint_outages=(
            CheckpointOutage(start=_OUTAGE_START, end=_OUTAGE_END),
        ),
    )


def _run_once(copies: int, critical_time_factor: float, ticks: int,
              queue_capacity: int, storm_events: int, stall_ticks: int,
              seed: int, telemetry: Telemetry) -> Dict[str, Any]:
    taskset = scaled_workload(copies,
                              critical_time_factor=critical_time_factor)
    tasks = list(taskset.tasks)
    names = [task.name for task in tasks]
    plan = _fault_plan(storm_events, stall_ticks)
    with tempfile.TemporaryDirectory(prefix="overload-ckpt-") as snapdir:
        config = HardeningConfig(
            queue_capacity=queue_capacity,
            stall_deadline=3,
            snapshot_interval=_SNAPSHOT_INTERVAL,
            snapshot_dir=snapdir,
            brownout=BrownoutConfig(enter_after=2, exit_after=5),
            # A corrupted snapshot demotes a mid-stall restore to a cold
            # reset; give the fresh solve room to re-converge without
            # the unconverged run itself re-triggering brownout.
            reconverge_patience=max(200, ticks),
            seed=seed,
        )
        service = SupervisedService(
            list(taskset.resources.values()), tasks,
            config=config, telemetry=telemetry, fault_plan=plan,
        )
        attempted = answered = degraded_answers = 0
        storm_rebuilds = 0
        for tick in range(1, ticks + 1):
            epoch_before = service.service.stats().epoch
            service.tick()
            if tick == _STORM_AT:
                storm_rebuilds = service.service.stats().epoch - epoch_before
            for name in names:
                attempted += 1
                try:
                    view = service.query(name)
                except ServiceError:
                    continue  # counted: answered not incremented
                answered += 1
                if view.degraded:
                    degraded_answers += 1
        stats = service.stats()
        final_ts = service.service.taskset
        final_feasible = bool(
            final_ts is not None
            and final_ts.is_feasible(service.service.allocations(),
                                     tol=1e-2)
        )
    return {
        "stats": stats,
        "attempted": attempted,
        "answered": answered,
        "degraded_answers": degraded_answers,
        "storm_rebuilds": storm_rebuilds,
        "final_tasks": len(service.service.tasks),
        "final_feasible": final_feasible,
        "task_count": len(tasks),
    }


def run_overload(
    copies: int = 4,
    critical_time_factor: float = 20.0,
    ticks: int = 120,
    queue_capacity: int = 8,
    storm_events: int = 36,
    stall_ticks: int = 8,
    seed: int = 0,
) -> OverloadReport:
    """Drive the hardened service through the scripted fault schedule.

    The scenario executes **twice** with fresh in-memory telemetry; the
    report's ``deterministic`` flag records whether the two traces match
    event-for-event (the reproducibility claim chaos results rest on).
    """
    if ticks < _MIN_TICKS:
        raise ServiceError(
            f"ticks must be >= {_MIN_TICKS} to cover the fault schedule "
            f"(outage ends at {_OUTAGE_END}, breaker recloses at "
            f"{_OUTAGE_START + _SNAPSHOT_INTERVAL}), got {ticks!r}"
        )
    runs = []
    traces = []
    for _ in range(2):
        telemetry = Telemetry.in_memory()
        runs.append(_run_once(copies, critical_time_factor, ticks,
                              queue_capacity, storm_events, stall_ticks,
                              seed, telemetry))
        traces.append(_trace_tuples(telemetry))
        kinds: Dict[str, int] = {}
        for kind, _ts, _data in traces[-1]:
            kinds[kind] = kinds.get(kind, 0) + 1
        runs[-1]["trace_kinds"] = kinds
    first = runs[0]
    stats = first["stats"]
    attempted = first["attempted"]
    answered = first["answered"]
    return OverloadReport(
        ticks=ticks,
        tasks=first["task_count"],
        queue_capacity=queue_capacity,
        attempted_queries=attempted,
        answered_queries=answered,
        availability=answered / attempted if attempted else 0.0,
        degraded_answers=first["degraded_answers"],
        degraded_entries=stats.brownout_entries,
        degraded_exits=stats.brownout_exits,
        ends_degraded=stats.degraded,
        transitions=list(stats.transitions),
        queue_max_depth=stats.queue_max_depth,
        queue_shed=stats.queue_shed,
        queue_coalesced=stats.queue_coalesced,
        degraded_shed=stats.degraded_shed,
        storm_rebuilds=first["storm_rebuilds"],
        supervisor_restarts=stats.supervisor_restarts,
        watchdog_fires=stats.watchdog_fires,
        stall_ticks=stats.stall_ticks,
        retries=stats.retries,
        breaker_opens=stats.breaker_opens,
        breaker_state=stats.breaker_state,
        checkpoint_failures=stats.checkpoint_failures,
        snapshot_corruptions=stats.snapshot_corruptions,
        snapshots_taken=stats.snapshots_taken,
        final_tasks=first["final_tasks"],
        final_feasible=first["final_feasible"],
        trace_events=first["trace_kinds"],
        deterministic=traces[0] == traces[1],
    )


# -- claims -----------------------------------------------------------------------


def _check_availability(report: OverloadReport):
    """≥99% of queries answer through storm + stall + outage."""
    measured = {
        "availability": report.availability,
        "attempted_queries": float(report.attempted_queries),
        "degraded_answers": float(report.degraded_answers),
    }
    ok = report.attempted_queries > 0 and report.availability >= 0.99
    return ok, measured


def _check_degraded_hysteresis(report: OverloadReport):
    """Degraded mode is entered under stress, answers from the last-good
    allocation, and exits via hysteresis before the run ends."""
    measured = {
        "degraded_entries": float(report.degraded_entries),
        "degraded_exits": float(report.degraded_exits),
        "ends_degraded": 1.0 if report.ends_degraded else 0.0,
        "degraded_answers": float(report.degraded_answers),
    }
    ok = (report.degraded_entries >= 1 and report.degraded_exits >= 1
          and not report.ends_degraded and report.degraded_answers >= 1)
    return ok, measured


def _check_queue_bounded(report: OverloadReport):
    """The storm coalesces to one rebuild, depth stays under the cap,
    and overflow is shed rather than buffered."""
    measured = {
        "queue_max_depth": float(report.queue_max_depth),
        "queue_capacity": float(report.queue_capacity),
        "queue_shed": float(report.queue_shed),
        "queue_coalesced": float(report.queue_coalesced),
        "storm_rebuilds": float(report.storm_rebuilds),
    }
    ok = (report.queue_max_depth <= report.queue_capacity
          and report.queue_shed >= 1
          and report.queue_coalesced >= 1
          and report.storm_rebuilds == 1)
    return ok, measured


def _check_supervision_visible(report: OverloadReport):
    """Supervisor restarts, checkpoint retries, breaker trips, and the
    corrupted-snapshot demotion all land in telemetry."""
    events = report.trace_events
    measured = {
        "supervisor_restarts": float(report.supervisor_restarts),
        "retries": float(report.retries),
        "breaker_opens": float(report.breaker_opens),
        "snapshot_corruptions": float(report.snapshot_corruptions),
        "restart_events": float(events.get("supervisor_restart", 0)),
        "retry_events": float(events.get("retry", 0)),
        "breaker_open_events": float(events.get("breaker_open", 0)),
    }
    ok = (report.supervisor_restarts >= 1
          and events.get("supervisor_restart", 0) >= 1
          and report.retries >= 1 and events.get("retry", 0) >= 1
          and report.breaker_opens >= 1
          and events.get("breaker_open", 0) >= 1
          and report.snapshot_corruptions >= 1)
    return ok, measured


def _check_brownout_sheds_arrivals(report: OverloadReport):
    """The mid-stall arrivals storm is shed by degraded mode: membership
    ends unchanged and critical-time feasible."""
    measured = {
        "degraded_shed": float(report.degraded_shed),
        "final_tasks": float(report.final_tasks),
        "tasks": float(report.tasks),
        "final_feasible": 1.0 if report.final_feasible else 0.0,
    }
    ok = (report.degraded_shed >= 1
          and report.final_tasks == report.tasks
          and report.final_feasible)
    return ok, measured


def _check_deterministic(report: OverloadReport):
    """Two runs of the scenario produce identical traces."""
    return report.deterministic, {
        "deterministic": 1.0 if report.deterministic else 0.0,
    }


def _payload(report: OverloadReport):
    return report.to_dict()


SPEC = register(ExperimentSpec(
    name="overload",
    description="Hardened service under churn storms, loop stalls, "
                "checkpoint corruption and outages: availability, "
                "brownout hysteresis, bounded backpressure, supervision "
                "telemetry, deterministic replay",
    source="§4.4/§6 continuous-operation-under-stress claim (ours)",
    runner=run_overload,
    params=(
        Param("copies", int, 4,
              "clones of the 3-task base workload (12 tasks by default)"),
        Param("critical_time_factor", float, 20.0,
              "critical-time scaling (the schedulable regime)"),
        Param("ticks", int, 120,
              "supervisor ticks to run (>= 105: the fault schedule ends "
              "with the breaker reclosing at tick 100)"),
        Param("queue_capacity", int, 8,
              "churn-queue hard cap (below the 12 storm subjects, so "
              "sheds are exercised)"),
        Param("storm_events", int, 36,
              "raw events in the oscillating churn storm"),
        Param("stall_ticks", int, 8,
              "length of the injected loop stall"),
        Param("seed", int, 0, "retry-jitter RNG seed"),
    ),
    checks=(
        Check("availability_under_chaos",
              "queries keep answering (availability >= 99%) through the "
              "storm, the stall, and the checkpoint outage",
              _check_availability),
        Check("degraded_hysteresis",
              "brownout enters under stress, serves the last critical-"
              "time-feasible allocation, and exits via hysteresis",
              _check_degraded_hysteresis),
        Check("queue_bounded",
              "the churn storm coalesces to one batched rebuild with "
              "queue depth under the cap and overflow shed",
              _check_queue_bounded),
        Check("supervision_visible",
              "supervisor restarts, checkpoint retries, breaker trips "
              "and the corrupted-snapshot demotion appear in telemetry",
              _check_supervision_visible),
        Check("brownout_sheds_arrivals",
              "a synthetic-arrivals storm during degraded mode is shed; "
              "membership ends unchanged and feasible",
              _check_brownout_sheds_arrivals),
        Check("deterministic_replay",
              "two runs of the chaos scenario produce identical traces",
              _check_deterministic),
    ),
    payload=_payload,
    quick_params={"ticks": 110},
))


def main() -> OverloadReport:
    report = run_overload()
    print(report.summary())
    return report


if __name__ == "__main__":
    main()
