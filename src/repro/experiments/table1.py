"""Experiment: Table 1 — optimized latencies on the base workload.

Reproduces the paper's Table 1 "Latency" and "Crit.Path" rows: run LLA with
adaptive step sizes and the path-weighted utility on the three-task
workload until convergence, then report per-subtask latencies, per-task
critical paths and per-resource loads.

Paper claims checked:

* the algorithm converges;
* each task completes before its critical time;
* every critical path is within 1% below its critical time ("the critical
  path obtained when maximizing the path-weighted utility is always less
  than 1% smaller than the critical time");
* all resources are driven to (near) full availability — the workload was
  constructed to be close to congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.reporting import format_table1
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.harness import Check, ExperimentSpec, Param, register
from repro.model.task import TaskSet
from repro.workloads.paper import (
    TABLE1_CRITICAL_PATHS,
    TABLE1_LATENCIES,
    base_workload,
)

__all__ = ["Table1Result", "run_table1", "SPEC"]


@dataclass
class Table1Result:
    """Converged allocation on the base workload plus paper comparison."""

    taskset: TaskSet
    converged: bool
    iterations: int
    utility: float
    latencies: Dict[str, float]
    critical_paths: Dict[str, float]
    critical_times: Dict[str, float]
    resource_loads: Dict[str, float]
    paper_latencies: Dict[str, float]
    paper_critical_paths: Dict[str, float]

    def critical_path_margins(self) -> Dict[str, float]:
        """Per-task fraction below the critical time (paper: < 1%)."""
        return {
            name: 1.0 - self.critical_paths[name] / self.critical_times[name]
            for name in self.critical_paths
        }

    def render(self) -> str:
        return format_table1(
            self.taskset, self.latencies, paper_latencies=self.paper_latencies
        )


def run_table1(variant: str = "path-weighted",
               max_iterations: int = 1500) -> Table1Result:
    """Run the Table 1 experiment and collect all reported quantities."""
    taskset = base_workload(variant=variant)
    optimizer = LLAOptimizer(
        taskset, LLAConfig(max_iterations=max_iterations)
    )
    result = optimizer.run()
    return Table1Result(
        taskset=taskset,
        converged=result.converged,
        iterations=result.iterations,
        utility=result.utility,
        latencies=dict(result.latencies),
        critical_paths={
            task.name: task.critical_path(result.latencies)[1]
            for task in taskset.tasks
        },
        critical_times={
            task.name: task.critical_time for task in taskset.tasks
        },
        resource_loads=taskset.resource_loads(result.latencies),
        paper_latencies=dict(TABLE1_LATENCIES),
        paper_critical_paths=dict(TABLE1_CRITICAL_PATHS),
    )


def _check_converges(result: Table1Result):
    return result.converged, {"iterations": float(result.iterations)}


def _check_critical_paths(result: Table1Result):
    margins = result.critical_path_margins()
    passed = all(-1e-4 <= m <= 0.01 for m in margins.values())
    return passed, {f"margin.{name}": m for name, m in margins.items()}


def _check_saturation(result: Table1Result):
    passed = all(0.99 <= load <= 1.01
                 for load in result.resource_loads.values())
    return passed, {f"load.{name}": load
                    for name, load in result.resource_loads.items()}


def _check_latency_range(result: Table1Result):
    ratios = {
        name: result.latencies[name] / paper_lat
        for name, paper_lat in result.paper_latencies.items()
    }
    passed = all(0.4 <= r <= 2.5 for r in ratios.values())
    return passed, {"min_ratio_vs_paper": min(ratios.values()),
                    "max_ratio_vs_paper": max(ratios.values())}


def _payload(result: Table1Result):
    return {
        "converged": result.converged,
        "iterations": result.iterations,
        "utility": result.utility,
        "latencies": result.latencies,
        "critical_paths": result.critical_paths,
        "critical_times": result.critical_times,
        "resource_loads": result.resource_loads,
        "paper_latencies": result.paper_latencies,
        "paper_critical_paths": result.paper_critical_paths,
    }


SPEC = register(ExperimentSpec(
    name="table1",
    description="Table 1: converged latencies on the base workload",
    source="Section 5.2, Table 1",
    runner=run_table1,
    params=(
        Param("variant", str, "path-weighted",
              "utility aggregation: 'sum' or 'path-weighted'"),
        Param("max_iterations", int, 1500, "LLA iteration budget"),
    ),
    checks=(
        Check("converges",
              "LLA converges on the base workload with adaptive step "
              "sizes", _check_converges),
        Check("critical_paths_within_1pct",
              "every critical path is less than 1% below its critical "
              "time, never above", _check_critical_paths),
        Check("resources_saturated",
              "all resources are driven to (near) full availability — "
              "the workload is built close to congestion",
              _check_saturation),
        Check("latencies_match_paper_range",
              "per-subtask latencies are in the paper's Table 1 range "
              "(topology is reconstructed, so within 0.4–2.5x)",
              _check_latency_range),
    ),
    payload=_payload,
    quick_params={"max_iterations": 1200},
))


def main() -> None:
    result = run_table1()
    print(result.render())
    print(f"converged: {result.converged} after {result.iterations} iterations")
    print(f"total utility: {result.utility:.3f}")
    margins = result.critical_path_margins()
    for name, margin in sorted(margins.items()):
        print(f"  {name}: critical path {result.critical_paths[name]:.2f} / "
              f"{result.critical_times[name]:.0f} "
              f"(margin {100 * margin:.2f}%)")
    print("resource loads: " + ", ".join(
        f"{r}={load:.4f}" for r, load in sorted(result.resource_loads.items())
    ))


if __name__ == "__main__":
    main()
