"""Ablation experiments for the design choices DESIGN.md calls out.

Not in the paper — these probe the reproduction's sensitivity to the knobs
the paper leaves implicit:

* :func:`ablate_utility_variant` — *sum* vs *path-weighted* aggregation
  (Section 3.2 claims both work; Section 5.2 reports "results were not
  different in terms of convergence properties").
* :func:`ablate_max_gamma` — the adaptive heuristic's growth cap (our
  stability deviation, see :class:`~repro.core.stepsize.AdaptiveStepSize`).
* :func:`ablate_gamma_ratio` — the γ_p/γ_r ratio, which steers the
  divergence ray on unschedulable workloads (the Figure 7 split between
  path- and resource-constraint violation).
* :func:`ablate_baselines` — LLA vs the centralized oracle and the
  deadline-slicing heuristics on the base and random workloads.
* :func:`ablate_message_loss` — distributed-runtime robustness to control
  message loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import (
    bst_slicing,
    evaluate_assignment,
    even_slicing,
    proportional_slicing,
    solve_centralized,
)
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize
from repro.distributed import DistributedConfig, DistributedLLARuntime
from repro.workloads.paper import base_workload, unschedulable_workload

__all__ = [
    "VariantOutcome",
    "ablate_utility_variant",
    "ablate_max_gamma",
    "ablate_gamma_ratio",
    "ablate_baselines",
    "ablate_message_loss",
    "ablate_share_exponent",
    "ablate_correction_percentile",
]


@dataclass
class VariantOutcome:
    """One configuration's outcome in an ablation sweep."""

    label: str
    utility: float
    converged: bool
    feasible: bool
    iterations: int
    extra: Dict[str, float]


def ablate_utility_variant(max_iterations: int = 2000) -> List[VariantOutcome]:
    """Sum vs path-weighted utility on the base workload.

    Both variants use an adaptive cap of 4: the default cap of 8 resonates
    with the sum variant's price dynamics on this topology (see
    :func:`ablate_max_gamma` for the cap sweep on the default variant).
    """
    outcomes = []
    for variant in ("sum", "path-weighted"):
        taskset = base_workload(variant=variant)
        policy = AdaptiveStepSize(taskset, initial_gamma=1.0, max_gamma=4.0)
        result = LLAOptimizer(
            taskset,
            LLAConfig(step_policy=policy, max_iterations=max_iterations),
        ).run()
        margins = [
            1.0 - task.critical_path(result.latencies)[1] / task.critical_time
            for task in taskset.tasks
        ]
        outcomes.append(VariantOutcome(
            label=variant,
            utility=result.utility,
            converged=result.converged,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={"max_crit_path_margin": max(margins),
                   "min_crit_path_margin": min(margins)},
        ))
    return outcomes


def ablate_max_gamma(caps: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 1e6),
                     max_iterations: int = 1500) -> List[VariantOutcome]:
    """Adaptive-γ growth cap on the (saturated) base workload."""
    outcomes = []
    for cap in caps:
        taskset = base_workload()
        policy = AdaptiveStepSize(taskset, initial_gamma=1.0, max_gamma=cap)
        result = LLAOptimizer(
            taskset,
            LLAConfig(step_policy=policy, max_iterations=max_iterations,
                      stop_on_convergence=False),
        ).run()
        tail = np.asarray(result.utility_trace()[-100:])
        outcomes.append(VariantOutcome(
            label=f"max_gamma={cap:g}",
            utility=result.utility,
            converged=taskset.is_feasible(result.latencies, tol=1e-2),
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={"tail_oscillation": float(tail.max() - tail.min())},
        ))
    return outcomes


def ablate_gamma_ratio(divisors: Sequence[float] = (1.0, 50.0, 500.0),
                       iterations: int = 300) -> List[VariantOutcome]:
    """γ_p/γ_r ratio on the unschedulable workload: steering the ray.

    With equal step sizes the violation concentrates in the resource
    constraints; shrinking γ_p moves it into the path constraints — toward
    the paper's reported 1.75–2.41× critical-path overruns.
    """
    outcomes = []
    for divisor in divisors:
        taskset = unschedulable_workload()
        result = LLAOptimizer(
            taskset,
            LLAConfig(
                step_policy=FixedStepSize(1.0, path_gamma=1.0 / divisor),
                max_iterations=iterations,
                stop_on_convergence=False,
                max_latency_factor=3.0,
            ),
        ).run()
        ratios = [
            task.critical_path(result.latencies)[1] / task.critical_time
            for task in taskset.tasks
        ]
        loads = taskset.resource_loads(result.latencies)
        outcomes.append(VariantOutcome(
            label=f"gamma_p=gamma_r/{divisor:g}",
            utility=result.utility,
            converged=False,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={
                "max_crit_path_ratio": max(ratios),
                "max_load": max(loads.values()),
            },
        ))
    return outcomes


def ablate_baselines(max_iterations: int = 1500) -> Dict[str, object]:
    """LLA vs the centralized oracle and deadline-slicing heuristics."""
    taskset = base_workload()
    lla = LLAOptimizer(taskset, LLAConfig(max_iterations=max_iterations)).run()
    scores = {
        "lla": evaluate_assignment(taskset, lla.latencies),
        "centralized": evaluate_assignment(
            taskset, solve_centralized(taskset).latencies
        ),
        "even-slicing": evaluate_assignment(taskset, even_slicing(taskset)),
        "proportional-slicing": evaluate_assignment(
            taskset, proportional_slicing(taskset)
        ),
        "bst-slicing": evaluate_assignment(taskset, bst_slicing(taskset)),
    }
    return scores


def ablate_message_loss(
    loss_rates: Sequence[float] = (0.0, 0.05, 0.2),
    rounds: int = 1500,
    seed: int = 42,
) -> List[VariantOutcome]:
    """Distributed runtime under control-plane message loss."""
    outcomes = []
    for loss in loss_rates:
        taskset = base_workload()
        runtime = DistributedLLARuntime(
            taskset,
            DistributedConfig(
                rounds=rounds, loss_probability=loss, seed=seed
            ),
        )
        result = runtime.run()
        outcomes.append(VariantOutcome(
            label=f"loss={loss:.0%}",
            utility=result.utility,
            converged=result.converged,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={
                "messages_sent": float(runtime.bus.sent),
                "messages_dropped": float(runtime.bus.dropped),
            },
        ))
    return outcomes


def main() -> None:
    print("== utility variant ==")
    for o in ablate_utility_variant():
        print(f"  {o.label:14s} utility={o.utility:9.2f} converged={o.converged} "
              f"feasible={o.feasible} extra={o.extra}")
    print("== adaptive max_gamma ==")
    for o in ablate_max_gamma():
        print(f"  {o.label:14s} utility={o.utility:9.2f} feasible={o.feasible} "
              f"oscillation={o.extra['tail_oscillation']:.3f}")
    print("== gamma ratio (unschedulable ray) ==")
    for o in ablate_gamma_ratio():
        print(f"  {o.label:22s} max_crit_ratio={o.extra['max_crit_path_ratio']:.2f} "
              f"max_load={o.extra['max_load']:.2f}")
    print("== baselines ==")
    for name, score in ablate_baselines().items():
        print(f"  {name:22s} utility={score.utility:9.2f} feasible={score.feasible} "
              f"max_load={score.max_load:.3f}")
    print("== message loss ==")
    for o in ablate_message_loss():
        print(f"  {o.label:10s} utility={o.utility:9.2f} feasible={o.feasible} "
              f"dropped={o.extra['messages_dropped']:.0f}/{o.extra['messages_sent']:.0f}")
    print("== share exponent ==")
    for o in ablate_share_exponent():
        print(f"  {o.label:12s} converged={o.converged} feasible={o.feasible} "
              f"max_load={o.extra['max_load']:.3f}")
    print("== correction percentile ==")
    for o in ablate_correction_percentile():
        print(f"  {o.label:16s} fast={o.extra['fast_share']:.3f} "
              f"slow={o.extra['slow_share']:.3f} "
              f"error={o.extra['fast_error']:+.1f}")




def ablate_share_exponent(
    alphas: Sequence[float] = (0.5, 1.0, 2.0),
    max_iterations: int = 3000,
) -> List[VariantOutcome]:
    """Share-model curvature: ``share = cost / lat^alpha``.

    The paper's Eq. 10 is the ``alpha = 1`` case; LLA only requires strict
    convexity, so the dual iteration must converge for any positive
    exponent (``alpha > 1``: small latencies disproportionately expensive;
    ``alpha < 1``: cheap).  Exercises the power-law closed form end to end.
    """
    from repro.model.share import PowerLawShare
    from repro.model.task import Subtask, Task, TaskSet
    from repro.model.graph import SubtaskGraph
    from repro.model.resources import Resource
    from repro.model.utility import LinearUtility
    from repro.model.events import PeriodicEvent

    outcomes = []
    for alpha in alphas:
        resources = [Resource(name=f"r{i}", availability=1.0, lag=1.0)
                     for i in range(3)]
        # Sub-linear exponents make small latencies expensive in share:
        # the same deadlines that are comfortable at alpha = 1 are
        # infeasible at alpha = 0.5, so deadlines scale with 1/alpha^2
        # (share(lat) = cost/lat^alpha matches the alpha = 1 share at
        # latency lat^(1/alpha), i.e. quadratically longer for 0.5).
        deadline_scale = max(1.0, 1.0 / (alpha * alpha))
        tasks = []
        for t in range(2):
            names = [f"a{alpha}_{t}_{i}" for i in range(3)]
            subtasks = [
                Subtask(
                    names[i], f"r{i}", exec_time=2.0 + t,
                    share_function=PowerLawShare(cost=3.0 + t, alpha=alpha),
                )
                for i in range(3)
            ]
            critical = (60.0 + 30.0 * t) * deadline_scale
            tasks.append(Task(
                name=f"t{alpha}_{t}",
                subtasks=subtasks,
                graph=SubtaskGraph.chain(names),
                critical_time=critical,
                utility=LinearUtility(critical, k=2.0),
                trigger=PeriodicEvent(100.0),
            ))
        taskset = TaskSet(tasks, resources)
        policy = AdaptiveStepSize(taskset, initial_gamma=1.0, max_gamma=4.0)
        result = LLAOptimizer(
            taskset,
            LLAConfig(step_policy=policy, max_iterations=max_iterations),
        ).run()
        loads = taskset.resource_loads(result.latencies)
        outcomes.append(VariantOutcome(
            label=f"alpha={alpha:g}",
            utility=result.utility,
            converged=result.converged,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={"max_load": max(loads.values())},
        ))
    return outcomes


def ablate_correction_percentile(
    percentiles: Sequence[float] = (50.0, 90.0, 99.0),
    epochs: int = 12,
    window: float = 1500.0,
) -> List[VariantOutcome]:
    """Section 6.3's percentile knob: which percentile of the observed
    latencies feeds the error estimate.

    Lower percentiles see smaller "observed" latencies, so the correction
    is more aggressive (more negative error → less share believed
    necessary); high percentiles are conservative.  The fast tasks bottom
    out at their rate share regardless (the floor is workload arithmetic,
    not a model question) — what moves is how much margin the corrected
    model leaves above the floor, visible in the slow tasks' share.
    """
    from repro.core.error_correction import ErrorCorrector
    from repro.sim.closedloop import ClosedLoopRuntime
    from repro.workloads.paper import prototype_workload

    outcomes = []
    for percentile in percentiles:
        taskset = prototype_workload()
        runtime = ClosedLoopRuntime(
            taskset,
            window=window,
            seed=13,
            optimizer_config=LLAConfig(max_iterations=3000),
            corrector=ErrorCorrector(taskset, percentile=percentile),
        )
        runtime.enable_correction()
        runtime.run_epochs(epochs)
        final = runtime.history[-1]
        outcomes.append(VariantOutcome(
            label=f"percentile={percentile:g}",
            utility=final.utility,
            converged=True,
            feasible=True,
            iterations=epochs,
            extra={
                "fast_share": final.shares["fast1_s0"],
                "slow_share": final.shares["slow1_s0"],
                "fast_error": final.smoothed_errors["fast1_s0"],
            },
        ))
    return outcomes


if __name__ == "__main__":
    main()
