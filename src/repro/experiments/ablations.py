"""Ablation experiments for the design choices DESIGN.md calls out.

Not in the paper — these probe the reproduction's sensitivity to the knobs
the paper leaves implicit:

* :func:`ablate_utility_variant` — *sum* vs *path-weighted* aggregation
  (Section 3.2 claims both work; Section 5.2 reports "results were not
  different in terms of convergence properties").
* :func:`ablate_max_gamma` — the adaptive heuristic's growth cap (our
  stability deviation, see :class:`~repro.core.stepsize.AdaptiveStepSize`).
* :func:`ablate_gamma_ratio` — the γ_p/γ_r ratio, which steers the
  divergence ray on unschedulable workloads (the Figure 7 split between
  path- and resource-constraint violation).
* :func:`ablate_baselines` — LLA vs the centralized oracle and the
  deadline-slicing heuristics on the base and random workloads.
* :func:`ablate_message_loss` — distributed-runtime robustness to control
  message loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.baselines import (
    bst_slicing,
    evaluate_assignment,
    even_slicing,
    proportional_slicing,
    solve_centralized,
)
from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize
from repro.distributed import DistributedConfig, DistributedLLARuntime
from repro.harness import Check, ExperimentSpec, Param, register
from repro.workloads.paper import base_workload, unschedulable_workload

__all__ = [
    "VariantOutcome",
    "AblationsResult",
    "run_ablations",
    "ablate_utility_variant",
    "ablate_max_gamma",
    "ablate_gamma_ratio",
    "ablate_baselines",
    "ablate_message_loss",
    "ablate_share_exponent",
    "ablate_correction_percentile",
    "SPEC",
]


@dataclass
class VariantOutcome:
    """One configuration's outcome in an ablation sweep."""

    label: str
    utility: float
    converged: bool
    feasible: bool
    iterations: int
    extra: Dict[str, float]


def ablate_utility_variant(max_iterations: int = 2000) -> List[VariantOutcome]:
    """Sum vs path-weighted utility on the base workload.

    Both variants use an adaptive cap of 4: the default cap of 8 resonates
    with the sum variant's price dynamics on this topology (see
    :func:`ablate_max_gamma` for the cap sweep on the default variant).
    """
    outcomes = []
    for variant in ("sum", "path-weighted"):
        taskset = base_workload(variant=variant)
        policy = AdaptiveStepSize(taskset, initial_gamma=1.0, max_gamma=4.0)
        result = LLAOptimizer(
            taskset,
            LLAConfig(step_policy=policy, max_iterations=max_iterations),
        ).run()
        margins = [
            1.0 - task.critical_path(result.latencies)[1] / task.critical_time
            for task in taskset.tasks
        ]
        outcomes.append(VariantOutcome(
            label=variant,
            utility=result.utility,
            converged=result.converged,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={"max_crit_path_margin": max(margins),
                   "min_crit_path_margin": min(margins)},
        ))
    return outcomes


def ablate_max_gamma(caps: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 1e6),
                     max_iterations: int = 1500) -> List[VariantOutcome]:
    """Adaptive-γ growth cap on the (saturated) base workload."""
    outcomes = []
    for cap in caps:
        taskset = base_workload()
        policy = AdaptiveStepSize(taskset, initial_gamma=1.0, max_gamma=cap)
        result = LLAOptimizer(
            taskset,
            LLAConfig(step_policy=policy, max_iterations=max_iterations,
                      stop_on_convergence=False),
        ).run()
        tail = np.asarray(result.utility_trace()[-100:])
        outcomes.append(VariantOutcome(
            label=f"max_gamma={cap:g}",
            utility=result.utility,
            converged=taskset.is_feasible(result.latencies, tol=1e-2),
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={"tail_oscillation": float(tail.max() - tail.min())},
        ))
    return outcomes


def ablate_gamma_ratio(divisors: Sequence[float] = (1.0, 50.0, 500.0),
                       iterations: int = 300) -> List[VariantOutcome]:
    """γ_p/γ_r ratio on the unschedulable workload: steering the ray.

    With equal step sizes the violation concentrates in the resource
    constraints; shrinking γ_p moves it into the path constraints — toward
    the paper's reported 1.75–2.41× critical-path overruns.
    """
    outcomes = []
    for divisor in divisors:
        taskset = unschedulable_workload()
        result = LLAOptimizer(
            taskset,
            LLAConfig(
                step_policy=FixedStepSize(1.0, path_gamma=1.0 / divisor),
                max_iterations=iterations,
                stop_on_convergence=False,
                max_latency_factor=3.0,
            ),
        ).run()
        ratios = [
            task.critical_path(result.latencies)[1] / task.critical_time
            for task in taskset.tasks
        ]
        loads = taskset.resource_loads(result.latencies)
        outcomes.append(VariantOutcome(
            label=f"gamma_p=gamma_r/{divisor:g}",
            utility=result.utility,
            converged=False,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={
                "max_crit_path_ratio": max(ratios),
                "max_load": max(loads.values()),
            },
        ))
    return outcomes


def ablate_baselines(max_iterations: int = 1500) -> Dict[str, object]:
    """LLA vs the centralized oracle and deadline-slicing heuristics."""
    taskset = base_workload()
    lla = LLAOptimizer(taskset, LLAConfig(max_iterations=max_iterations)).run()
    scores = {
        "lla": evaluate_assignment(taskset, lla.latencies),
        "centralized": evaluate_assignment(
            taskset, solve_centralized(taskset).latencies
        ),
        "even-slicing": evaluate_assignment(taskset, even_slicing(taskset)),
        "proportional-slicing": evaluate_assignment(
            taskset, proportional_slicing(taskset)
        ),
        "bst-slicing": evaluate_assignment(taskset, bst_slicing(taskset)),
    }
    return scores


def ablate_message_loss(
    loss_rates: Sequence[float] = (0.0, 0.05, 0.2),
    rounds: int = 1500,
    seed: int = 42,
) -> List[VariantOutcome]:
    """Distributed runtime under control-plane message loss."""
    outcomes = []
    for loss in loss_rates:
        taskset = base_workload()
        runtime = DistributedLLARuntime(
            taskset,
            DistributedConfig(
                rounds=rounds, loss_probability=loss, seed=seed
            ),
        )
        result = runtime.run()
        outcomes.append(VariantOutcome(
            label=f"loss={loss:.0%}",
            utility=result.utility,
            converged=result.converged,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={
                "messages_sent": float(runtime.bus.sent),
                "messages_dropped": float(runtime.bus.dropped),
            },
        ))
    return outcomes


@dataclass
class AblationsResult:
    """All design-choice sweeps, bundled for the harness."""

    utility_variants: List[VariantOutcome]
    gamma_caps: List[VariantOutcome]
    gamma_rays: List[VariantOutcome]
    baselines: Dict[str, object]
    message_loss: List[VariantOutcome]
    share_exponents: List[VariantOutcome]
    correction_percentiles: List[VariantOutcome]


def run_ablations(
    variant_iterations: int = 3000,
    cap_iterations: int = 1500,
    ray_iterations: int = 300,
    baseline_iterations: int = 1500,
    loss_rounds: int = 1500,
    exponent_iterations: int = 3000,
    percentile_epochs: int = 12,
    percentile_window: float = 1500.0,
    seed: int = 42,
) -> AblationsResult:
    """Run every ablation sweep with one budget knob per sweep."""
    return AblationsResult(
        utility_variants=ablate_utility_variant(variant_iterations),
        gamma_caps=ablate_max_gamma(max_iterations=cap_iterations),
        gamma_rays=ablate_gamma_ratio(iterations=ray_iterations),
        baselines=ablate_baselines(max_iterations=baseline_iterations),
        message_loss=ablate_message_loss(rounds=loss_rounds, seed=seed),
        share_exponents=ablate_share_exponent(
            max_iterations=exponent_iterations
        ),
        correction_percentiles=ablate_correction_percentile(
            epochs=percentile_epochs, window=percentile_window
        ),
    )


def main() -> None:
    print("== utility variant ==")
    for o in ablate_utility_variant():
        print(f"  {o.label:14s} utility={o.utility:9.2f} converged={o.converged} "
              f"feasible={o.feasible} extra={o.extra}")
    print("== adaptive max_gamma ==")
    for o in ablate_max_gamma():
        print(f"  {o.label:14s} utility={o.utility:9.2f} feasible={o.feasible} "
              f"oscillation={o.extra['tail_oscillation']:.3f}")
    print("== gamma ratio (unschedulable ray) ==")
    for o in ablate_gamma_ratio():
        print(f"  {o.label:22s} max_crit_ratio={o.extra['max_crit_path_ratio']:.2f} "
              f"max_load={o.extra['max_load']:.2f}")
    print("== baselines ==")
    for name, score in ablate_baselines().items():
        print(f"  {name:22s} utility={score.utility:9.2f} feasible={score.feasible} "
              f"max_load={score.max_load:.3f}")
    print("== message loss ==")
    for o in ablate_message_loss():
        print(f"  {o.label:10s} utility={o.utility:9.2f} feasible={o.feasible} "
              f"dropped={o.extra['messages_dropped']:.0f}/{o.extra['messages_sent']:.0f}")
    print("== share exponent ==")
    for o in ablate_share_exponent():
        print(f"  {o.label:12s} converged={o.converged} feasible={o.feasible} "
              f"max_load={o.extra['max_load']:.3f}")
    print("== correction percentile ==")
    for o in ablate_correction_percentile():
        print(f"  {o.label:16s} fast={o.extra['fast_share']:.3f} "
              f"slow={o.extra['slow_share']:.3f} "
              f"error={o.extra['fast_error']:+.1f}")




def ablate_share_exponent(
    alphas: Sequence[float] = (0.5, 1.0, 2.0),
    max_iterations: int = 3000,
) -> List[VariantOutcome]:
    """Share-model curvature: ``share = cost / lat^alpha``.

    The paper's Eq. 10 is the ``alpha = 1`` case; LLA only requires strict
    convexity, so the dual iteration must converge for any positive
    exponent (``alpha > 1``: small latencies disproportionately expensive;
    ``alpha < 1``: cheap).  Exercises the power-law closed form end to end.
    """
    from repro.model.share import PowerLawShare
    from repro.model.task import Subtask, Task, TaskSet
    from repro.model.graph import SubtaskGraph
    from repro.model.resources import Resource
    from repro.model.utility import LinearUtility
    from repro.model.events import PeriodicEvent

    outcomes = []
    for alpha in alphas:
        resources = [Resource(name=f"r{i}", availability=1.0, lag=1.0)
                     for i in range(3)]
        # Sub-linear exponents make small latencies expensive in share:
        # the same deadlines that are comfortable at alpha = 1 are
        # infeasible at alpha = 0.5, so deadlines scale with 1/alpha^2
        # (share(lat) = cost/lat^alpha matches the alpha = 1 share at
        # latency lat^(1/alpha), i.e. quadratically longer for 0.5).
        deadline_scale = max(1.0, 1.0 / (alpha * alpha))
        tasks = []
        for t in range(2):
            names = [f"a{alpha}_{t}_{i}" for i in range(3)]
            subtasks = [
                Subtask(
                    names[i], f"r{i}", exec_time=2.0 + t,
                    share_function=PowerLawShare(cost=3.0 + t, alpha=alpha),
                )
                for i in range(3)
            ]
            critical = (60.0 + 30.0 * t) * deadline_scale
            tasks.append(Task(
                name=f"t{alpha}_{t}",
                subtasks=subtasks,
                graph=SubtaskGraph.chain(names),
                critical_time=critical,
                utility=LinearUtility(critical, k=2.0),
                trigger=PeriodicEvent(100.0),
            ))
        taskset = TaskSet(tasks, resources)
        policy = AdaptiveStepSize(taskset, initial_gamma=1.0, max_gamma=4.0)
        result = LLAOptimizer(
            taskset,
            LLAConfig(step_policy=policy, max_iterations=max_iterations),
        ).run()
        loads = taskset.resource_loads(result.latencies)
        outcomes.append(VariantOutcome(
            label=f"alpha={alpha:g}",
            utility=result.utility,
            converged=result.converged,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
            iterations=result.iterations,
            extra={"max_load": max(loads.values())},
        ))
    return outcomes


def ablate_correction_percentile(
    percentiles: Sequence[float] = (50.0, 90.0, 99.0),
    epochs: int = 12,
    window: float = 1500.0,
) -> List[VariantOutcome]:
    """Section 6.3's percentile knob: which percentile of the observed
    latencies feeds the error estimate.

    Lower percentiles see smaller "observed" latencies, so the correction
    is more aggressive (more negative error → less share believed
    necessary); high percentiles are conservative.  The fast tasks bottom
    out at their rate share regardless (the floor is workload arithmetic,
    not a model question) — what moves is how much margin the corrected
    model leaves above the floor, visible in the slow tasks' share.
    """
    from repro.core.error_correction import ErrorCorrector
    from repro.sim.closedloop import ClosedLoopRuntime
    from repro.workloads.paper import prototype_workload

    outcomes = []
    for percentile in percentiles:
        taskset = prototype_workload()
        runtime = ClosedLoopRuntime(
            taskset,
            window=window,
            seed=13,
            optimizer_config=LLAConfig(max_iterations=3000),
            corrector=ErrorCorrector(taskset, percentile=percentile),
        )
        runtime.enable_correction()
        runtime.run_epochs(epochs)
        final = runtime.history[-1]
        outcomes.append(VariantOutcome(
            label=f"percentile={percentile:g}",
            utility=final.utility,
            converged=True,
            feasible=True,
            iterations=epochs,
            extra={
                "fast_share": final.shares["fast1_s0"],
                "slow_share": final.shares["slow1_s0"],
                "fast_error": final.smoothed_errors["fast1_s0"],
            },
        ))
    return outcomes


def _check_variants_feasible(result: AblationsResult):
    by_label = {o.label: o for o in result.utility_variants}
    passed = all(by_label[label].feasible
                 for label in ("sum", "path-weighted"))
    return passed, {f"utility.{o.label}": o.utility
                    for o in result.utility_variants}


def _check_cap_stability(result: AblationsResult):
    by_label = {o.label: o for o in result.gamma_caps}
    capped = by_label["max_gamma=8"]
    unbounded = by_label["max_gamma=1e+06"]
    passed = (
        capped.feasible
        and capped.extra["tail_oscillation"] < 0.1
        and unbounded.extra["tail_oscillation"] > 10.0
    )
    return passed, {
        "oscillation.cap8": capped.extra["tail_oscillation"],
        "oscillation.unbounded": unbounded.extra["tail_oscillation"],
    }


def _check_ray_steerable(result: AblationsResult):
    ratios = [o.extra["max_crit_path_ratio"] for o in result.gamma_rays]
    loads = [o.extra["max_load"] for o in result.gamma_rays]
    passed = (
        ratios == sorted(ratios)
        and loads == sorted(loads, reverse=True)
        and ratios[-1] > 1.7
    )
    return passed, {"smallest_gamma_p_crit_ratio": ratios[-1],
                    "equal_gamma_max_load": loads[0]}


def _check_lla_vs_baselines(result: AblationsResult):
    scores = result.baselines
    lla = scores["lla"].utility
    oracle = scores["centralized"].utility
    slicing = ("even-slicing", "proportional-slicing", "bst-slicing")
    passed = (
        abs(lla - oracle) <= 0.01 * max(abs(oracle), 1.0) + 0.5
        and all(scores[name].utility < lla for name in slicing)
        and all(not scores[name].feasible for name in slicing)
    )
    return passed, {"lla_utility": lla, "oracle_utility": oracle}


def _check_loss_robust(result: AblationsResult):
    utilities = [o.utility for o in result.message_loss]
    passed = (
        all(o.feasible for o in result.message_loss)
        and max(utilities) - min(utilities) < 1.0
    )
    return passed, {"utility_spread": max(utilities) - min(utilities)}


def _check_exponents_converge(result: AblationsResult):
    passed = all(
        o.converged and o.feasible
        and abs(o.extra["max_load"] - 1.0) <= 0.01
        for o in result.share_exponents
    )
    return passed, {f"max_load.{o.label}": o.extra["max_load"]
                    for o in result.share_exponents}


def _check_percentile_ordering(result: AblationsResult):
    from repro.workloads.paper import PROTOTYPE_FAST_MIN_SHARE

    outcomes = result.correction_percentiles
    errors = [o.extra["fast_error"] for o in outcomes]
    passed = (
        errors[0] <= errors[-1] + 1e-6
        and all(o.extra["fast_share"] >= PROTOTYPE_FAST_MIN_SHARE - 1e-6
                for o in outcomes)
    )
    return passed, {f"fast_error.{o.label}": o.extra["fast_error"]
                    for o in outcomes}


def _outcomes_payload(outcomes: List[VariantOutcome]):
    return [
        {
            "label": o.label,
            "utility": o.utility,
            "converged": o.converged,
            "feasible": o.feasible,
            "iterations": o.iterations,
            "extra": dict(o.extra),
        }
        for o in outcomes
    ]


def _payload(result: AblationsResult):
    return {
        "utility_variants": _outcomes_payload(result.utility_variants),
        "gamma_caps": _outcomes_payload(result.gamma_caps),
        "gamma_rays": _outcomes_payload(result.gamma_rays),
        "baselines": {
            name: {"utility": score.utility, "feasible": score.feasible,
                   "max_load": score.max_load}
            for name, score in result.baselines.items()
        },
        "message_loss": _outcomes_payload(result.message_loss),
        "share_exponents": _outcomes_payload(result.share_exponents),
        "correction_percentiles": _outcomes_payload(
            result.correction_percentiles
        ),
    }


SPEC = register(ExperimentSpec(
    name="ablations",
    description="Design-choice sweeps: utility variant, step-size cap, "
                "divergence ray, baselines, message loss, share "
                "exponent, correction percentile",
    source="DESIGN.md (ours; probes knobs the paper leaves implicit)",
    runner=run_ablations,
    params=(
        Param("variant_iterations", int, 3000,
              "budget for the sum/path-weighted sweep"),
        Param("cap_iterations", int, 1500,
              "budget for the adaptive-cap sweep"),
        Param("ray_iterations", int, 300,
              "budget for the gamma-ratio ray sweep"),
        Param("baseline_iterations", int, 1500,
              "budget for the LLA-vs-baselines comparison"),
        Param("loss_rounds", int, 1500,
              "distributed rounds for the message-loss sweep"),
        Param("exponent_iterations", int, 3000,
              "budget for the share-exponent sweep"),
        Param("percentile_epochs", int, 12,
              "closed-loop epochs for the correction-percentile sweep"),
        Param("percentile_window", float, 1500.0,
              "sampling window (ms) for the correction-percentile sweep"),
        Param("seed", int, 42, "seed for the message-loss runtime"),
    ),
    checks=(
        Check("both_utility_variants_feasible",
              "sum and path-weighted aggregation both converge feasibly "
              "(paper 5.2: 'results were not different'); the sum "
              "variant's feasibility settles late, so full budget only",
              _check_variants_feasible, quick=False),
        Check("adaptive_cap_stabilizes",
              "a capped adaptive gamma (8) is stable at saturation while "
              "unbounded doubling oscillates", _check_cap_stability,
              quick=False),
        Check("divergence_ray_steerable",
              "shrinking gamma_p moves the infeasible violation from the "
              "resource family into the path family (toward the paper's "
              "1.75-2.41x band)", _check_ray_steerable),
        Check("lla_matches_oracle_beats_slicing",
              "LLA matches the centralized oracle within 1% and "
              "dominates every capacity-blind slicing heuristic",
              _check_lla_vs_baselines),
        Check("converges_under_message_loss",
              "the distributed runtime converges to the same utility "
              "under 0/5/20% control-message loss", _check_loss_robust,
              quick=False),
        Check("any_convex_share_exponent_converges",
              "LLA converges and saturates capacity for every strictly "
              "convex power-law share exponent (Eq. 10's alpha=1 is not "
              "special)", _check_exponents_converge),
        Check("correction_percentile_ordering",
              "lower observation percentiles correct more aggressively; "
              "the rate-share floor holds at every percentile",
              _check_percentile_ordering),
    ),
    payload=_payload,
    quick_params={
        "variant_iterations": 1200,
        "cap_iterations": 800,
        "ray_iterations": 150,
        "baseline_iterations": 1200,
        "loss_rounds": 800,
        "exponent_iterations": 2000,
        "percentile_epochs": 8,
        "percentile_window": 1000.0,
    },
))


if __name__ == "__main__":
    main()
