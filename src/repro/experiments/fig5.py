"""Experiment: Figure 5 — the effect of fixed and adaptive step sizes.

Runs LLA on the base workload for a fixed iteration budget under γ ∈
{0.1, 1, 10} (fixed) and the adaptive heuristic, recording the utility
after every iteration.

Paper claims checked (shape, not absolute levels — the utility scale
depends on the exact Figure 4 topology, which the text does not fully
specify):

* γ = 10 oscillates with high amplitude and does not converge;
* γ = 1 converges within the 500-iteration budget; γ = 0.1 needs more than
  1000 iterations;
* adaptive γ stabilizes faster than (or as fast as) the best fixed γ, and
  to at least as good a value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.stepsize import AdaptiveStepSize, FixedStepSize
from repro.harness import Check, ExperimentSpec, Param, register
from repro.workloads.paper import base_workload

__all__ = ["Fig5Series", "Fig5Result", "run_fig5", "SPEC"]


@dataclass
class Fig5Series:
    """One line of Figure 5."""

    label: str
    utilities: List[float]

    def tail_oscillation(self, window: int = 100) -> float:
        """Peak-to-peak utility spread over the last ``window`` iterations."""
        tail = np.asarray(self.utilities[-window:])
        return float(tail.max() - tail.min()) if tail.size else 0.0

    def settling_iteration(self, band: float = 0.5) -> Optional[int]:
        """First iteration after which utility stays within ±``band`` of the
        final value; ``None`` if it never settles inside the budget."""
        values = np.asarray(self.utilities)
        final = values[-1]
        inside = np.abs(values - final) <= band
        for i in range(len(values)):
            if inside[i:].all():
                return i
        return None


@dataclass
class Fig5Result:
    """All series of Figure 5."""

    iterations: int
    series: Dict[str, Fig5Series]

    @property
    def reference_utility(self) -> float:
        """Best available estimate of the optimal utility: the adaptive
        run's final value (it converges within the budget)."""
        return self.series["adaptive"].utilities[-1]

    def distance_to_reference(self, label: str) -> float:
        """|final utility − reference| for one series — how far the run
        still is from the optimum at the end of the budget."""
        return abs(self.series[label].utilities[-1] - self.reference_utility)

    def ordering_correct(self) -> bool:
        """The paper's qualitative ordering of the four configurations:

        * γ = 10 oscillates with high amplitude (it never converges);
        * γ = 0.1 is slower than γ = 1 (farther from the optimum when the
          budget runs out — the paper needs >1000 iterations for it);
        * adaptive γ has the smallest residual oscillation and ends at
          least as close to the optimum as every fixed γ.
        """
        osc10 = self.series["gamma=10"].tail_oscillation()
        osc1 = self.series["gamma=1"].tail_oscillation()
        osc_adaptive = self.series["adaptive"].tail_oscillation()
        high_gamma_oscillates = osc10 > 5.0 * max(osc1, 1e-9)
        slow_gamma_lags = (
            self.distance_to_reference("gamma=0.1")
            > self.distance_to_reference("gamma=1")
        )
        adaptive_best = (
            osc_adaptive <= min(osc1, osc10)
            and self.distance_to_reference("gamma=1") >= -1e-9
        )
        return high_gamma_oscillates and slow_gamma_lags and adaptive_best


def run_fig5(iterations: int = 500,
             gammas: Sequence[float] = (0.1, 1.0, 10.0),
             variant: str = "path-weighted",
             backend: str = "scalar") -> Fig5Result:
    """Run all Figure 5 configurations on fresh copies of the workload.

    ``backend`` selects the LLA iteration kernel; both produce identical
    traces (see :mod:`repro.core.vectorized`).
    """
    series: Dict[str, Fig5Series] = {}
    for gamma in gammas:
        taskset = base_workload(variant=variant)
        config = LLAConfig(
            step_policy=FixedStepSize(gamma),
            max_iterations=iterations,
            stop_on_convergence=False,
            backend=backend,
        )
        result = LLAOptimizer(taskset, config).run()
        series[f"gamma={gamma:g}"] = Fig5Series(
            label=f"gamma={gamma:g}", utilities=result.utility_trace()
        )
    taskset = base_workload(variant=variant)
    config = LLAConfig(
        step_policy=AdaptiveStepSize(taskset, initial_gamma=1.0),
        max_iterations=iterations,
        stop_on_convergence=False,
        backend=backend,
    )
    result = LLAOptimizer(taskset, config).run()
    series["adaptive"] = Fig5Series(
        label="adaptive", utilities=result.utility_trace()
    )
    return Fig5Result(iterations=iterations, series=series)


def _check_high_gamma_oscillates(result: Fig5Result):
    osc10 = result.series["gamma=10"].tail_oscillation()
    osc1 = result.series["gamma=1"].tail_oscillation()
    return osc10 > 5.0 * max(osc1, 1e-9), {
        "oscillation.gamma=10": osc10, "oscillation.gamma=1": osc1,
    }


def _check_slow_gamma_lags(result: Fig5Result):
    slow = result.distance_to_reference("gamma=0.1")
    mid = result.distance_to_reference("gamma=1")
    return slow > mid, {"distance.gamma=0.1": slow, "distance.gamma=1": mid}


def _check_adaptive_most_stable(result: Fig5Result):
    osc_adaptive = result.series["adaptive"].tail_oscillation()
    osc1 = result.series["gamma=1"].tail_oscillation()
    return osc_adaptive <= osc1, {
        "oscillation.adaptive": osc_adaptive, "oscillation.gamma=1": osc1,
    }


def _check_ordering(result: Fig5Result):
    return result.ordering_correct()


def _payload(result: Fig5Result):
    return {
        "iterations": result.iterations,
        "series": {
            label: {
                "final_utility": series.utilities[-1],
                "tail_oscillation": series.tail_oscillation(),
                "settling_iteration": series.settling_iteration(),
            }
            for label, series in result.series.items()
        },
        "reference_utility": result.reference_utility,
    }


SPEC = register(ExperimentSpec(
    name="fig5",
    description="Figure 5: fixed vs adaptive step sizes "
                "(utility vs iteration)",
    source="Section 5.2, Figure 5",
    runner=run_fig5,
    params=(
        Param("iterations", int, 500, "iteration budget per series"),
        Param("variant", str, "path-weighted", "utility aggregation"),
        Param("backend", str, "scalar",
              "LLA iteration kernel: 'scalar' or 'vectorized'"),
    ),
    checks=(
        Check("high_gamma_oscillates",
              "gamma=10 oscillates with high amplitude and never "
              "converges", _check_high_gamma_oscillates),
        Check("slow_gamma_lags",
              "gamma=0.1 is farther from the optimum than gamma=1 when "
              "the budget runs out (the paper needs >1000 iterations)",
              _check_slow_gamma_lags),
        Check("adaptive_most_stable",
              "adaptive gamma ends at least as stable as the best "
              "fixed gamma", _check_adaptive_most_stable),
        Check("qualitative_ordering_holds",
              "the paper's full qualitative ordering of the four "
              "configurations holds", _check_ordering),
    ),
    payload=_payload,
    quick_params={"iterations": 300},
))


def main() -> None:
    result = run_fig5()
    print(f"Figure 5: utility vs iteration ({result.iterations} iterations)")
    for label, line in result.series.items():
        settle = line.settling_iteration()
        print(
            f"  {label:>10s}: final {line.utilities[-1]:9.2f}  "
            f"tail oscillation {line.tail_oscillation():8.2f}  "
            f"settles at {settle if settle is not None else '---'}"
        )
    print(f"paper's qualitative ordering holds: {result.ordering_correct()}")


if __name__ == "__main__":
    main()
