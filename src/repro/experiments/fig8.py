"""Experiment: Figure 8 — the prototype with online model error correction.

The Section 6 system experiment, on our simulated substrate: four 3-subtask
chain tasks over three share-scheduled CPUs (fast: 5 ms WCET @ 40/s,
C = 105 ms; slow: 13 ms WCET @ 10/s, C = 800 ms; 0.1 share reserved for the
garbage collector; utility ``f(lat) = −lat``).

Phase A runs the optimizer on the raw worst-case model; phase B enables
additive error correction.  Paper claims checked:

* before correction, the optimizer gives the fast tasks more than their
  minimum rate share to meet the tight critical time, the remainder going
  to the slow tasks (paper: 0.26 / 0.19; ours: ≈ 0.29 / 0.16 — the exact
  split depends on the model, but the structure — fast above minimum,
  slow taking the rest, CPUs saturated — is the same);
* after correction, the optimizer discovers the fast critical time is met
  with *less* share and descends to the fast tasks' minimum rate share
  (0.2), reallocating the surplus to the slow tasks (0.25) — the paper's
  −23 % / +32 % reallocation (ours is larger in magnitude, same shape);
* raw errors keep fluctuating, but the smoothed error's mean stabilizes
  once the shares converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.optimizer import LLAConfig
from repro.sim.closedloop import ClosedLoopRuntime, EpochRecord
from repro.workloads.paper import (
    PROTOTYPE_FAST_MIN_SHARE,
    prototype_workload,
)

__all__ = ["Fig8Result", "run_fig8"]

#: Representative subtasks plotted by the paper (one fast, one slow).
FAST_REP = "fast1_s0"
SLOW_REP = "slow1_s0"


@dataclass
class Fig8Result:
    """Share and error trajectories of the prototype experiment."""

    history: List[EpochRecord]
    correction_epoch: int
    fast_share_trace: List[float]
    slow_share_trace: List[float]
    fast_error_trace: List[float]
    fast_share_before: float
    slow_share_before: float
    fast_share_after: float
    slow_share_after: float

    @property
    def fast_change_percent(self) -> float:
        return 100.0 * (self.fast_share_after - self.fast_share_before) \
            / self.fast_share_before

    @property
    def slow_change_percent(self) -> float:
        return 100.0 * (self.slow_share_after - self.slow_share_before) \
            / self.slow_share_before

    def fast_reaches_min_share(self, tol: float = 0.01) -> bool:
        """Paper: the fast subtasks descend to their 0.2 rate share."""
        return abs(self.fast_share_after - PROTOTYPE_FAST_MIN_SHARE) <= tol

    def slow_gains_surplus(self) -> bool:
        """Paper: the freed share goes to the slow subtasks."""
        return self.slow_share_after > self.slow_share_before + 0.01

    def error_mean_stabilizes(self, window: int = 5, tol: float = 0.35) -> bool:
        """Smoothed error shows a stable mean once shares converge."""
        tail = np.asarray(self.fast_error_trace[-2 * window:])
        if tail.size < 2 * window:
            return False
        first, second = tail[:window], tail[window:]
        scale = max(1.0, abs(float(np.mean(tail))))
        return abs(float(np.mean(first) - np.mean(second))) / scale <= tol


def run_fig8(
    epochs_before: int = 6,
    epochs_after: int = 20,
    window: float = 2000.0,
    model: str = "gps",
    seed: int = 7,
) -> Fig8Result:
    """Run the Figure 8 closed-loop experiment.

    ``window`` is the sampling window per control epoch in ms; correction
    is enabled after ``epochs_before`` epochs (the paper's time-277 mark).
    """
    taskset = prototype_workload()
    runtime = ClosedLoopRuntime(
        taskset,
        window=window,
        model=model,
        seed=seed,
        optimizer_config=LLAConfig(max_iterations=3000),
    )
    runtime.run_epochs(epochs_before)
    before = runtime.history[-1]
    runtime.enable_correction()
    runtime.run_epochs(epochs_after)
    after = runtime.history[-1]

    return Fig8Result(
        history=list(runtime.history),
        correction_epoch=epochs_before,
        fast_share_trace=runtime.share_trace(FAST_REP),
        slow_share_trace=runtime.share_trace(SLOW_REP),
        fast_error_trace=runtime.error_trace(FAST_REP),
        fast_share_before=before.shares[FAST_REP],
        slow_share_before=before.shares[SLOW_REP],
        fast_share_after=after.shares[FAST_REP],
        slow_share_after=after.shares[SLOW_REP],
    )


def main() -> None:
    result = run_fig8()
    print("Figure 8: system experiment with model error correction")
    print(f"  correction enabled after epoch {result.correction_epoch}")
    print(f"  fast share: {result.fast_share_before:.3f} -> "
          f"{result.fast_share_after:.3f} ({result.fast_change_percent:+.0f}%)"
          f"   [paper: 0.26 -> 0.20 (-23%)]")
    print(f"  slow share: {result.slow_share_before:.3f} -> "
          f"{result.slow_share_after:.3f} ({result.slow_change_percent:+.0f}%)"
          f"   [paper: 0.19 -> 0.25 (+32%)]")
    print(f"  fast reaches minimum rate share (0.2): "
          f"{result.fast_reaches_min_share()}")
    print(f"  slow gains the surplus: {result.slow_gains_surplus()}")
    print(f"  error mean stabilizes: {result.error_mean_stabilizes()}")
    fast = ", ".join(f"{s:.3f}" for s in result.fast_share_trace)
    slow = ", ".join(f"{s:.3f}" for s in result.slow_share_trace)
    print(f"  fast share trace: {fast}")
    print(f"  slow share trace: {slow}")


if __name__ == "__main__":
    main()
