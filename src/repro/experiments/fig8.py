"""Experiment: Figure 8 — the prototype with online model error correction.

The Section 6 system experiment, on our simulated substrate: four 3-subtask
chain tasks over three share-scheduled CPUs (fast: 5 ms WCET @ 40/s,
C = 105 ms; slow: 13 ms WCET @ 10/s, C = 800 ms; 0.1 share reserved for the
garbage collector; utility ``f(lat) = −lat``).

Phase A runs the optimizer on the raw worst-case model; phase B enables
additive error correction.  Paper claims checked:

* before correction, the optimizer gives the fast tasks more than their
  minimum rate share to meet the tight critical time, the remainder going
  to the slow tasks (paper: 0.26 / 0.19; ours: ≈ 0.29 / 0.16 — the exact
  split depends on the model, but the structure — fast above minimum,
  slow taking the rest, CPUs saturated — is the same);
* after correction, the optimizer discovers the fast critical time is met
  with *less* share and descends to the fast tasks' minimum rate share
  (0.2), reallocating the surplus to the slow tasks (0.25) — the paper's
  −23 % / +32 % reallocation (ours is larger in magnitude, same shape);
* raw errors keep fluctuating, but the smoothed error's mean stabilizes
  once the shares converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.optimizer import LLAConfig
from repro.harness import Check, ExperimentSpec, Param, register
from repro.sim.closedloop import ClosedLoopRuntime, EpochRecord
from repro.workloads.paper import (
    PROTOTYPE_FAST_MIN_SHARE,
    prototype_workload,
)

__all__ = ["Fig8Result", "run_fig8", "run_fig8_distributed", "SPEC"]

#: Representative subtasks plotted by the paper (one fast, one slow).
FAST_REP = "fast1_s0"
SLOW_REP = "slow1_s0"


@dataclass
class Fig8Result:
    """Share and error trajectories of the prototype experiment."""

    history: List[EpochRecord]
    correction_epoch: int
    fast_share_trace: List[float]
    slow_share_trace: List[float]
    fast_error_trace: List[float]
    fast_share_before: float
    slow_share_before: float
    fast_share_after: float
    slow_share_after: float

    @property
    def fast_change_percent(self) -> float:
        return 100.0 * (self.fast_share_after - self.fast_share_before) \
            / self.fast_share_before

    @property
    def slow_change_percent(self) -> float:
        return 100.0 * (self.slow_share_after - self.slow_share_before) \
            / self.slow_share_before

    def fast_reaches_min_share(self, tol: float = 0.01) -> bool:
        """Paper: the fast subtasks descend to their 0.2 rate share."""
        return abs(self.fast_share_after - PROTOTYPE_FAST_MIN_SHARE) <= tol

    def slow_gains_surplus(self) -> bool:
        """Paper: the freed share goes to the slow subtasks."""
        return self.slow_share_after > self.slow_share_before + 0.01

    def error_mean_stabilizes(self, window: int = 5, tol: float = 0.35) -> bool:
        """Smoothed error shows a stable mean once shares converge."""
        tail = np.asarray(self.fast_error_trace[-2 * window:])
        if tail.size < 2 * window:
            return False
        first, second = tail[:window], tail[window:]
        scale = max(1.0, abs(float(np.mean(tail))))
        return abs(float(np.mean(first) - np.mean(second))) / scale <= tol


def run_fig8(
    epochs_before: int = 6,
    epochs_after: int = 20,
    window: float = 2000.0,
    model: str = "gps",
    seed: int = 7,
) -> Fig8Result:
    """Run the Figure 8 closed-loop experiment.

    ``window`` is the sampling window per control epoch in ms; correction
    is enabled after ``epochs_before`` epochs (the paper's time-277 mark).
    """
    taskset = prototype_workload()
    runtime = ClosedLoopRuntime(
        taskset,
        window=window,
        model=model,
        seed=seed,
        optimizer_config=LLAConfig(max_iterations=3000),
    )
    runtime.run_epochs(epochs_before)
    before = runtime.history[-1]
    runtime.enable_correction()
    runtime.run_epochs(epochs_after)
    after = runtime.history[-1]

    return Fig8Result(
        history=list(runtime.history),
        correction_epoch=epochs_before,
        fast_share_trace=runtime.share_trace(FAST_REP),
        slow_share_trace=runtime.share_trace(SLOW_REP),
        fast_error_trace=runtime.error_trace(FAST_REP),
        fast_share_before=before.shares[FAST_REP],
        slow_share_before=before.shares[SLOW_REP],
        fast_share_after=after.shares[FAST_REP],
        slow_share_after=after.shares[SLOW_REP],
    )


def run_fig8_distributed(
    epochs_before: int = 4,
    epochs_after: int = 22,
    window: float = 2000.0,
    rounds_per_epoch: int = 400,
    loss_probability: float = 0.05,
    seed: int = 7,
    runtime_seed: int = 3,
) -> EpochRecord:
    """Figure 8 on the complete architecture: message-passing controllers
    and resource agents (with control-message loss) driving the live
    simulator with online error correction.  Returns the final epoch
    record; the Figure 8 endpoint (fast 0.20 / slow 0.25) must hold."""
    from repro.distributed import DistributedClosedLoop, DistributedConfig

    loop = DistributedClosedLoop(
        prototype_workload(), window=window,
        rounds_per_epoch=rounds_per_epoch, seed=seed,
        runtime_config=DistributedConfig(
            record_history=False, loss_probability=loss_probability,
            seed=runtime_seed,
        ),
    )
    loop.run_epochs(epochs_before)
    loop.enable_correction()
    loop.run_epochs(epochs_after)
    return loop.history[-1]


def _check_overallocated_before(result: Fig8Result):
    passed = result.fast_share_before > PROTOTYPE_FAST_MIN_SHARE + 0.05
    return passed, {"fast_share_before": result.fast_share_before,
                    "min_rate_share": PROTOTYPE_FAST_MIN_SHARE}


def _check_fast_reaches_min(result: Fig8Result):
    return result.fast_reaches_min_share(), {
        "fast_share_after": result.fast_share_after,
        "min_rate_share": PROTOTYPE_FAST_MIN_SHARE,
    }


def _check_slow_gains(result: Fig8Result):
    return result.slow_gains_surplus(), {
        "slow_share_before": result.slow_share_before,
        "slow_share_after": result.slow_share_after,
    }


def _check_slow_endpoint(result: Fig8Result):
    passed = abs(result.slow_share_after - 0.25) <= 0.01
    return passed, {"slow_share_after": result.slow_share_after}


def _check_reallocation_signs(result: Fig8Result):
    passed = (result.fast_change_percent < -15.0
              and result.slow_change_percent > 20.0)
    return passed, {"fast_change_percent": result.fast_change_percent,
                    "slow_change_percent": result.slow_change_percent}


def _check_error_stabilizes(result: Fig8Result):
    return result.error_mean_stabilizes(), {
        "final_smoothed_error": result.fast_error_trace[-1],
    }


def _payload(result: Fig8Result):
    return {
        "correction_epoch": result.correction_epoch,
        "fast_share_before": result.fast_share_before,
        "fast_share_after": result.fast_share_after,
        "slow_share_before": result.slow_share_before,
        "slow_share_after": result.slow_share_after,
        "fast_change_percent": result.fast_change_percent,
        "slow_change_percent": result.slow_change_percent,
        "fast_share_trace": result.fast_share_trace,
        "slow_share_trace": result.slow_share_trace,
        "fast_error_trace": result.fast_error_trace,
    }


SPEC = register(ExperimentSpec(
    name="fig8",
    description="Figure 8: prototype with online model error correction",
    source="Section 6, Figure 8",
    runner=run_fig8,
    params=(
        Param("epochs_before", int, 6,
              "control epochs before correction is enabled"),
        Param("epochs_after", int, 20, "control epochs with correction"),
        Param("window", float, 2000.0, "sampling window per epoch (ms)"),
        Param("model", str, "gps",
              "simulator scheduling model: 'gps' or 'quantum'"),
        Param("seed", int, 7, "simulator RNG seed"),
    ),
    checks=(
        Check("overallocated_before_correction",
              "before correction the fast tasks hold more than their "
              "minimum rate share (paper: 0.26 vs the 0.2 floor)",
              _check_overallocated_before),
        Check("fast_reaches_min_share",
              "after correction the fast tasks descend to their "
              "minimum rate share (0.2)", _check_fast_reaches_min,
              quick=False),
        Check("slow_gains_surplus",
              "the freed share is reallocated to the slow tasks",
              _check_slow_gains),
        Check("slow_reaches_quarter",
              "the slow tasks settle at ~0.25 (the paper's endpoint)",
              _check_slow_endpoint, quick=False),
        Check("reallocation_signs_match_paper",
              "the reallocation matches the paper's sign pattern and "
              "magnitude band (paper: -23% / +32%)",
              _check_reallocation_signs, quick=False),
        Check("error_mean_stabilizes",
              "raw errors keep fluctuating but the smoothed error's "
              "mean stabilizes once shares converge",
              _check_error_stabilizes, quick=False),
    ),
    payload=_payload,
    quick_params={"epochs_before": 2, "epochs_after": 6, "window": 1000.0},
))


def main() -> None:
    result = run_fig8()
    print("Figure 8: system experiment with model error correction")
    print(f"  correction enabled after epoch {result.correction_epoch}")
    print(f"  fast share: {result.fast_share_before:.3f} -> "
          f"{result.fast_share_after:.3f} ({result.fast_change_percent:+.0f}%)"
          f"   [paper: 0.26 -> 0.20 (-23%)]")
    print(f"  slow share: {result.slow_share_before:.3f} -> "
          f"{result.slow_share_after:.3f} ({result.slow_change_percent:+.0f}%)"
          f"   [paper: 0.19 -> 0.25 (+32%)]")
    print(f"  fast reaches minimum rate share (0.2): "
          f"{result.fast_reaches_min_share()}")
    print(f"  slow gains the surplus: {result.slow_gains_surplus()}")
    print(f"  error mean stabilizes: {result.error_mean_stabilizes()}")
    fast = ", ".join(f"{s:.3f}" for s in result.fast_share_trace)
    slow = ", ".join(f"{s:.3f}" for s in result.slow_share_trace)
    print(f"  fast share trace: {fast}")
    print(f"  slow share trace: {slow}")


if __name__ == "__main__":
    main()
