"""Experiment: adaptation to resource and workload variation.

The paper's core pitch — "as the optimization is constantly running, the
system is adaptive, and adjusts to both workload and resource variations"
(Section 1) — is asserted but never shown as an experiment.  This driver
exercises both variation kinds on the base workload:

* **resource degradation** (:func:`run_resource_variation`): after the
  optimizer converges, a resource loses 30% of its availability (a
  co-located tenant, a partial failure).  LLA must re-converge to a
  feasible allocation against the reduced capacity, and recover the
  original allocation when the capacity returns.

* **workload change** (:func:`run_workload_variation`): a new task joins
  the running system mid-flight (the optimizer keeps its dual state —
  prices are warm for the incumbent structure).  LLA must fold the
  newcomer in and settle on the enlarged workload's optimum, matching a
  cold-started run on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.harness import Check, ExperimentSpec, Param, register
from repro.model.events import PeriodicEvent
from repro.model.graph import SubtaskGraph
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import LinearUtility
from repro.workloads.paper import scaled_workload

__all__ = [
    "AdaptationPhase",
    "AdaptationResult",
    "ResourceVariationResult",
    "WorkloadVariationResult",
    "InterferenceResult",
    "run_adaptation",
    "run_resource_variation",
    "run_workload_variation",
    "run_undetected_interference",
    "SPEC",
    "INTERFERENCE_SPEC",
]


@dataclass
class AdaptationPhase:
    """Converged state at the end of one phase of a variation scenario."""

    label: str
    iterations: int
    utility: float
    feasible: bool
    max_load: float
    latencies: Dict[str, float]


@dataclass
class ResourceVariationResult:
    phases: List[AdaptationPhase]

    @property
    def baseline(self) -> AdaptationPhase:
        return self.phases[0]

    @property
    def degraded(self) -> AdaptationPhase:
        return self.phases[1]

    @property
    def recovered(self) -> AdaptationPhase:
        return self.phases[2]

    def degradation_absorbed(self) -> bool:
        """Feasible again after losing capacity, at lower utility."""
        return (
            self.degraded.feasible
            and self.degraded.utility < self.baseline.utility
        )

    def recovery_complete(self, tol: float = 1.0) -> bool:
        """Utility returns to the baseline once capacity returns."""
        return abs(self.recovered.utility - self.baseline.utility) <= tol


def _phase(label: str, taskset: TaskSet, optimizer: LLAOptimizer,
           iterations: int) -> AdaptationPhase:
    # Run the full budget: after a model/workload change the dual prices
    # drift slowly toward the new equilibrium, and a utility-stability
    # window mistakes that drift for convergence (see the closed-loop
    # runtime for the same consideration).
    start = optimizer.iteration
    for _ in range(iterations):
        optimizer.step()
    loads = taskset.resource_loads(optimizer.latencies)
    return AdaptationPhase(
        label=label,
        iterations=optimizer.iteration - start,
        utility=taskset.total_utility(optimizer.latencies),
        feasible=taskset.is_feasible(optimizer.latencies, tol=1e-2),
        max_load=max(
            loads[r] / taskset.resources[r].availability
            for r in taskset.resources
        ),
        latencies=dict(optimizer.latencies),
    )


def run_resource_variation(
    resource: str = "r4",
    degraded_availability: float = 0.7,
    iterations_per_phase: int = 2500,
    critical_time_factor: float = 1.5,
) -> ResourceVariationResult:
    """Degrade one resource mid-run, then restore it.

    Uses the base workload with 1.5× critical times: the paper's original
    deadlines leave *zero* slack (all eight resources saturated and all
    critical paths binding at the optimum), so any capacity loss there is
    unabsorbable by construction; the mild overprovisioning gives the
    optimizer somewhere to move.
    """
    taskset = scaled_workload(1, critical_time_factor=critical_time_factor)
    optimizer = LLAOptimizer(taskset, LLAConfig(max_iterations=10 ** 9))
    phases = [_phase("baseline", taskset, optimizer, iterations_per_phase)]

    original = taskset.resources[resource].availability
    taskset.set_availability(resource, degraded_availability)
    optimizer.refresh_model()
    optimizer.detector.reset()
    phases.append(_phase("degraded", taskset, optimizer,
                         iterations_per_phase))

    taskset.set_availability(resource, original)
    optimizer.refresh_model()
    optimizer.detector.reset()
    phases.append(_phase("recovered", taskset, optimizer,
                         iterations_per_phase))
    return ResourceVariationResult(phases=phases)


@dataclass
class WorkloadVariationResult:
    before: AdaptationPhase
    after: AdaptationPhase
    cold_utility: float

    def newcomer_absorbed(self) -> bool:
        return self.after.feasible

    def matches_cold_start(self, tol: float = 1.0) -> bool:
        """The warm continuation reaches the cold-start optimum."""
        return abs(self.after.utility - self.cold_utility) <= tol


def _newcomer(critical_time: float = 150.0) -> Task:
    """A light 3-stage chain using resources r3, r5, r7 (the base
    workload's least-subscribed resources)."""
    names = ["N1", "N2", "N3"]
    return Task(
        name="newcomer",
        subtasks=[
            Subtask("N1", "r3", exec_time=2.0),
            Subtask("N2", "r5", exec_time=3.0),
            Subtask("N3", "r7", exec_time=2.0),
        ],
        graph=SubtaskGraph.chain(names),
        critical_time=critical_time,
        utility=LinearUtility(critical_time, k=2.0),
        variant="path-weighted",
        trigger=PeriodicEvent(100.0),
    )


def run_workload_variation(
    iterations_per_phase: int = 2500,
) -> WorkloadVariationResult:
    """Add a task to the running system; compare against a cold start.

    The warm optimizer keeps the incumbent dual prices: the combined
    workload's optimizer is seeded with them (price warm start across a
    workload change — the "running continuously" mode of Section 4.4).
    """
    def fresh_base() -> TaskSet:
        return scaled_workload(1, critical_time_factor=1.5)

    incumbent_ts = fresh_base()
    incumbent_opt = LLAOptimizer(incumbent_ts,
                                 LLAConfig(max_iterations=10 ** 9))
    before = _phase("incumbent", incumbent_ts, incumbent_opt,
                    iterations_per_phase)

    combined_ts = TaskSet(
        list(fresh_base().tasks) + [_newcomer()],
        list(fresh_base().resources.values()),
    )
    warm_opt = LLAOptimizer(combined_ts, LLAConfig(max_iterations=10 ** 9))
    # Carry the incumbent prices over (the task controllers' λ reset; the
    # resources keep their learned congestion prices).
    warm_opt.resource_prices.prices.update(
        incumbent_opt.resource_prices.prices
    )
    warm_opt.latencies = warm_opt._initial_latencies()
    after = _phase("with-newcomer", combined_ts, warm_opt,
                   iterations_per_phase)

    cold_ts = TaskSet(
        list(fresh_base().tasks) + [_newcomer()],
        list(fresh_base().resources.values()),
    )
    cold = LLAOptimizer(cold_ts, LLAConfig(max_iterations=3000)).run()
    return WorkloadVariationResult(
        before=before, after=after, cold_utility=cold.utility
    )


@dataclass
class AdaptationResult:
    """Both variation scenarios, run back to back."""

    resource: ResourceVariationResult
    workload: WorkloadVariationResult


def run_adaptation(
    iterations_per_phase: int = 2500,
    degraded_availability: float = 0.7,
) -> AdaptationResult:
    """Run the resource-degradation and workload-change scenarios."""
    return AdaptationResult(
        resource=run_resource_variation(
            degraded_availability=degraded_availability,
            iterations_per_phase=iterations_per_phase,
        ),
        workload=run_workload_variation(
            iterations_per_phase=iterations_per_phase,
        ),
    )


def _check_degradation_absorbed(result: AdaptationResult):
    res = result.resource
    passed = res.baseline.feasible and res.degradation_absorbed()
    return passed, {"baseline_utility": res.baseline.utility,
                    "degraded_utility": res.degraded.utility}


def _check_recovery_complete(result: AdaptationResult):
    res = result.resource
    return res.recovery_complete(), {
        "baseline_utility": res.baseline.utility,
        "recovered_utility": res.recovered.utility,
    }


def _check_newcomer_absorbed(result: AdaptationResult):
    wl = result.workload
    return wl.newcomer_absorbed(), {"warm_utility": wl.after.utility}


def _check_matches_cold_start(result: AdaptationResult):
    wl = result.workload
    return wl.matches_cold_start(), {
        "warm_utility": wl.after.utility,
        "cold_utility": wl.cold_utility,
    }


def _adaptation_payload(result: AdaptationResult):
    return {
        "resource_phases": [
            {"label": p.label, "utility": p.utility, "feasible": p.feasible,
             "max_load": p.max_load, "iterations": p.iterations}
            for p in result.resource.phases
        ],
        "workload": {
            "incumbent_utility": result.workload.before.utility,
            "warm_utility": result.workload.after.utility,
            "warm_feasible": result.workload.after.feasible,
            "cold_utility": result.workload.cold_utility,
        },
    }


SPEC = register(ExperimentSpec(
    name="adaptation",
    description="Adaptation to resource degradation and a mid-flight "
                "workload change",
    source="Section 1 (the 'constantly running' claim; ours)",
    runner=run_adaptation,
    params=(
        Param("iterations_per_phase", int, 2500,
              "optimizer iterations per scenario phase"),
        Param("degraded_availability", float, 0.7,
              "availability of r4 during the degradation phase"),
    ),
    checks=(
        Check("degradation_absorbed",
              "after losing 30% of r4 the system re-converges feasibly "
              "at lower utility", _check_degradation_absorbed),
        Check("recovery_complete",
              "utility returns to the baseline once capacity returns",
              _check_recovery_complete),
        Check("newcomer_absorbed",
              "a task joining the running system lands on a feasible "
              "allocation", _check_newcomer_absorbed),
        Check("warm_start_matches_cold_start",
              "the warm continuation reaches the cold-start optimum",
              _check_matches_cold_start),
    ),
    payload=_adaptation_payload,
    quick_params={"iterations_per_phase": 1500},
))


def main() -> None:
    print("Resource variation (r4 availability 1.0 -> 0.7 -> 1.0):")
    result = run_resource_variation()
    for phase in result.phases:
        print(f"  {phase.label:10s} utility {phase.utility:8.2f}  "
              f"feasible {phase.feasible}  max load/B "
              f"{phase.max_load:.3f}  ({phase.iterations} iterations)")
    print(f"  degradation absorbed: {result.degradation_absorbed()}")
    print(f"  recovery complete   : {result.recovery_complete()}")
    print()
    print("Workload variation (a 4th task joins the running system):")
    wresult = run_workload_variation()
    print(f"  incumbent utility     : {wresult.before.utility:8.2f}")
    print(f"  with newcomer (warm)  : {wresult.after.utility:8.2f} "
          f"feasible {wresult.after.feasible}")
    print(f"  cold-start reference  : {wresult.cold_utility:8.2f}")
    print(f"  matches cold start    : {wresult.matches_cold_start()}")
    print()
    print("Undetected interference (simulator-side, model cannot see it):")
    iresult = run_undetected_interference()
    print(f"  fast share  : {iresult.fast_share_before:.3f} -> "
          f"{iresult.fast_share_during:.3f}")
    print(f"  fast error  : {iresult.fast_error_before:+.1f} -> "
          f"{iresult.fast_error_during:+.1f} ms")
    print(f"  fast e2e p99: adaptive {iresult.fast_p99_adaptive:.1f} ms vs "
          f"frozen {iresult.fast_p99_frozen:.1f} ms "
          f"(deadline {iresult.critical_time:.0f} ms)")
    print(f"  correction reacted: {iresult.correction_reacted()}")
    print(f"  adaptation helps  : {iresult.adaptation_helps()}")




# -- undetected interference (closed loop + error correction) ---------------------

@dataclass
class InterferenceResult:
    """Closed-loop reaction to interference the model cannot see."""

    fast_share_before: float
    fast_share_during: float
    fast_error_before: float
    fast_error_during: float
    fast_p99_frozen: float
    fast_p99_adaptive: float
    critical_time: float

    def correction_reacted(self) -> bool:
        """The smoothed error must rise (less over-prediction) and the
        fast share must be raised to defend the deadline."""
        return (
            self.fast_error_during > self.fast_error_before + 1.0
            and self.fast_share_during > self.fast_share_before + 0.01
        )

    def adaptation_helps(self) -> bool:
        """Adaptive shares beat frozen shares under the same interference."""
        return self.fast_p99_adaptive < self.fast_p99_frozen


def run_undetected_interference(
    warmup_epochs: int = 10,
    interference_epochs: int = 15,
    extra_weight: float = 0.25,
    window: float = 2000.0,
    seed: int = 21,
) -> InterferenceResult:
    """Inject simulator-side interference the optimizer's model cannot see.

    Phase A: the Section 6.3 closed loop converges with error correction
    (fast tasks at their minimum rate share, errors strongly negative —
    the worst-case model over-predicts).  Phase B: every CPU gains an
    unannounced background consumer.  Observed latencies rise, the
    additive errors climb toward zero, the corrected model demands more
    share for the same deadline, and the optimizer re-defends the fast
    tasks' 105 ms critical time.  A frozen-share control run quantifies
    the benefit.
    """
    from repro.core.optimizer import LLAConfig
    from repro.sim.closedloop import ClosedLoopRuntime
    from repro.workloads.paper import prototype_workload

    def build_runtime() -> ClosedLoopRuntime:
        runtime = ClosedLoopRuntime(
            prototype_workload(), window=window, model="gps", seed=seed,
            optimizer_config=LLAConfig(max_iterations=3000),
        )
        runtime.enable_correction()
        runtime.run_epochs(warmup_epochs)
        return runtime

    # Adaptive run: correction stays on through the interference.
    adaptive = build_runtime()
    before = adaptive.history[-1]
    for rname in adaptive.taskset.resources:
        adaptive.system.inject_interference(rname, extra_weight)
    adaptive.run_epochs(interference_epochs)
    during = adaptive.history[-1]
    fast_p99_adaptive = adaptive.system.recorder.jobset_percentile(
        "fast1", 99.0
    )

    # Frozen control: same warmup, then correction (and hence any share
    # movement) disabled while the interference runs.
    frozen = build_runtime()
    for rname in frozen.taskset.resources:
        frozen.system.inject_interference(rname, extra_weight)
    frozen.disable_correction()
    frozen.optimizer_steps_per_epoch = 0      # hold shares still
    frozen.run_epochs(interference_epochs)
    fast_p99_frozen = frozen.system.recorder.jobset_percentile(
        "fast1", 99.0
    )

    return InterferenceResult(
        fast_share_before=before.shares["fast1_s0"],
        fast_share_during=during.shares["fast1_s0"],
        fast_error_before=before.smoothed_errors["fast1_s0"],
        fast_error_during=during.smoothed_errors["fast1_s0"],
        fast_p99_frozen=fast_p99_frozen,
        fast_p99_adaptive=fast_p99_adaptive,
        critical_time=105.0,
    )


def _check_correction_reacted(result: InterferenceResult):
    return result.correction_reacted(), {
        "fast_share_before": result.fast_share_before,
        "fast_share_during": result.fast_share_during,
        "fast_error_before": result.fast_error_before,
        "fast_error_during": result.fast_error_during,
    }


def _check_adaptation_helps(result: InterferenceResult):
    return result.adaptation_helps(), {
        "fast_p99_adaptive": result.fast_p99_adaptive,
        "fast_p99_frozen": result.fast_p99_frozen,
    }


def _check_tail_halved(result: InterferenceResult):
    passed = result.fast_p99_adaptive < 0.5 * result.fast_p99_frozen
    return passed, {
        "p99_ratio": result.fast_p99_adaptive
        / max(result.fast_p99_frozen, 1e-9),
    }


def _interference_payload(result: InterferenceResult):
    return {
        "fast_share_before": result.fast_share_before,
        "fast_share_during": result.fast_share_during,
        "fast_error_before": result.fast_error_before,
        "fast_error_during": result.fast_error_during,
        "fast_p99_frozen": result.fast_p99_frozen,
        "fast_p99_adaptive": result.fast_p99_adaptive,
        "critical_time": result.critical_time,
    }


INTERFERENCE_SPEC = register(ExperimentSpec(
    name="interference",
    description="Closed-loop reaction to interference the model cannot "
                "see, vs a frozen-share control",
    source="Section 6.3 machinery under an unmodeled disturbance (ours)",
    runner=run_undetected_interference,
    params=(
        Param("warmup_epochs", int, 10,
              "closed-loop epochs before the interference starts"),
        Param("interference_epochs", int, 15,
              "closed-loop epochs with the background consumers active"),
        Param("extra_weight", float, 0.25,
              "GPS weight of the unannounced consumer on every CPU"),
        Param("window", float, 2000.0, "sampling window per epoch (ms)"),
        Param("seed", int, 21, "simulator RNG seed"),
    ),
    checks=(
        Check("correction_reacted",
              "the smoothed error rises and the threatened fast share "
              "is raised to defend the deadline",
              _check_correction_reacted),
        Check("adaptation_helps",
              "adaptive shares beat frozen shares on p99 end-to-end "
              "latency under the same interference",
              _check_adaptation_helps),
        Check("adaptive_tail_at_most_half_frozen",
              "the adaptive p99 is less than half the frozen-share p99",
              _check_tail_halved, quick=False),
    ),
    payload=_interference_payload,
    quick_params={"warmup_epochs": 6, "interference_epochs": 8,
                  "window": 1000.0},
))


if __name__ == "__main__":
    main()
