"""Experiment: empirical validation of percentile composition (§2.1).

The paper's percentile machinery rests on one inequality: if every subtask
on an ``n``-long path meets its latency budget with probability
``q = (p/100)^(1/n)``, then the path meets the summed budget with
probability at least ``p/100`` (treating per-subtask tail events as
independent — in reality they are positively correlated through shared
backlog, which only helps the bound).

This driver tests that end to end on the simulator:

1. build a chain workload whose subtasks carry per-subtask percentiles
   composed from a task-level target (50 / 90 / 99);
2. optimize with LLA and enact the shares;
3. run variable-demand, bursty traffic;
4. measure (a) per-subtask compliance against each latency budget and
   (b) end-to-end compliance against the summed budget.

Claim checked: end-to-end compliance ≥ the task-level target for every
target (the composition is conservative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.harness import (
    Check,
    ExperimentSpec,
    Param,
    parse_float_list,
    register,
)
from repro.model.events import PoissonEvent
from repro.model.graph import SubtaskGraph
from repro.model.percentile import subtask_percentile
from repro.model.resources import Resource
from repro.model.task import Subtask, Task, TaskSet
from repro.model.utility import LinearUtility
from repro.sim.system import SimulatedSystem

__all__ = ["PercentilePoint", "PercentileResult", "run_percentiles", "SPEC"]

_N_STAGES = 4
_CRITICAL_TIME = 120.0
_EXEC_TIMES = (2.0, 4.0, 3.0, 2.5)


@dataclass
class PercentilePoint:
    """Measured compliance for one task-level percentile target."""

    target: float                     # task-level percentile (0–100)
    per_subtask_percentile: float     # composed per-stage percentile
    subtask_compliance: Dict[str, float]   # fraction of jobs within budget
    path_compliance: float            # fraction of job sets within Σ budget
    budgets: Dict[str, float]

    def composition_conservative(self, slack: float = 0.01) -> bool:
        """End-to-end compliance must reach the task-level target."""
        return self.path_compliance >= self.target / 100.0 - slack


@dataclass
class PercentileResult:
    points: List[PercentilePoint]

    def all_conservative(self) -> bool:
        return all(p.composition_conservative() for p in self.points)


def _build_taskset(target: float) -> TaskSet:
    per_sub = subtask_percentile(target, _N_STAGES)
    names = [f"st{i}" for i in range(_N_STAGES)]
    subtasks = [
        Subtask(names[i], f"r{i}", exec_time=_EXEC_TIMES[i],
                percentile=per_sub)
        for i in range(_N_STAGES)
    ]
    resources = [Resource(name=f"r{i}", availability=0.8, lag=1.0)
                 for i in range(_N_STAGES)]
    task = Task(
        name="pipeline",
        subtasks=subtasks,
        graph=SubtaskGraph.chain(names),
        critical_time=_CRITICAL_TIME,
        utility=LinearUtility(_CRITICAL_TIME, k=2.0),
        trigger=PoissonEvent(0.02),   # 20 releases/second equivalent
    )
    return TaskSet([task], resources)


def run_percentiles(
    targets=(50.0, 90.0, 99.0),
    horizon: float = 120_000.0,
    seed: int = 5,
) -> PercentileResult:
    """Run the validation sweep."""
    points = []
    for target in targets:
        taskset = _build_taskset(target)
        result = LLAOptimizer(taskset, LLAConfig(max_iterations=1200)).run()
        budgets = dict(result.latencies)
        shares = {
            name: taskset.share_function(name).share(lat)
            for name, lat in budgets.items()
        }
        system = SimulatedSystem(
            taskset, shares, model="gps", seed=seed,
            # Real jobs rarely consume their WCET: demand in
            # [0.4, 1.0] × WCET, giving the latency distribution a body
            # and a tail.
            exec_time_factor=lambda rng: 0.4 + 0.6 * rng.random(),
        )
        system.run_for(horizon)

        subtask_compliance = {}
        for name, budget in budgets.items():
            samples = system.recorder.job_latencies(name)
            within = sum(1 for s in samples if s <= budget)
            subtask_compliance[name] = within / max(len(samples), 1)
        path_budget = sum(budgets.values())
        e2e = system.recorder.jobset_latencies("pipeline")
        path_compliance = (
            sum(1 for s in e2e if s <= path_budget) / max(len(e2e), 1)
        )
        points.append(PercentilePoint(
            target=target,
            per_subtask_percentile=subtask_percentile(target, _N_STAGES),
            subtask_compliance=subtask_compliance,
            path_compliance=path_compliance,
            budgets=budgets,
        ))
    return PercentileResult(points=points)


def _check_all_conservative(result: PercentileResult):
    measured = {f"path_compliance.p{p.target:g}": p.path_compliance
                for p in result.points}
    return result.all_conservative(), measured


def _check_budgets_monotone(result: PercentileResult):
    per_stage = [p.per_subtask_percentile for p in result.points]
    return per_stage == sorted(per_stage), {
        f"per_stage.p{p.target:g}": p.per_subtask_percentile
        for p in result.points
    }


def _payload(result: PercentileResult):
    return {
        "points": [
            {
                "target": p.target,
                "per_subtask_percentile": p.per_subtask_percentile,
                "subtask_compliance": p.subtask_compliance,
                "path_compliance": p.path_compliance,
                "budgets": p.budgets,
            }
            for p in result.points
        ],
    }


SPEC = register(ExperimentSpec(
    name="percentiles",
    description="Empirical validation of Section 2.1's percentile "
                "composition on a simulated pipeline",
    source="Section 2.1 (ours; the paper states the formula untested)",
    runner=run_percentiles,
    params=(
        Param("targets", parse_float_list, (50.0, 90.0, 99.0),
              "task-level percentile targets"),
        Param("horizon", float, 120_000.0,
              "simulated time per target (ms)"),
        Param("seed", int, 5, "simulator RNG seed"),
    ),
    checks=(
        Check("composition_conservative",
              "end-to-end compliance reaches the task-level target for "
              "every target (q = p^(1/n) is conservative)",
              _check_all_conservative),
        Check("per_stage_percentile_monotone",
              "the composed per-stage percentile grows with the "
              "task-level target", _check_budgets_monotone),
    ),
    payload=_payload,
    quick_params={"horizon": 40_000.0},
))


def main() -> None:
    result = run_percentiles()
    print("Percentile composition validation "
          f"({_N_STAGES}-stage chain, variable demand):")
    for point in result.points:
        worst_stage = min(point.subtask_compliance.values())
        print(f"  target p{point.target:.0f}: per-stage "
              f"p{point.per_subtask_percentile:.2f} budgets; "
              f"worst per-stage compliance {100 * worst_stage:.2f}%, "
              f"end-to-end compliance {100 * point.path_compliance:.2f}% "
              f"[conservative: {point.composition_conservative()}]")
    print(f"all targets conservative: {result.all_conservative()}")


if __name__ == "__main__":
    main()
