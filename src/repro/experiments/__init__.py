"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver is runnable as a module (``python -m repro.experiments.fig5``),
returns structured results, and registers an
:class:`~repro.harness.ExperimentSpec` with the harness registry at import
time (``repro.harness.load_all()`` imports this package to populate it):

* :mod:`repro.experiments.table1` — Table 1 (converged latencies);
* :mod:`repro.experiments.fig5` — Figure 5 (step sizes);
* :mod:`repro.experiments.fig6` — Figure 6 (task-count scaling);
* :mod:`repro.experiments.fig7` — Figure 7 (schedulability test);
* :mod:`repro.experiments.fig8` — Figure 8 (prototype error correction);
* :mod:`repro.experiments.ablations` — design-choice sweeps (ours);
* :mod:`repro.experiments.adaptation` — resource/workload variation and
  undetected interference (ours);
* :mod:`repro.experiments.percentiles` — §2.1 percentile composition
  validation (ours);
* :mod:`repro.experiments.resilience` — control-plane fault recovery
  (ours);
* :mod:`repro.experiments.churn` — the always-on service under task
  churn: warm re-convergence vs cold restarts (ours);
* :mod:`repro.experiments.overload` — the hardened service under churn
  storms, loop stalls, and checkpoint faults (ours).
"""

from repro.experiments.adaptation import (
    AdaptationResult,
    InterferenceResult,
    run_adaptation,
    run_resource_variation,
    run_undetected_interference,
    run_workload_variation,
)
from repro.experiments.ablations import (
    AblationsResult,
    VariantOutcome,
    ablate_baselines,
    ablate_gamma_ratio,
    ablate_max_gamma,
    ablate_message_loss,
    ablate_utility_variant,
    run_ablations,
)
from repro.experiments.churn import ChurnReport, run_churn
from repro.experiments.fig5 import Fig5Result, Fig5Series, run_fig5
from repro.experiments.percentiles import (
    PercentilePoint,
    PercentileResult,
    run_percentiles,
)
from repro.experiments.fig6 import Fig6Point, Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8, run_fig8_distributed
from repro.experiments.overload import OverloadReport, run_overload
from repro.experiments.resilience import (
    ResilienceReport,
    ResilienceResult,
    run_blackout_recovery,
    run_crash_recovery,
    run_resilience,
)
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "run_table1",
    "Table1Result",
    "run_fig5",
    "Fig5Result",
    "Fig5Series",
    "run_fig6",
    "Fig6Result",
    "Fig6Point",
    "run_fig7",
    "Fig7Result",
    "run_fig8",
    "run_fig8_distributed",
    "Fig8Result",
    "ablate_utility_variant",
    "ablate_max_gamma",
    "ablate_gamma_ratio",
    "ablate_baselines",
    "ablate_message_loss",
    "run_ablations",
    "AblationsResult",
    "VariantOutcome",
    "run_adaptation",
    "run_resource_variation",
    "run_workload_variation",
    "run_undetected_interference",
    "AdaptationResult",
    "InterferenceResult",
    "run_percentiles",
    "PercentileResult",
    "PercentilePoint",
    "run_churn",
    "ChurnReport",
    "run_overload",
    "OverloadReport",
    "run_resilience",
    "run_crash_recovery",
    "run_blackout_recovery",
    "ResilienceReport",
    "ResilienceResult",
]
