"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver is runnable as a module (``python -m repro.experiments.fig5``)
and returns structured results the benchmark harness asserts against:

* :mod:`repro.experiments.table1` — Table 1 (converged latencies);
* :mod:`repro.experiments.fig5` — Figure 5 (step sizes);
* :mod:`repro.experiments.fig6` — Figure 6 (task-count scaling);
* :mod:`repro.experiments.fig7` — Figure 7 (schedulability test);
* :mod:`repro.experiments.fig8` — Figure 8 (prototype error correction);
* :mod:`repro.experiments.ablations` — design-choice sweeps (ours).
"""

from repro.experiments.adaptation import (
    run_resource_variation,
    run_workload_variation,
)
from repro.experiments.ablations import (
    VariantOutcome,
    ablate_baselines,
    ablate_gamma_ratio,
    ablate_max_gamma,
    ablate_message_loss,
    ablate_utility_variant,
)
from repro.experiments.fig5 import Fig5Result, Fig5Series, run_fig5
from repro.experiments.percentiles import (
    PercentilePoint,
    PercentileResult,
    run_percentiles,
)
from repro.experiments.fig6 import Fig6Point, Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "run_table1",
    "Table1Result",
    "run_fig5",
    "Fig5Result",
    "Fig5Series",
    "run_fig6",
    "Fig6Result",
    "Fig6Point",
    "run_fig7",
    "Fig7Result",
    "run_fig8",
    "Fig8Result",
    "ablate_utility_variant",
    "ablate_max_gamma",
    "ablate_gamma_ratio",
    "ablate_baselines",
    "ablate_message_loss",
    "VariantOutcome",
    "run_resource_variation",
    "run_workload_variation",
    "run_percentiles",
    "PercentileResult",
    "PercentilePoint",
]
