"""Experiment: Figure 6 — convergence as the number of tasks scales.

The base workload is cloned ×1/×2/×4 (3, 6 and 12 simultaneous tasks) with
identical subtask characteristics and resource mappings; schedulability is
maintained by overprovisioning the critical times (the same factor for all
three workloads, as the paper describes).

Paper claims checked:

* the convergence speed of the algorithm does not depend on the number of
  tasks executing simultaneously;
* the converged utility increases linearly with the number of tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.optimizer import LLAConfig, LLAOptimizer
from repro.core.stepsize import AdaptiveStepSize
from repro.harness import (
    Check,
    ExperimentSpec,
    Param,
    parse_int_list,
    register,
)
from repro.workloads.paper import scaled_workload

__all__ = ["Fig6Point", "Fig6Result", "run_fig6", "SPEC"]


@dataclass
class Fig6Point:
    """One workload size of Figure 6."""

    n_tasks: int
    utilities: List[float]
    final_utility: float
    feasible: bool

    def settling_iteration(self, rel_band: float = 0.01) -> Optional[int]:
        """First iteration after which utility stays within ``rel_band`` of
        the final value (relative)."""
        values = np.asarray(self.utilities)
        final = values[-1]
        band = max(abs(final) * rel_band, 1e-9)
        inside = np.abs(values - final) <= band
        for i in range(len(values)):
            if inside[i:].all():
                return i
        return None


@dataclass
class Fig6Result:
    """All Figure 6 series."""

    points: Dict[int, Fig6Point]

    def utility_linearity(self) -> float:
        """R² of final utility vs task count (paper: linear, so ≈ 1)."""
        xs = np.array(sorted(self.points))
        ys = np.array([self.points[x].final_utility for x in xs])
        coeffs = np.polyfit(xs, ys, 1)
        fitted = np.polyval(coeffs, xs)
        residual = float(np.sum((ys - fitted) ** 2))
        total = float(np.sum((ys - ys.mean()) ** 2))
        return 1.0 - residual / total if total > 0.0 else 1.0

    def settling_iterations(self) -> Dict[int, Optional[int]]:
        return {n: p.settling_iteration() for n, p in self.points.items()}


def run_fig6(copies: Sequence[int] = (1, 2, 4), iterations: int = 500,
             critical_time_factor: float = 20.0,
             max_gamma: float = 1e6,
             backend: str = "scalar") -> Fig6Result:
    """Run LLA on the ×1/×2/×4 scaled workloads.

    Uses the paper's *unbounded* adaptive doubling (``max_gamma=1e6``): in
    this overprovisioned regime it is stable, and its exponential price
    climb is what makes the convergence speed independent of the task
    count (a capped γ climbs linearly in the optimal price, which grows
    roughly quadratically with the count).

    ``backend`` selects the LLA iteration kernel ("scalar" or
    "vectorized"); the traces are identical, only the wall time differs —
    which matters here, since this is the scaling experiment.
    """
    points: Dict[int, Fig6Point] = {}
    for c in copies:
        taskset = scaled_workload(
            c, critical_time_factor=critical_time_factor
        )
        config = LLAConfig(
            step_policy=AdaptiveStepSize(
                taskset, initial_gamma=1.0, max_gamma=max_gamma
            ),
            max_iterations=iterations,
            stop_on_convergence=False,
            backend=backend,
        )
        result = LLAOptimizer(taskset, config).run()
        points[len(taskset.tasks)] = Fig6Point(
            n_tasks=len(taskset.tasks),
            utilities=result.utility_trace(),
            final_utility=result.utility,
            feasible=taskset.is_feasible(result.latencies, tol=1e-2),
        )
    return Fig6Result(points=points)


def _check_all_feasible(result: Fig6Result):
    passed = all(p.feasible for p in result.points.values())
    return passed, {f"final_utility.{n}": p.final_utility
                    for n, p in result.points.items()}


def _check_linearity(result: Fig6Result):
    r2 = result.utility_linearity()
    return r2 >= 0.99, {"linearity_r2": r2}


def _check_count_independent_speed(result: Fig6Result):
    settles = result.settling_iterations()
    if any(s is None for s in settles.values()):
        return False, {}
    spread = max(settles.values()) - min(settles.values())
    measured = {f"settling.{n}": float(s) for n, s in settles.items()}
    measured["settling_spread"] = float(spread)
    return spread <= 50, measured


def _payload(result: Fig6Result):
    return {
        "points": {
            str(n): {
                "final_utility": p.final_utility,
                "feasible": p.feasible,
                "settling_iteration": p.settling_iteration(),
            }
            for n, p in result.points.items()
        },
        "linearity_r2": result.utility_linearity(),
    }


SPEC = register(ExperimentSpec(
    name="fig6",
    description="Figure 6: convergence as the number of tasks scales",
    source="Section 5.3, Figure 6",
    runner=run_fig6,
    params=(
        Param("copies", parse_int_list, (1, 2, 4),
              "workload clone factors (paper: 3/6/12 tasks)"),
        Param("iterations", int, 500, "iteration budget per workload"),
        Param("critical_time_factor", float, 20.0,
              "overprovisioning factor keeping the clones schedulable"),
        Param("max_gamma", float, 1e6,
              "adaptive-doubling cap (paper: unbounded)"),
        Param("backend", str, "scalar",
              "LLA iteration kernel: 'scalar' or 'vectorized'"),
    ),
    checks=(
        Check("all_workloads_feasible",
              "the x1/x2/x4 workloads all converge to feasible "
              "allocations", _check_all_feasible),
        Check("utility_scales_linearly",
              "converged utility grows linearly with the task count "
              "(R^2 >= 0.99)", _check_linearity),
        Check("convergence_speed_count_independent",
              "convergence speed does not depend on the number of "
              "tasks (settling spread <= 50 iterations)",
              _check_count_independent_speed),
    ),
    payload=_payload,
    quick_params={"iterations": 200},
))


def main() -> None:
    result = run_fig6()
    print("Figure 6: scaling the number of tasks")
    for n, point in sorted(result.points.items()):
        print(
            f"  {n:2d} tasks: final utility {point.final_utility:10.2f}  "
            f"feasible {point.feasible}  "
            f"settles at {point.settling_iteration()}"
        )
    print(f"utility-vs-tasks linearity R^2: {result.utility_linearity():.4f}")


if __name__ == "__main__":
    main()
