"""Experiment: the always-on service under task churn (ours).

The paper positions LLA as an online algorithm that "adjusts to both
workload and resource variations" (§1) and runs "continuously" (§4.4),
but its evaluation only ever solves fixed task sets from scratch.  This
driver quantifies the continuous-operation claim for the
:class:`~repro.service.AllocationService`: when tasks arrive and leave a
*running* service, warm-starting each rebuilt optimizer from the
surviving resources' live prices must re-converge in at most half the
rounds of an otherwise identical service that restarts cold.

Two services run the same deterministic churn script — N cycles of
"deregister one task, settle; re-register it, settle", then one
critical-time update — differing only in ``warm_start_churn``.
Re-convergence is measured the way the repo's warm-start benchmark
measures it (and the paper's §6.4 prototype stops): the settling
iteration into a ±band of the epoch's final total utility, via
:func:`~repro.analysis.trace.settling_iteration`.  The script also
probes the admission-control path with a provably infeasible arrival
(which must bounce off :func:`~repro.analysis.admission.
certify_infeasible` without disturbing the live solve) and checks the
structure cache pays off under oscillatory churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.trace import settling_iteration
from repro.harness import Check, ExperimentSpec, Param, register
from repro.model.graph import SubtaskGraph
from repro.model.task import Task, Subtask, TaskSet
from repro.model.utility import LinearUtility
from repro.service import AllocationService, ServiceConfig
from repro.workloads.paper import scaled_workload

__all__ = ["ChurnReport", "run_churn", "SPEC"]


@dataclass
class ChurnReport:
    """Warm vs cold re-convergence over one deterministic churn script."""

    events: List[Tuple[str, str]]        # (kind, task) per churn epoch
    warm_rounds: List[int]
    cold_rounds: List[int]
    initial_rounds: int                  # first (cold for both) epoch
    horizon: int
    band: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    feasibility_violations: int
    probe_rejected: bool
    probe_reason: str
    final_utility_warm: float
    final_utility_cold: float
    utility_traces: Dict[str, List[float]] = field(
        default_factory=dict, repr=False
    )

    @property
    def warm_mean(self) -> float:
        return sum(self.warm_rounds) / len(self.warm_rounds)

    @property
    def cold_mean(self) -> float:
        return sum(self.cold_rounds) / len(self.cold_rounds)

    @property
    def reconvergence_ratio(self) -> float:
        """Mean warm re-convergence rounds over mean cold rounds."""
        return self.warm_mean / self.cold_mean

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": [list(e) for e in self.events],
            "warm_rounds": list(self.warm_rounds),
            "cold_rounds": list(self.cold_rounds),
            "initial_rounds": self.initial_rounds,
            "horizon": self.horizon,
            "band": self.band,
            "warm_mean": self.warm_mean,
            "cold_mean": self.cold_mean,
            "reconvergence_ratio": self.reconvergence_ratio,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "feasibility_violations": self.feasibility_violations,
            "probe_rejected": self.probe_rejected,
            "probe_reason": self.probe_reason,
            "final_utility_warm": self.final_utility_warm,
            "final_utility_cold": self.final_utility_cold,
        }

    def summary(self) -> str:
        return (
            f"churn: warm {self.warm_mean:.0f} vs cold "
            f"{self.cold_mean:.0f} rounds "
            f"(ratio {self.reconvergence_ratio:.2f}), "
            f"cache hit rate {self.cache_hit_rate:.2f}, "
            f"probe rejected: {self.probe_rejected}"
        )


def _infeasible_probe(taskset: TaskSet) -> Task:
    """An arrival no resource set can serve: its critical time sits below
    the path's minimum-latency floor, so the certificate must fire."""
    donor = taskset.tasks[0]
    subtasks = [
        Subtask(f"probe.{i}", sub.resource, exec_time=sub.exec_time)
        for i, sub in enumerate(donor.subtasks[:2])
    ]
    graph = SubtaskGraph.chain([s.name for s in subtasks])
    return Task("probe", subtasks, graph, critical_time=1e-3,
                utility=LinearUtility(1e-3))


class _ScriptedService:
    """One service plus the settle/measure loop of the churn script."""

    def __init__(self, taskset: TaskSet, warm: bool,
                 horizon: int, band: float) -> None:
        self.service = AllocationService(
            list(taskset.resources.values()),
            config=ServiceConfig(warm_start_churn=warm),
        )
        self.horizon = horizon
        self.band = band
        self.violations = 0
        self.traces: List[List[float]] = []

    def settle(self) -> int:
        """Run one epoch for the full horizon; rounds until the total
        utility entered (and stayed in) ±band of its epoch-final value.
        A trace that never settles counts the full horizon."""
        service = self.service
        trace: List[float] = []
        for _ in range(self.horizon):
            service.step()
            taskset = service.taskset
            assert taskset is not None
            trace.append(taskset.total_utility(service.allocations()))
        self.traces.append(trace)
        taskset = service.taskset
        assert taskset is not None
        if not taskset.is_feasible(service.allocations(), tol=1e-2):
            self.violations += 1
        settled = settling_iteration(trace, band=self.band, relative=True)
        return settled if settled is not None else self.horizon


def run_churn(
    copies: int = 4,
    critical_time_factor: float = 20.0,
    cycles: int = 2,
    horizon: int = 1500,
    band: float = 0.01,
) -> ChurnReport:
    """Drive identical churn scripts through a warm and a cold service.

    The workload is the paper's scaled task set (``copies`` clones of the
    three base tasks), so single-task churn is a small perturbation of a
    many-task equilibrium — the regime an always-on service actually
    operates in, and the one where surviving prices carry information.
    """
    taskset = scaled_workload(copies,
                              critical_time_factor=critical_time_factor)
    tasks = list(taskset.tasks)
    warm = _ScriptedService(taskset, warm=True, horizon=horizon, band=band)
    cold = _ScriptedService(taskset, warm=False, horizon=horizon, band=band)

    for task in tasks:
        for scripted in (warm, cold):
            decision = scripted.service.register(task)
            if not decision.admitted:
                raise AssertionError(
                    f"churn workload task {task.name!r} rejected: "
                    f"{decision.reason}"
                )
    initial_warm = warm.settle()
    cold.settle()

    events: List[Tuple[str, str]] = []
    warm_rounds: List[int] = []
    cold_rounds: List[int] = []

    def churn_epoch(kind: str, name: str, mutate) -> None:
        mutate(warm.service)
        mutate(cold.service)
        events.append((kind, name))
        warm_rounds.append(warm.settle())
        cold_rounds.append(cold.settle())

    for cycle in range(cycles):
        victim = tasks[(cycle * 5) % len(tasks)]
        churn_epoch("deregister", victim.name,
                    lambda svc, v=victim: svc.deregister(v.name))
        churn_epoch("register", victim.name,
                    lambda svc, v=victim: svc.register(v))
    updated = tasks[1]
    new_crit = updated.critical_time * 1.1
    churn_epoch("update", updated.name,
                lambda svc: svc.update_task(updated.name,
                                            critical_time=new_crit))

    # Admission probe: a certifiably infeasible arrival must be rejected
    # without disturbing the live solve.
    before = warm.service.fingerprint
    probe_decision = warm.service.register(_infeasible_probe(taskset))
    probe_rejected = (not probe_decision.admitted
                      and warm.service.fingerprint == before
                      and "probe" not in warm.service.tasks)

    warm_ts = warm.service.taskset
    cold_ts = cold.service.taskset
    assert warm_ts is not None and cold_ts is not None
    stats = warm.service.stats()
    return ChurnReport(
        events=events,
        warm_rounds=warm_rounds,
        cold_rounds=cold_rounds,
        initial_rounds=initial_warm,
        horizon=horizon,
        band=band,
        cache_hits=stats.cache_hits,
        cache_misses=stats.cache_misses,
        cache_hit_rate=stats.cache_hit_rate,
        feasibility_violations=warm.violations + cold.violations,
        probe_rejected=probe_rejected,
        probe_reason=probe_decision.reason,
        final_utility_warm=warm_ts.total_utility(
            warm.service.allocations()),
        final_utility_cold=cold_ts.total_utility(
            cold.service.allocations()),
        utility_traces={"warm": warm.traces[-1], "cold": cold.traces[-1]},
    )


def _check_warm_halves_reconvergence(report: ChurnReport):
    measured = {
        "warm_mean_rounds": report.warm_mean,
        "cold_mean_rounds": report.cold_mean,
        "reconvergence_ratio": report.reconvergence_ratio,
    }
    return report.reconvergence_ratio <= 0.5, measured


def _check_same_optimum(report: ChurnReport):
    """Warm starting must change the speed, not the answer."""
    scale = max(abs(report.final_utility_cold), 1e-9)
    gap = abs(report.final_utility_warm - report.final_utility_cold) / scale
    measured = {
        "final_utility_warm": report.final_utility_warm,
        "final_utility_cold": report.final_utility_cold,
        "relative_gap": gap,
    }
    return gap <= 0.01, measured


def _check_epochs_feasible(report: ChurnReport):
    measured = {"feasibility_violations": float(
        report.feasibility_violations)}
    return report.feasibility_violations == 0, measured


def _check_cache_pays_off(report: ChurnReport):
    measured = {
        "cache_hits": float(report.cache_hits),
        "cache_hit_rate": report.cache_hit_rate,
    }
    return report.cache_hits >= 1, measured


def _check_admission_blocks_probe(report: ChurnReport):
    return report.probe_rejected, {
        "probe_rejected": 1.0 if report.probe_rejected else 0.0,
    }


def _payload(report: ChurnReport):
    return report.to_dict()


SPEC = register(ExperimentSpec(
    name="churn",
    description="Always-on service under task churn: warm-started "
                "re-convergence vs cold restarts, plus admission control "
                "and the structure cache",
    source="§1/§4.4 continuous-operation claim (ours)",
    runner=run_churn,
    params=(
        Param("copies", int, 4,
              "clones of the 3-task base workload (12 tasks by default)"),
        Param("critical_time_factor", float, 20.0,
              "critical-time scaling (the Figure 6 schedulable regime; "
              "small factors make 12 tasks unschedulable)"),
        Param("cycles", int, 2,
              "deregister/re-register churn cycles"),
        Param("horizon", int, 1500,
              "iterations each epoch runs before settling is measured"),
        Param("band", float, 0.01,
              "settling band, relative to the epoch-final utility"),
    ),
    checks=(
        Check("warm_halves_reconvergence",
              "warm-started churn epochs settle in at most half the "
              "rounds of cold restarts (mean over the script)",
              _check_warm_halves_reconvergence),
        Check("same_optimum",
              "warm and cold services end the script at the same total "
              "utility (within 1%)", _check_same_optimum),
        Check("epochs_feasible",
              "every epoch's final allocation satisfies the capacity and "
              "critical-time constraints", _check_epochs_feasible),
        Check("cache_pays_off",
              "oscillatory churn revisits fingerprints, so the compiled-"
              "structure cache records hits", _check_cache_pays_off),
        Check("admission_blocks_probe",
              "a certifiably infeasible arrival is rejected without "
              "disturbing the live solve", _check_admission_blocks_probe),
    ),
    payload=_payload,
    # The horizon stays at the full 1500: shorter epochs cut off the cold
    # service before its loads drop under capacity, failing the
    # feasibility claim for budget (not correctness) reasons.
    quick_params={"cycles": 1},
))


def main() -> None:
    report = run_churn()
    print("Always-on service under churn (warm vs cold re-convergence)\n")
    for (kind, task), w, c in zip(report.events, report.warm_rounds,
                                  report.cold_rounds):
        print(f"  {kind:>10} {task:<8} warm {w:>5}  cold {c:>5}")
    print(f"\n  {report.summary()}")


if __name__ == "__main__":
    main()
