"""``repro top``: a live terminal view of a running distributed LLA system.

Architecture mirrors the repo's replay==live principle: all layout logic
lives in pure functions from an immutable :class:`TopState` snapshot to
a string, so tests assert on rendered frames without a terminal, and the
interactive driver (:func:`live_top`) is a thin loop — snapshot, render,
emit — with ANSI screen-clearing as the only terminal-specific piece
(disabled by ``--plain``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.diagnostics.engine import DiagnosticsEngine
from repro.diagnostics.findings import Finding

__all__ = ["TopState", "collect_top_state", "render_top", "live_top"]

#: ANSI: clear screen + home cursor (the interactive redraw prefix).
CLEAR = "\x1b[2J\x1b[H"


@dataclass(frozen=True)
class TopState:
    """One render-ready snapshot of a distributed run."""

    round: int
    utility: float
    feasible: bool
    #: (name, price, load, availability, congested) per resource.
    resources: Tuple[Tuple[str, float, float, float, bool], ...]
    #: Bus counters: sent/delivered/dropped/expired/deduplicated/pending.
    bus: Dict[str, int] = field(default_factory=dict)
    degraded: Tuple[str, ...] = ()
    crashed: Tuple[str, ...] = ()
    findings: Tuple[Finding, ...] = ()


def collect_top_state(runtime: object,
                      engine: Optional[DiagnosticsEngine] = None) -> TopState:
    """Snapshot a :class:`~repro.distributed.runtime.DistributedLLARuntime`.

    Typed loosely (``object``) to avoid importing the distributed layer
    here; duck-typing keeps the console usable with runtime test doubles.
    """
    taskset = runtime.taskset  # type: ignore[attr-defined]
    latencies = runtime.global_latencies()  # type: ignore[attr-defined]
    loads = taskset.resource_loads(latencies)
    rows: List[Tuple[str, float, float, float, bool]] = []
    for name in sorted(taskset.resources):
        resource = taskset.resources[name]
        load = loads.get(name, 0.0)
        agent = runtime.resources[name]  # type: ignore[attr-defined]
        rows.append((
            name, float(agent.price), float(load),
            float(resource.availability),
            load > resource.availability + 1e-9,
        ))
    bus = runtime.bus  # type: ignore[attr-defined]
    return TopState(
        round=int(runtime.round),  # type: ignore[attr-defined]
        utility=float(taskset.total_utility(latencies)),
        feasible=bool(taskset.is_feasible(latencies, tol=1e-2)),
        resources=tuple(rows),
        bus={
            "sent": bus.sent, "delivered": bus.delivered,
            "dropped": bus.dropped, "expired": bus.expired,
            "deduplicated": bus.deduplicated, "pending": bus.pending(),
        },
        degraded=tuple(runtime.degraded_controllers()),  # type: ignore[attr-defined]
        crashed=tuple(runtime.crashed_agents()),  # type: ignore[attr-defined]
        findings=tuple(engine.report()) if engine is not None else (),
    )


def _bar(fraction: float, width: int = 20) -> str:
    """A utilization bar, clamped to [0, 1+] with overflow marked."""
    clamped = max(0.0, min(fraction, 1.0))
    filled = int(round(clamped * width))
    bar = "#" * filled + "." * (width - filled)
    return bar + ("!" if fraction > 1.0 else " ")


def render_top(state: TopState, width: int = 78) -> str:
    """Render one frame; deterministic for a given state."""
    lines: List[str] = []
    status = "FEASIBLE" if state.feasible else "INFEASIBLE"
    lines.append(
        f"repro top — round {state.round}  utility {state.utility:.4f}  "
        f"[{status}]"
    )
    lines.append("-" * width)
    lines.append(
        f"{'resource':<12} {'price':>10} {'load':>10} {'avail':>8}  "
        f"utilization"
    )
    for name, price, load, availability, congested in state.resources:
        fraction = load / availability if availability else 0.0
        marker = " CONGESTED" if congested else ""
        lines.append(
            f"{name:<12} {price:>10.4f} {load:>10.4f} {availability:>8.3f}  "
            f"{_bar(fraction)} {fraction:>6.1%}{marker}"
        )
    if state.bus:
        b = state.bus
        lines.append("-" * width)
        lines.append(
            f"bus: sent {b.get('sent', 0)}  delivered {b.get('delivered', 0)}"
            f"  dropped {b.get('dropped', 0)}  expired {b.get('expired', 0)}"
            f"  dedup {b.get('deduplicated', 0)}"
            f"  in-flight {b.get('pending', 0)}"
        )
    if state.crashed:
        lines.append(f"crashed: {', '.join(state.crashed)}")
    if state.degraded:
        lines.append(f"degraded: {', '.join(state.degraded)}")
    if state.findings:
        lines.append("-" * width)
        lines.append("health:")
        for finding in state.findings:
            lines.append(
                f"  [{finding.severity.upper():<8}] {finding.detector}: "
                f"{finding.summary}"
            )
    else:
        lines.append("health: no findings")
    return "\n".join(lines)


def live_top(runtime: object, rounds: int, refresh_every: int = 10,
             engine: Optional[DiagnosticsEngine] = None,
             emit: Optional[Callable[[str], None]] = None,
             plain: bool = False) -> TopState:
    """Drive a runtime for ``rounds`` rounds, emitting a frame every
    ``refresh_every`` rounds (and a final one); returns the last state.

    ``emit`` defaults to ``print``; interactive mode prefixes each frame
    with an ANSI clear, ``plain`` just separates frames with a blank
    line (scripts, tests, logs).
    """
    if emit is None:
        emit = print
    state = collect_top_state(runtime, engine)
    remaining = int(rounds)
    while remaining > 0:
        batch = min(refresh_every, remaining)
        for _ in range(batch):
            record = runtime.step()  # type: ignore[attr-defined]
            if engine is not None:
                engine.observe(record)
        remaining -= batch
        state = collect_top_state(runtime, engine)
        frame = render_top(state)
        emit(frame if plain else CLEAR + frame)
    return state
